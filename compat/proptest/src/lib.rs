//! Offline drop-in replacement for the subset of the `proptest` 1.x API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `proptest` to this path crate (see `compat/README.md`). It
//! reimplements the property-testing surface the in-tree tests call:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! * [`strategy::Strategy`] with `prop_map` and `boxed`,
//! * [`strategy::Just`], integer-range strategies, tuple strategies,
//!   [`collection::vec`], [`arbitrary::any`], and [`prop_oneof!`],
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest, acceptable for offline CI:
//!
//! * **no shrinking** — a failing case reports the generated inputs via
//!   the panic message but is not minimised,
//! * **fixed per-test seeding** — cases are generated from a seed derived
//!   from the test's name, so runs are fully deterministic,
//! * assertions are plain `assert!`s (they panic rather than returning
//!   `TestCaseResult`).

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x6A09_E667_F3BC_C909,
        }
    }

    /// Seeds from an arbitrary string (test name), deterministically.
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

pub mod strategy {
    use super::TestRng;
    use std::rc::Rc;

    /// A generator of test values (shrinking-free model: a strategy is
    /// just a sampling function).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy {
                sample: Rc::new(move |rng| inner.new_value(rng)),
            }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        pub(crate) sample: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.sample)(rng)
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    #[derive(Clone)]
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds the union; panics on an empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn any_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn any_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn any_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::any_value(rng)
        }
    }

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy and length range.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is modelled.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps simulator-heavy
            // properties fast enough for CI while still exploring.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop` (module re-exports).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property assertion (plain `assert!` in this offline model).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, …)`
/// becomes a normal test running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $crate::strategy::Strategy::new_value(&$strat, &mut rng);)+
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest (offline shim): property {} failed on case {} of {} \
                         (deterministic seed; no shrinking)",
                        stringify!($name), case, cfg.cases
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Tri {
        A,
        B,
        C,
    }

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u64..10, (y, z) in (1i64..=3, any::<bool>())) {
            prop_assert!(x < 10);
            prop_assert!((1..=3).contains(&y));
            let _ = z;
        }

        #[test]
        fn oneof_and_map(t in prop_oneof![Just(Tri::A), Just(Tri::B), Just(Tri::C)],
                         v in prop::collection::vec((0u8..4).prop_map(|b| b * 2), 1..9)) {
            prop_assert!(matches!(t, Tri::A | Tri::B | Tri::C));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b % 2 == 0 && b < 8));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_respected(x in 0u32..1000) {
            // Just exercise the configured-cases path.
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
