//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `rand` to this path crate instead of the registry (see
//! `compat/README.md`). It provides:
//!
//! * [`RngCore`] / [`Rng`] — `next_u32`/`next_u64`/`fill_bytes`, plus the
//!   generic conveniences actually called in-tree (`fill`, `gen_range`,
//!   `gen_bool`, `gen`),
//! * [`SeedableRng`] with `seed_from_u64`,
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator (the real
//!   `StdRng` is a ChaCha stream cipher; the sequences differ, but every
//!   in-tree use treats `StdRng` as an arbitrary deterministic source),
//! * [`rngs::mock::StepRng`] — identical semantics to the real mock:
//!   returns `initial`, then adds `increment` per call, little-endian
//!   byte fills,
//! * [`thread_rng`] — a process-unique, non-deterministically seeded
//!   generator for doc examples.
//!
//! Sampling uses plain modulo reduction; the tiny bias is irrelevant for
//! the simulator's purposes (token values, fuzzing inputs).

/// Low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (high word of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes, little-endian per 64-bit step (the
    /// same convention as `rand_core::impls::fill_bytes_via_next`, which
    /// the in-tree `StepRng` tests rely on).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }

    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_one(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types generable by [`Rng::gen`].
pub trait Standard: Sized {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
///
/// Implemented via single blanket impls over [`SampleUniform`] (as in
/// real `rand`), so type inference can flow from the sample's use site
/// into an untyped range literal (`rng.gen_range(0..5)` as a `usize`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Primitive types uniformly sampleable by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`; panics if empty.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`; panics if empty.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Generators constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — used for seeding and as the mixing core.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic general-purpose generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    pub mod mock {
        use super::super::RngCore;

        /// Arithmetic-sequence mock generator: yields `initial`,
        /// `initial + increment`, … (wrapping).
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            inc: u64,
        }

        impl StepRng {
            /// Creates the mock starting at `initial`, stepping by
            /// `increment`.
            pub fn new(initial: u64, increment: u64) -> StepRng {
                StepRng {
                    v: initial,
                    inc: increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let r = self.v;
                self.v = self.v.wrapping_add(self.inc);
                r
            }
        }
    }
}

/// A non-deterministically seeded generator, for examples and doctests.
///
/// Uses `RandomState`'s per-process random keys plus a global counter, so
/// distinct calls yield distinct streams.
pub fn thread_rng() -> ThreadRng {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut hasher = RandomState::new().build_hasher();
    hasher.write_u64(n);
    ThreadRng(rngs::StdRng::seed_from_u64(hasher.finish()))
}

/// The generator returned by [`thread_rng`].
#[derive(Debug, Clone)]
pub struct ThreadRng(rngs::StdRng);

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_and_varied() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn step_rng_zero_increment_fills_zero() {
        let mut rng = StepRng::new(0, 0);
        let mut buf = [0xAAu8; 24];
        rng.fill_bytes(&mut buf);
        assert_eq!(buf, [0u8; 24]);
    }

    #[test]
    fn step_rng_counts_little_endian() {
        let mut rng = StepRng::new(1, 1);
        assert_eq!(rng.next_u64(), 1);
        assert_eq!(rng.next_u64(), 2);
        let mut buf = [0u8; 8];
        rng.fill_bytes(&mut buf);
        assert_eq!(u64::from_le_bytes(buf), 3);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-100i64..100);
            assert!((-100..100).contains(&x));
            let y: usize = rng.gen_range(0..5usize);
            assert!(y < 5);
            let z: u64 = rng.gen_range(1u64..=3);
            assert!((1..=3).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
