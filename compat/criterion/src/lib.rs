//! Offline drop-in replacement for the subset of the `criterion` 0.5 API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so `cargo bench`
//! resolves `criterion` to this path crate (see `compat/README.md`). It
//! keeps the bench targets compiling and producing useful numbers —
//! median wall-time per iteration over a fixed sample count — without
//! the real crate's statistical machinery (no outlier analysis, no
//! confidence intervals, no HTML reports).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target per-sample measurement time.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group; settings apply to the benchmarks run through it.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_bench(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of a parameterised benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id of the form `function/parameter`.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, collecting the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit the per-sample target?
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }
}

fn run_bench(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<40} (no measurement — Bencher::iter never called)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "{id:<40} median {:>12} (min {}, max {}, {} samples)",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(max),
        b.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a runner function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
