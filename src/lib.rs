//! # REST: Practical Memory Safety with Random Embedded Secret Tokens
//!
//! A from-scratch Rust reproduction of *Practical Memory Safety with
//! REST* (Sinha & Sethumadhavan, ISCA 2018): the REST hardware primitive,
//! a cycle-level out-of-order CPU and memory-hierarchy simulator to host
//! it, the AddressSanitizer-derived software stack it competes with, the
//! twelve SPEC-like workloads of the paper's evaluation, and an attack
//! suite exercising its security claims.
//!
//! This crate is the umbrella: it re-exports every subsystem and offers
//! a small high-level API for the common "build a program, pick a
//! protection scheme, simulate" flow.
//!
//! ## Quickstart
//!
//! ```
//! use rest::prelude::*;
//!
//! // A tiny guest program: sum a heap array.
//! let mut p = ProgramBuilder::new();
//! p.li(Reg::A0, 256);
//! p.ecall(EcallNum::Malloc);
//! p.mv(Reg::S0, Reg::A0);
//! p.li(Reg::T0, 7);
//! p.sd(Reg::T0, Reg::S0, 0);
//! p.ld(Reg::A1, Reg::S0, 0);
//! p.halt();
//! let program = p.build();
//!
//! // Simulate it on the paper's Table II machine with REST heap safety.
//! let result = rest::simulate(program, RtConfig::rest(Mode::Secure, false));
//! assert!(result.cycles() > 0);
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`isa`] | `rest-isa` | mini-ISA, program builder, guest memory |
//! | [`core`] | `rest-core` | tokens, REST exceptions, Table I spec |
//! | [`mem`] | `rest-mem` | caches, MSHRs, DRAM, the token detector |
//! | [`cpu`] | `rest-cpu` | emulator + out-of-order timing model |
//! | [`runtime`] | `rest-runtime` | libc/ASan/REST allocators, stack pass |
//! | [`workloads`] | `rest-workloads` | the 12 SPEC-like benchmarks |
//! | [`attacks`] | `rest-attacks` | the §V security scenarios |
//! | [`verify`] | `rest-verify` | static ARM/DISARM verifier + `restlint` |

pub mod cli;

pub use rest_attacks as attacks;
pub use rest_core as core;
pub use rest_cpu as cpu;
pub use rest_isa as isa;
pub use rest_mem as mem;
pub use rest_runtime as runtime;
pub use rest_verify as verify;
pub use rest_workloads as workloads;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use rest_attacks::{Attack, AttackOutcome, Expectation};
    pub use rest_core::{Mode, RestException, RestExceptionKind, Token, TokenWidth};
    pub use rest_cpu::{ExecEngine, ExecTier, SimConfig, SimResult, StopReason, System};
    pub use rest_isa::{EcallNum, Inst, MemSize, Program, ProgramBuilder, Reg};
    pub use rest_runtime::{RtConfig, Scheme, StackScheme, Violation};
    pub use rest_workloads::{Scale, Workload, WorkloadParams};
}

use prelude::*;

/// Simulates `program` on the paper's Table II machine under the given
/// runtime configuration, returning the full result (cycles, stats,
/// stop reason, output).
pub fn simulate(program: Program, rt: RtConfig) -> SimResult {
    System::new(program, SimConfig::isca2018(rt)).run()
}

/// Builds and simulates one of the paper's workloads at the given scale
/// under `rt`, wiring the stack-protection pass to match the scheme.
pub fn simulate_workload(workload: Workload, scale: Scale, rt: RtConfig) -> SimResult {
    let stack = if rt.stack_protection {
        match rt.scheme {
            Scheme::Plain => StackScheme::None,
            Scheme::Asan => StackScheme::Asan,
            Scheme::Rest => StackScheme::Rest,
            // Heap-granule schemes carry no stack instrumentation.
            Scheme::Mte | Scheme::Pa => StackScheme::None,
        }
    } else {
        StackScheme::None
    };
    let params = WorkloadParams {
        scale,
        stack_scheme: stack,
        token_width: rt.token_width,
        seed: 0xC0FFEE,
    };
    let program = workload.build(&params);
    simulate(program, rt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_runs_a_program_end_to_end() {
        let mut p = ProgramBuilder::new();
        p.li(Reg::A0, 0);
        p.ecall(EcallNum::Exit);
        let r = simulate(p.build(), RtConfig::plain());
        assert_eq!(r.stop, StopReason::Exit(0));
    }

    #[test]
    fn simulate_workload_wires_stack_scheme() {
        let r = simulate_workload(
            Workload::Sjeng,
            Scale::Test,
            RtConfig::rest(Mode::Secure, true),
        );
        assert_eq!(r.stop, StopReason::Exit(0));
        // Full protection on a recursion-heavy workload must arm stack
        // redzones: arms appear in the mem-side token stats.
        assert!(r.mem.token_detections_on_fill > 0 || r.core.uops > 0);
    }
}
