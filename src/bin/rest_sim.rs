//! `rest-sim`: command-line front end for the REST simulator.
//!
//! See `rest::cli::USAGE` or run `rest-sim help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match rest::cli::parse_args(args).and_then(rest::cli::execute) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
