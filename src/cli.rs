//! Command-line driver for the simulator (`rest-sim`).
//!
//! ```text
//! rest-sim run <program.s> [--scheme plain|asan|rest|mte-*|pa] [--mode secure|debug]
//!              [--scope full|heap] [--width 16|32|64] [--perfect-hw]
//!              [--sprinkle] [--trace N] [--quarantine BYTES]
//! rest-sim workload <name> [--scale test|ref] [same scheme flags]
//! rest-sim list
//! ```
//!
//! The parsing and dispatch live here (testable); the binary in
//! `src/bin/rest_sim.rs` is a thin wrapper.

use std::fmt::Write as _;

use crate::prelude::*;
use rest_isa::parse_asm;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Assemble and simulate a guest program from a `.s` file.
    Run { path: String, opts: Options },
    /// Simulate one of the built-in SPEC-like workloads.
    Workload {
        name: String,
        scale: Scale,
        opts: Options,
    },
    /// List built-in workloads and configuration labels.
    List,
    /// Print usage.
    Help,
}

/// Scheme/options shared by `run` and `workload`.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    pub rt: RtConfig,
    pub trace: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            rt: RtConfig::rest(Mode::Secure, true),
            trace: 0,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
rest-sim — cycle-level simulator for REST memory safety (ISCA 2018)

USAGE:
  rest-sim run <program.s> [options]     assemble and simulate a program
  rest-sim workload <name> [options]     simulate a built-in workload
  rest-sim list                          list workloads and schemes

OPTIONS:
  --scheme LABEL             protection scheme        (default: rest)
                             labels: plain, asan, rest, pa,
                             mte-sync|mte-async|mte-asymm, rest-<hw>-<scope>
  --mode secure|debug        REST exception mode      (default: secure)
  --scope full|heap          protection scope         (default: full)
  --width 16|32|64           token width in bytes     (default: 64)
  --quarantine BYTES         quarantine pool budget
  --perfect-hw               PerfectHW limit study (arm/disarm -> store)
  --sprinkle                 decoy-token sprinkling (REST only)
  --fast-pool                REST-aware fast-pool allocator (§VIII)
  --scale test|ref           workload input scale     (default: test)
  --trace N                  print a pipeline diagram of the first N uops
";

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, flags, or
/// malformed values.
pub fn parse_args<I, S>(args: I) -> Result<Command, String>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let args: Vec<String> = args.into_iter().map(Into::into).collect();
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => Ok(Command::List),
        "run" | "workload" => {
            let target = args
                .get(1)
                .filter(|s| !s.starts_with("--"))
                .ok_or_else(|| format!("'{cmd}' needs a target argument"))?
                .clone();
            let mut scheme = "rest".to_string();
            let mut mode = Mode::Secure;
            let mut full = true;
            let mut width = TokenWidth::B64;
            let mut quarantine: Option<u64> = None;
            let mut perfect = false;
            let mut sprinkle = false;
            let mut fast_pool = false;
            let mut scale = Scale::Test;
            let mut trace = 0usize;

            let mut it = args[2..].iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, String> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--scheme" => scheme = value("--scheme")?,
                    "--mode" => {
                        mode = match value("--mode")?.as_str() {
                            "secure" => Mode::Secure,
                            "debug" => Mode::Debug,
                            other => return Err(format!("unknown mode '{other}'")),
                        }
                    }
                    "--scope" => {
                        full = match value("--scope")?.as_str() {
                            "full" => true,
                            "heap" => false,
                            other => return Err(format!("unknown scope '{other}'")),
                        }
                    }
                    "--width" => {
                        width = match value("--width")?.as_str() {
                            "16" => TokenWidth::B16,
                            "32" => TokenWidth::B32,
                            "64" => TokenWidth::B64,
                            other => return Err(format!("unknown token width '{other}'")),
                        }
                    }
                    "--quarantine" => {
                        quarantine = Some(
                            value("--quarantine")?
                                .parse()
                                .map_err(|_| "bad --quarantine value".to_string())?,
                        )
                    }
                    "--perfect-hw" => perfect = true,
                    "--sprinkle" => sprinkle = true,
                    "--fast-pool" => fast_pool = true,
                    "--scale" => {
                        scale = match value("--scale")?.as_str() {
                            "test" => Scale::Test,
                            "ref" => Scale::Ref,
                            other => return Err(format!("unknown scale '{other}'")),
                        }
                    }
                    "--trace" => {
                        trace = value("--trace")?
                            .parse()
                            .map_err(|_| "bad --trace value".to_string())?
                    }
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }

            let mut rt = match scheme.as_str() {
                "rest" => {
                    if perfect {
                        RtConfig::rest_perfect(full)
                    } else {
                        RtConfig::rest(mode, full)
                    }
                }
                // Anything else resolves through the harness labels:
                // plain, asan, pa, mte-sync/async/asymm, rest-*-*.
                other => RtConfig::from_label(other)
                    .ok_or_else(|| format!("unknown scheme '{other}'"))?,
            };
            rt = rt.with_token_width(width);
            if let Some(q) = quarantine {
                rt = rt.with_quarantine(q);
            }
            if sprinkle {
                rt = rt.with_sprinkle();
            }
            if fast_pool {
                rt = rt.with_fast_pool();
            }
            let opts = Options { rt, trace };
            if cmd == "run" {
                Ok(Command::Run { path: target, opts })
            } else {
                Ok(Command::Workload {
                    name: target,
                    scale,
                    opts,
                })
            }
        }
        other => Err(format!("unknown command '{other}' (try 'rest-sim help')")),
    }
}

/// Looks up a built-in workload by name.
pub fn workload_by_name(name: &str) -> Option<Workload> {
    Workload::ALL.into_iter().find(|w| w.name() == name)
}

/// Renders one simulation result as the report the CLI prints.
pub fn report(r: &SimResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "configuration : {}", r.label);
    let _ = writeln!(out, "stop          : {:?}", r.stop);
    let _ = writeln!(out, "cycles        : {}", r.core.cycles);
    let _ = writeln!(out, "instructions  : {}", r.core.insts);
    let _ = writeln!(out, "micro-ops     : {} ({:.2} per cycle)", r.core.uops, r.core.uipc());
    let _ = writeln!(
        out,
        "branches      : {} lookups, {} mispredicted",
        r.core.branch_lookups, r.core.branch_mispredicts
    );
    let _ = writeln!(
        out,
        "L1D           : {} hits, {} misses ({:.1}% hit rate)",
        r.mem.l1d_hits,
        r.mem.l1d_misses,
        r.mem.l1d_hit_rate() * 100.0
    );
    let _ = writeln!(
        out,
        "allocator     : {} allocs, {} frees, peak {} B live",
        r.alloc.allocs, r.alloc.frees, r.alloc.peak_live_bytes
    );
    let _ = writeln!(
        out,
        "REST          : {} fill-path detections, {} hw exceptions, {} lsq exceptions",
        r.mem.token_detections_on_fill, r.mem.rest_exceptions, r.core.lsq_rest_exceptions
    );
    if !r.output.is_empty() {
        let _ = writeln!(out, "output        : {:?}", String::from_utf8_lossy(&r.output));
    }
    if let Some(t) = &r.trace {
        let _ = writeln!(out, "\npipeline trace:");
        let _ = write!(out, "{t}");
    }
    out
}

/// Executes a parsed command; returns the text to print.
///
/// # Errors
///
/// I/O and assembly failures are returned as display-ready strings.
pub fn execute(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::List => {
            let mut out = String::new();
            let _ = writeln!(out, "workloads:");
            for w in Workload::ALL {
                let p = w.profile();
                let _ = writeln!(
                    out,
                    "  {:<12} alloc={:?} stack-buffers={} libc-calls={}",
                    p.name, p.alloc_intensity, p.uses_stack_buffers, p.uses_libc_calls
                );
            }
            let _ = writeln!(out, "\nschemes: plain, asan, rest (secure|debug, full|heap, 16|32|64B), mte-sync|async|asymm, pa");
            Ok(out)
        }
        Command::Run { path, opts } => {
            let src = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read '{path}': {e}"))?;
            let program = parse_asm(&src).map_err(|e| e.to_string())?;
            let mut cfg = rest_cpu::SimConfig::isca2018(opts.rt);
            cfg.trace_uops = opts.trace;
            let r = rest_cpu::System::new(program, cfg).run();
            Ok(report(&r))
        }
        Command::Workload { name, scale, opts } => {
            let w = workload_by_name(&name)
                .ok_or_else(|| format!("unknown workload '{name}' (try 'rest-sim list')"))?;
            let stack = if opts.rt.stack_protection {
                match opts.rt.scheme {
                    Scheme::Plain => StackScheme::None,
                    Scheme::Asan => StackScheme::Asan,
                    Scheme::Rest => StackScheme::Rest,
                    // Heap-granule schemes carry no stack instrumentation.
                    Scheme::Mte | Scheme::Pa => StackScheme::None,
                }
            } else {
                StackScheme::None
            };
            let params = WorkloadParams {
                scale,
                stack_scheme: stack,
                token_width: opts.rt.token_width,
                seed: 0xC0FFEE,
            };
            let program = w.build(&params);
            let mut cfg = rest_cpu::SimConfig::isca2018(opts.rt);
            cfg.trace_uops = opts.trace;
            let r = rest_cpu::System::new(program, cfg).run();
            Ok(report(&r))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_run_with_all_flags() {
        let cmd = parse_args([
            "run",
            "prog.s",
            "--scheme",
            "rest",
            "--mode",
            "debug",
            "--scope",
            "heap",
            "--width",
            "16",
            "--quarantine",
            "4096",
            "--sprinkle",
            "--trace",
            "20",
        ])
        .unwrap();
        match cmd {
            Command::Run { path, opts } => {
                assert_eq!(path, "prog.s");
                assert_eq!(opts.rt.mode, Mode::Debug);
                assert!(!opts.rt.stack_protection);
                assert_eq!(opts.rt.token_width, TokenWidth::B16);
                assert_eq!(opts.rt.quarantine_bytes, 4096);
                assert!(opts.rt.sprinkle_tokens);
                assert_eq!(opts.trace, 20);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_workload_and_defaults() {
        let cmd = parse_args(["workload", "lbm"]).unwrap();
        match cmd {
            Command::Workload { name, scale, opts } => {
                assert_eq!(name, "lbm");
                assert_eq!(scale, Scale::Test);
                assert_eq!(opts.rt.label(), "rest-secure-full");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(["run"]).is_err());
        assert!(parse_args(["run", "x.s", "--scheme", "mystery"]).is_err());
        assert!(parse_args(["run", "x.s", "--width", "48"]).is_err());
        assert!(parse_args(["frobnicate"]).is_err());
        assert!(parse_args(["run", "x.s", "--trace"]).is_err());
    }

    #[test]
    fn empty_args_and_help_show_usage() {
        assert_eq!(parse_args(Vec::<String>::new()).unwrap(), Command::Help);
        assert_eq!(parse_args(["--help"]).unwrap(), Command::Help);
        let text = execute(Command::Help).unwrap();
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn list_names_every_workload() {
        let text = execute(Command::List).unwrap();
        for w in Workload::ALL {
            assert!(text.contains(w.name()), "missing {w}");
        }
    }

    #[test]
    fn executes_a_workload_end_to_end() {
        let cmd = parse_args(["workload", "lbm", "--scheme", "plain"]).unwrap();
        let text = execute(cmd).unwrap();
        assert!(text.contains("cycles"), "{text}");
        assert!(text.contains("Exit(0)"), "{text}");
    }

    #[test]
    fn executes_an_assembled_program_with_trace() {
        let dir = std::env::temp_dir().join("rest_sim_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.s");
        std::fs::write(&path, "li a0, 0\necall exit\n").unwrap();
        let cmd = parse_args([
            "run",
            path.to_str().unwrap(),
            "--scheme",
            "rest",
            "--trace",
            "8",
        ])
        .unwrap();
        let text = execute(cmd).unwrap();
        assert!(text.contains("pipeline trace"), "{text}");
        assert!(text.contains("Exit(0)"), "{text}");
    }

    #[test]
    fn unknown_workload_is_reported() {
        let cmd = parse_args(["workload", "quake3"]).unwrap();
        let err = execute(cmd).unwrap_err();
        assert!(err.contains("quake3"));
    }
}
