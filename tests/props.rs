//! Property-based tests over the core data structures and the
//! emulator/allocator invariants.

#![cfg(feature = "proptest")]

use proptest::prelude::*;

use rest::core::{ArmedSet, RestBackend, Token, TokenWidth};
use rest::prelude::*;
use rest::runtime::{Allocator, RestAllocator, RtConfig, TrafficRecorder};
use rest_isa::GuestMemory;

fn width_strategy() -> impl Strategy<Value = TokenWidth> {
    prop_oneof![
        Just(TokenWidth::B16),
        Just(TokenWidth::B32),
        Just(TokenWidth::B64)
    ]
}

proptest! {
    /// The architectural armed-set and the content-based view (token
    /// bytes in memory) agree for any arm/disarm sequence: a location
    /// overlaps an armed slot iff its line content holds the token at an
    /// aligned offset.
    #[test]
    fn armed_set_matches_content_based_detection(
        width in width_strategy(),
        ops in prop::collection::vec((0u64..64, any::<bool>()), 1..60),
        probe in 0u64..4096,
    ) {
        let mut rng = rand::rngs::mock::StepRng::new(0x1234_5678_9abc_def0, 0x9e37_79b9_7f4a_7c15);
        let token = Token::generate(width, &mut rng);
        let mut armed = ArmedSet::new(width);
        let mut mem = GuestMemory::new();
        let w = width.bytes();
        for (slot, do_arm) in ops {
            let addr = 0x1000 + slot * w;
            if do_arm {
                armed.arm(addr).unwrap();
                mem.write_bytes(addr, token.bytes());
            } else if armed.is_armed(addr) {
                armed.disarm(addr).unwrap();
                mem.fill(addr, w, 0);
            }
        }
        // Content view of the probe address's line.
        let addr = 0x1000 + probe;
        let line_base = addr & !63;
        let mut line = [0u8; 64];
        mem.read_bytes(line_base, &mut line);
        let offsets = token.match_offsets_in_line(&line);
        let content_armed = offsets
            .iter()
            .any(|&off| {
                let slot_base = line_base + off as u64;
                addr >= slot_base && addr < slot_base + w
            });
        prop_assert_eq!(armed.overlaps(addr, 1), content_armed);
    }

    /// The REST allocator never panics, never loses track of a live
    /// pointer, and keeps every live allocation bracketed by armed
    /// redzones, for any interleaving of mallocs and frees.
    #[test]
    fn rest_allocator_invariants(
        actions in prop::collection::vec((1u64..512, any::<bool>()), 1..80),
        quarantine in 256u64..65536,
    ) {
        let mut rng = rand::rngs::mock::StepRng::new(7, 0x9e37_79b9);
        let token = Token::generate(TokenWidth::B64, &mut rng);
        let mut mem = GuestMemory::new();
        let mut rec = TrafficRecorder::new();
        let mut backend = RestBackend::new(TokenWidth::B64, Mode::Secure);
        let mut alloc = RestAllocator::new(quarantine, 64);
        let mut live: Vec<(u64, u64)> = Vec::new();

        for (size, do_free) in actions {
            let mut env = rest::runtime::RtEnv {
                mem: &mut mem,
                rec: &mut rec,
                backend: &mut backend,
                token: &token,
                check_backend: true,
                check_shadow: false,
                perfect_hw: false,
                naive_wide_arm: false,
                guest_pc: 0,
                sites: None,
            };
            if do_free && !live.is_empty() {
                let (ptr, _) = live.swap_remove((size as usize) % live.len());
                alloc.free(&mut env, ptr).unwrap();
            } else {
                let ptr = alloc.malloc(&mut env, size).unwrap();
                prop_assert!(ptr != 0);
                prop_assert_eq!(ptr % 64, 0, "user pointers are token-aligned");
                live.push((ptr, size));
            }
        }
        // Every live allocation: interior accessible, bounds armed.
        let armed = backend.armed();
        for &(ptr, size) in &live {
            prop_assert!(!armed.overlaps(ptr, size), "live data must not be armed");
            let pad = size.div_ceil(64) * 64;
            prop_assert!(armed.is_armed(ptr + pad), "right redzone must be armed");
            prop_assert!(armed.is_armed(ptr - 64), "left redzone must be armed");
            prop_assert_eq!(alloc.usable_size(ptr), Some(size));
        }
    }

    /// Random straight-line ALU programs: the emulator's register state
    /// matches a direct host-side interpretation.
    #[test]
    fn emulator_matches_reference_interpreter(
        seed in any::<u64>(),
        ops in prop::collection::vec((0u8..6, 1u8..8, 1u8..8, -100i64..100), 1..40),
    ) {
        let mut p = ProgramBuilder::new();
        let mut reference = [0u64; 8];
        // Seed registers x1..x7 deterministically.
        for r in 1u8..8 {
            let v = seed.wrapping_mul(r as u64 + 1);
            p.li(Reg::new(r), v as i64);
            reference[r as usize] = v;
        }
        for (op, dst, src, imm) in ops {
            let d = Reg::new(dst);
            let s = Reg::new(src);
            let a = reference[src as usize];
            let b = imm as u64;
            let (inst_op, val) = match op {
                0 => (rest::isa::AluOp::Add, a.wrapping_add(b)),
                1 => (rest::isa::AluOp::Xor, a ^ b),
                2 => (rest::isa::AluOp::And, a & b),
                3 => (rest::isa::AluOp::Or, a | b),
                4 => (rest::isa::AluOp::Mul, a.wrapping_mul(b)),
                _ => (rest::isa::AluOp::Sub, a.wrapping_sub(b)),
            };
            p.push(Inst::AluImm { op: inst_op, dst: d, src: s, imm });
            reference[dst as usize] = val;
        }
        p.halt();
        let cfg = SimConfig::isca2018(RtConfig::plain());
        let mut emu = rest::cpu::Emulator::new(p.build(), &cfg);
        emu.run_functional();
        for r in 1u8..8 {
            prop_assert_eq!(
                emu.reg_value(Reg::new(r)),
                reference[r as usize],
                "register x{} diverged", r
            );
        }
    }

    /// Timing sanity for arbitrary small programs: cycles are positive,
    /// at least uops/issue-width, and deterministic.
    #[test]
    fn pipeline_timing_bounds(
        ops in prop::collection::vec(0u8..4, 1..120),
    ) {
        let mut p = ProgramBuilder::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => { p.addi(Reg::T0, Reg::T0, 1); }
                1 => { p.mul(Reg::T1, Reg::T0, Reg::T0); }
                2 => { p.sd(Reg::T0, Reg::GP, (i as i64 % 64) * 8); }
                _ => { p.ld(Reg::T2, Reg::GP, (i as i64 % 64) * 8); }
            }
        }
        p.halt();
        let prog = p.build();
        let r1 = rest::simulate(prog.clone(), RtConfig::plain());
        let r2 = rest::simulate(prog, RtConfig::plain());
        prop_assert_eq!(r1.cycles(), r2.cycles());
        prop_assert!(r1.cycles() > 0);
        // 8-wide machine: cannot beat uops/8 per cycle (+ pipeline fill).
        prop_assert!(r1.cycles() as f64 >= r1.core.uops as f64 / 8.0);
    }
}

#[test]
fn token_false_positive_probability_is_negligible() {
    // Deterministic sampling stand-in for the 2^-512 claim: no random
    // 64-byte line ever matches a random token.
    let mut rng = rand::rngs::mock::StepRng::new(42, 0x2545_F491_4F6C_DD1D);
    let token = Token::generate(TokenWidth::B64, &mut rng);
    let mut line = [0u8; 64];
    let mut x = 0x1234_5678_u64;
    for _ in 0..100_000 {
        for chunk in line.chunks_mut(8) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        assert!(!token.line_contains_token(&line));
    }
}
