//! Integration: Table I conformance — the timing hierarchy's observable
//! behaviour is checked cell-by-cell against the executable
//! specification in `rest_core::table1`, and the LSQ rules are exercised
//! through the pipeline.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rest::core::table1::{cache_decision, lsq_decision, Action, SqTag};
use rest::core::{Mode, RestExceptionKind, Token, TokenWidth};
use rest::mem::{Hierarchy, MemConfig};
use rest_isa::{GuestMemory, MemAccessKind};

fn fixture() -> (Hierarchy, GuestMemory, Token) {
    let mut rng = StdRng::seed_from_u64(0xdead);
    (
        Hierarchy::new(MemConfig::isca2018()),
        GuestMemory::new(),
        Token::generate(TokenWidth::B64, &mut rng),
    )
}

/// Makes `addr`'s line resident (and optionally armed) in the L1-D, past
/// all fill latency, returning a quiet cycle to continue from.
fn warm(
    h: &mut Hierarchy,
    mem: &mut GuestMemory,
    tok: &Token,
    addr: u64,
    armed: bool,
) -> u64 {
    if armed {
        mem.write_bytes(addr & !63, tok.bytes());
    }
    let out = h.access_data(0, MemAccessKind::Arm, addr & !63, 64, mem, tok, Mode::Secure);
    if !armed {
        // Undo: disarm (zeroes) so only residency remains.
        mem.fill(addr & !63, 64, 0);
        let out2 = h.access_data(
            out.complete_at + 1,
            MemAccessKind::Disarm,
            addr & !63,
            64,
            mem,
            tok,
            Mode::Secure,
        );
        return out2.complete_at + 10;
    }
    out.complete_at + 10
}

#[test]
fn cache_hit_cells_match_spec() {
    for action in [
        Action::Load,
        Action::StoreSecure,
        Action::StoreDebug,
        Action::Disarm,
        Action::Arm,
    ] {
        for token_bit in [false, true] {
            let (mut h, mut mem, tok) = fixture();
            let addr = 0x9000u64;
            let t = warm(&mut h, &mut mem, &tok, addr, token_bit);
            let (kind, mode) = match action {
                Action::Load => (MemAccessKind::Load, Mode::Secure),
                Action::StoreSecure => (MemAccessKind::Store, Mode::Secure),
                Action::StoreDebug => (MemAccessKind::Store, Mode::Debug),
                Action::Arm => (MemAccessKind::Arm, Mode::Secure),
                Action::Disarm => (MemAccessKind::Disarm, Mode::Secure),
                _ => unreachable!(),
            };
            let expected = cache_decision(action, true, token_bit);
            let out = h.access_data(t, kind, addr, 8, &mem, &tok, mode);
            assert_eq!(
                out.exception, expected.exception,
                "{action:?} hit token_bit={token_bit}"
            );
            if expected.set_token_bit {
                assert!(h.l1d().token_bit_covering(addr, 64));
            }
            if expected.clear_slot_unset_bit {
                assert!(!h.l1d().token_bit_covering(addr, 64));
            }
        }
    }
}

#[test]
fn cache_miss_cells_fetch_detect_then_proceed_as_hit() {
    // Miss path with an armed line in memory: every regular access must
    // fault after the fill-path detector marks the line.
    for (kind, expected) in [
        (MemAccessKind::Load, RestExceptionKind::TokenLoad),
        (MemAccessKind::Store, RestExceptionKind::TokenStore),
    ] {
        let (mut h, mut mem, tok) = fixture();
        mem.write_bytes(0xa000, tok.bytes());
        let out = h.access_data(0, kind, 0xa008, 8, &mem, &tok, Mode::Secure);
        assert_eq!(out.exception, Some(expected), "{kind:?} miss on armed line");
        assert_eq!(h.stats().token_detections_on_fill, 1);
    }
    // Disarm miss on an armed line succeeds (fetch, detect, clear).
    let (mut h, mut mem, tok) = fixture();
    mem.write_bytes(0xb000, tok.bytes());
    let out = h.access_data(0, MemAccessKind::Disarm, 0xb000, 64, &mem, &tok, Mode::Secure);
    assert!(out.exception.is_none());
    assert!(!h.l1d().token_bit_covering(0xb000, 64));
    // Disarm miss on an unarmed line faults.
    let (mut h, mem, tok) = fixture();
    let out = h.access_data(0, MemAccessKind::Disarm, 0xc000, 64, &mem, &tok, Mode::Secure);
    assert_eq!(out.exception, Some(RestExceptionKind::DisarmUnarmed));
}

#[test]
fn store_debug_miss_delays_commit_decision_in_spec() {
    // The spec cell distinguishing debug from secure stores.
    let d = cache_decision(Action::StoreDebug, false, false);
    assert!(d.delay_commit_until_ack);
    let d = cache_decision(Action::StoreSecure, false, false);
    assert!(!d.delay_commit_until_ack);
}

#[test]
fn eviction_cell_materialises_token_value() {
    let (mut h, mut mem, tok) = fixture();
    // Arm a line, then thrash its set (L1-D 64 kB 8-way: 8 kB stride).
    let base = 0x2_0000u64;
    let t = warm(&mut h, &mut mem, &tok, base, true);
    let mut now = t;
    for i in 1..=8u64 {
        let out = h.access_data(
            now,
            MemAccessKind::Load,
            base + i * 8192,
            8,
            &mem,
            &tok,
            Mode::Secure,
        );
        now = out.complete_at + 1;
    }
    assert!(
        h.stats().token_lines_evicted_l1d >= 1,
        "armed-line eviction must be recorded"
    );
}

#[test]
fn lsq_spec_cells_cover_all_actions() {
    // Arm always inserts tagged, never forwards.
    let d = lsq_decision(Action::Arm, false, false, false);
    assert_eq!(d.insert, Some(SqTag::Arm));
    assert!(!d.may_forward);
    // Store over in-flight arm raises.
    let d = lsq_decision(Action::StoreSecure, true, false, false);
    assert_eq!(d.exception, Some(RestExceptionKind::StoreHitInflightArm));
    // Load forwarding from an arm raises.
    let d = lsq_decision(Action::Load, true, false, true);
    assert_eq!(d.exception, Some(RestExceptionKind::ForwardFromArm));
    // Double in-flight disarm raises.
    let d = lsq_decision(Action::Disarm, false, true, false);
    assert_eq!(d.exception, Some(RestExceptionKind::DoubleInflightDisarm));
}

#[test]
fn pipeline_enforces_lsq_forwarding_rule_end_to_end() {
    use rest::prelude::*;
    // Guest program: arm a slot then immediately load from it — close
    // enough that the arm is still in flight in the store queue.
    let mut p = ProgramBuilder::new();
    p.li(Reg::T0, 0x30_0000);
    p.arm(Reg::T0);
    p.ld(Reg::A0, Reg::T0, 8);
    p.halt();
    let r = rest::simulate(p.build(), RtConfig::rest(Mode::Secure, true));
    // Architecturally this is a token load; microarchitecturally the LSQ
    // forwarding rule fires (or the cache token bit if the arm drained).
    assert!(matches!(r.stop, StopReason::Violation(Violation::Rest(_))));
    assert!(r.core.lsq_rest_exceptions + r.mem.rest_exceptions >= 1);
}
