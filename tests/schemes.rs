//! Integration: end-to-end timing runs across protection schemes,
//! asserting the *shape* of the paper's headline results on test-scale
//! inputs:
//!
//! * ASan costs the most; REST secure the least (Figure 7),
//! * REST debug sits between secure and ASan, driven by store-commit
//!   delay (ROB blocked-by-store cycles an order of magnitude up, §VI-B),
//! * PerfectHW ≈ REST secure (hardware cost ≈ zero),
//! * full ≈ heap-only for REST (stack protection is nearly free),
//! * token width does not significantly change performance (Figure 8).

use rest::prelude::*;

fn run(w: Workload, rt: RtConfig) -> SimResult {
    let r = rest::simulate_workload(w, Scale::Test, rt);
    assert_eq!(r.stop, StopReason::Exit(0), "{w} failed under {}", r.label);
    r
}

#[test]
fn scheme_ordering_on_alloc_heavy_workload() {
    let w = Workload::Xalancbmk;
    let plain = run(w, RtConfig::plain());
    let asan = run(w, RtConfig::asan());
    let secure = run(w, RtConfig::rest(Mode::Secure, true));
    let debug = run(w, RtConfig::rest(Mode::Debug, true));

    assert!(
        asan.cycles() > secure.cycles(),
        "ASan ({}) must cost more than REST secure ({})",
        asan.cycles(),
        secure.cycles()
    );
    assert!(
        debug.cycles() >= secure.cycles(),
        "debug ({}) must cost at least secure ({})",
        debug.cycles(),
        secure.cycles()
    );
    assert!(secure.cycles() > plain.cycles());
}

#[test]
fn rest_secure_is_cheap_on_low_alloc_workloads() {
    // lbm/sjeng make almost no allocations: REST secure overhead must be
    // very small (the paper shows ~0%).
    for w in [Workload::Lbm, Workload::Sjeng] {
        let plain = run(w, RtConfig::plain());
        let secure = run(w, RtConfig::rest(Mode::Secure, false));
        let pct = secure.overhead_pct_vs(&plain);
        assert!(
            pct < 5.0,
            "{w}: REST secure heap overhead {pct:.2}% too high"
        );
    }
}

#[test]
fn asan_overhead_is_substantial_on_memory_heavy_workloads() {
    // The whole point of REST: ASan's per-access checks are expensive.
    let w = Workload::Hmmer;
    let plain = run(w, RtConfig::plain());
    let asan = run(w, RtConfig::asan());
    let pct = asan.overhead_pct_vs(&plain);
    assert!(pct > 15.0, "{w}: ASan overhead only {pct:.2}%");
}

#[test]
fn perfect_hw_tracks_rest_secure() {
    for w in [Workload::Gcc, Workload::Lbm] {
        let secure = run(w, RtConfig::rest(Mode::Secure, true));
        let perfect = run(w, RtConfig::rest_perfect(true));
        let ratio = secure.cycles() as f64 / perfect.cycles() as f64;
        assert!(
            (0.9..1.15).contains(&ratio),
            "{w}: secure/perfect ratio {ratio:.3} — REST hardware must be ~free"
        );
    }
}

#[test]
fn stack_protection_adds_little_on_top_of_heap() {
    // Figure 7: Full and Heap differ by ~0.16% on average. Allow a few
    // percent at test scale, on the most stack-intensive workload.
    let w = Workload::Sjeng;
    let heap = run(w, RtConfig::rest(Mode::Secure, false));
    let full = run(w, RtConfig::rest(Mode::Secure, true));
    let extra = full.cycles() as f64 / heap.cycles() as f64;
    assert!(
        extra < 1.25,
        "{w}: full/heap ratio {extra:.3} — stack arms too expensive"
    );
    assert!(full.cycles() >= heap.cycles());
}

#[test]
fn debug_mode_multiplies_rob_blocked_store_cycles() {
    let w = Workload::Xalancbmk;
    let secure = run(w, RtConfig::rest(Mode::Secure, true));
    let debug = run(w, RtConfig::rest(Mode::Debug, true));
    assert!(
        debug.core.rob_blocked_store_cycles
            > 5 * secure.core.rob_blocked_store_cycles.max(1),
        "debug blocked {} vs secure {}",
        debug.core.rob_blocked_store_cycles,
        secure.core.rob_blocked_store_cycles
    );
}

#[test]
fn token_width_is_performance_neutral(){
    // Figure 8: 16/32/64 B tokens perform alike.
    let w = Workload::Gcc;
    let mut cycles = Vec::new();
    for width in [TokenWidth::B16, TokenWidth::B32, TokenWidth::B64] {
        let r = run(w, RtConfig::rest(Mode::Secure, true).with_token_width(width));
        cycles.push(r.cycles() as f64);
    }
    let max = cycles.iter().cloned().fold(0.0f64, f64::max);
    let min = cycles.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min < 1.15,
        "token width changed performance by {:.1}% ({cycles:?})",
        (max / min - 1.0) * 100.0
    );
}

#[test]
fn workload_results_are_deterministic() {
    let a = run(Workload::Astar, RtConfig::rest(Mode::Secure, true));
    let b = run(Workload::Astar, RtConfig::rest(Mode::Secure, true));
    assert_eq!(a.cycles(), b.cycles());
    assert_eq!(a.core.uops, b.core.uops);
    assert_eq!(a.mem.l1d_misses, b.mem.l1d_misses);
}

#[test]
fn token_traffic_at_l2_interface_is_rare() {
    // §VI-B: ~0.04 token lines per kilo-instruction even for xalanc.
    // Test-scale footprints are smaller than L1+L2, so token lines
    // should almost never reach memory.
    let r = run(Workload::Xalancbmk, RtConfig::rest(Mode::Secure, true));
    assert!(
        r.tokens_per_kiloinst_l2_mem() < 2.0,
        "tokens/kinst at L2/mem = {:.3}",
        r.tokens_per_kiloinst_l2_mem()
    );
}
