//! Integration: the static ARM/DISARM verifier over the whole in-tree
//! corpus, end-to-end through the public API — every workload generator
//! must lint clean, every attack program must be flagged, and the
//! paper's §V detect/miss split must show up as must-trap verdicts that
//! the functional emulator confirms.

use rest::cpu::{Emulator, SimConfig, StopReason};
use rest::prelude::*;
use rest::verify::verify_program;
use rest::workloads::GOBMK_INPUTS;

/// Every figure row, built exactly as the benchmark harness builds it.
fn workload_rows() -> Vec<(String, Program)> {
    let mut rows = Vec::new();
    for w in Workload::ALL {
        let seeds: Vec<(String, u64)> = if w == Workload::Gobmk {
            GOBMK_INPUTS
                .iter()
                .map(|&(n, s)| (n.to_string(), s))
                .collect()
        } else {
            vec![(w.name().to_string(), 0xC0FFEE)]
        };
        for (name, seed) in seeds {
            let params = WorkloadParams {
                scale: Scale::Test,
                stack_scheme: StackScheme::Rest,
                token_width: TokenWidth::B64,
                seed,
            };
            rows.push((name, w.build(&params)));
        }
    }
    rows
}

#[test]
fn every_workload_row_lints_clean() {
    let rows = workload_rows();
    assert_eq!(rows.len(), 16, "12 benchmarks, gobmk expanded to 5 inputs");
    for (name, program) in rows {
        let result = verify_program(&program);
        assert!(
            result.findings.is_empty(),
            "workload '{name}' must lint clean, got: {:?}",
            result.findings
        );
    }
}

#[test]
fn every_attack_is_flagged() {
    for attack in Attack::ALL {
        let result = verify_program(&attack.build(StackScheme::Rest));
        assert!(
            !result.findings.is_empty(),
            "attack '{}' produced no findings",
            attack.name()
        );
    }
}

/// The attacks REST detects at runtime are exactly the ones the static
/// verifier can prove will trap; the paper's documented misses
/// (padding-gap overread, uninitialised-data leak, redzone jumping)
/// yield warnings but no must-trap claim.
#[test]
fn must_trap_verdicts_match_the_papers_detect_miss_split() {
    let detected = [
        "heartbleed-oob-read",
        "heap-overflow-write",
        "stack-overflow-write",
        "use-after-free",
        "double-free",
        "brute-force-disarm",
        "unchecked-library-overflow",
    ];
    let missed = [
        "padding-gap-overread",
        "uninit-data-leak",
        "jump-over-redzone",
    ];
    for attack in Attack::ALL {
        let result = verify_program(&attack.build(StackScheme::Rest));
        let name = attack.name();
        if detected.contains(&name) {
            assert!(
                result.has_must_trap(),
                "attack '{name}' should have a must-trap verdict, got: {:?}",
                result.findings
            );
        } else {
            assert!(missed.contains(&name), "attack '{name}' not classified");
            assert!(
                !result.has_must_trap(),
                "attack '{name}' is a documented REST miss; a must-trap \
                 verdict would be unsound: {:?}",
                result.findings
            );
        }
    }
}

/// Differential soundness: every must-trap verdict reproduces as a
/// runtime violation on the functional emulator under the full-REST
/// configuration.
#[test]
fn must_trap_verdicts_reproduce_on_the_emulator() {
    let cfg = SimConfig::isca2018(RtConfig::rest(Mode::Secure, true));
    for attack in Attack::ALL {
        let program = attack.build(StackScheme::Rest);
        let result = verify_program(&program);
        if !result.has_must_trap() {
            continue;
        }
        let mut emu = Emulator::new(program, &cfg);
        let stop = emu.run_functional().clone();
        assert!(
            matches!(stop, StopReason::Violation(_)),
            "attack '{}' has a must-trap verdict but the emulator \
             stopped with {stop:?}",
            attack.name()
        );
    }
}
