//! Integration: system-level token management (§IV-B), the detector-
//! placement limitation (§V-B), and the setjmp/longjmp limitation
//! (§V-C) — the parts of the design the paper discusses but does not
//! benchmark, exercised end-to-end.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rest::core::policy::{PerProcessTokenPolicy, SystemTokenPolicy};
use rest::core::{Mode, RestExceptionKind, Token, TokenWidth};
use rest::mem::{Hierarchy, MemConfig};
use rest::prelude::*;
use rest_isa::{GuestMemory, MemAccessKind};

fn fixture() -> (Hierarchy, GuestMemory, StdRng) {
    (
        Hierarchy::new(MemConfig::isca2018()),
        GuestMemory::new(),
        StdRng::seed_from_u64(99),
    )
}

#[test]
fn token_rotation_orphans_previously_armed_lines() {
    // §IV-B: the system token can be rotated (e.g. at reboot) without
    // recompilation. The flip side, demonstrated here: lines armed under
    // the OLD token are no longer detected once the register holds the
    // new value — rotation is only safe when no tokens are live, which
    // is why the paper rotates at reboot.
    let (mut h, mut mem, mut rng) = fixture();
    let mut policy = SystemTokenPolicy::new(TokenWidth::B64, &mut rng);
    let old = policy.token().clone();
    mem.write_bytes(0x1000, old.bytes());
    // Detected under the old token…
    let out = h.access_data(0, MemAccessKind::Load, 0x1000, 8, &mem, &old, Mode::Secure);
    assert_eq!(out.exception, Some(RestExceptionKind::TokenLoad));

    policy.rotate(&mut rng);
    let new = policy.token().clone();
    assert_ne!(old.bytes(), new.bytes());
    // …but on a fresh boot (cold caches) with the rotated register, the
    // same line content no longer matches: the stale token is orphaned.
    let (mut h2, _, _) = fixture();
    let out = h2.access_data(0, MemAccessKind::Load, 0x1000, 8, &mem, &new, Mode::Secure);
    assert!(out.exception.is_none());
}

#[test]
fn per_process_tokens_isolate_and_shared_token_protects_across_processes() {
    // §IV-B's two deployment models, at the detector level.
    let (mut h, mut mem, mut rng) = fixture();
    let mut policy = PerProcessTokenPolicy::new();
    policy.spawn(1, TokenWidth::B64, &mut rng);
    policy.spawn(2, TokenWidth::B64, &mut rng);

    // Process 1 arms a (shared) page with ITS token.
    let t1 = policy.switch_to(1).unwrap().clone();
    mem.write_bytes(0x8000, t1.bytes());
    let out = h.access_data(0, MemAccessKind::Load, 0x8000, 8, &mem, &t1, Mode::Secure);
    assert_eq!(out.exception, Some(RestExceptionKind::TokenLoad));

    // Context switch: process 2's register holds a different value, so
    // process 1's token does not trap process 2 (per-process isolation —
    // and the reason cross-process shared memory needs the single-token
    // model instead).
    let t2 = policy.switch_to(2).unwrap().clone();
    let (mut h2, _, _) = fixture();
    let out = h2.access_data(0, MemAccessKind::Load, 0x8000, 8, &mem, &t2, Mode::Secure);
    assert!(out.exception.is_none());

    // Cloned processes inherit the parent token, so COW pages containing
    // tokens stay armed for both sides.
    policy.clone_process(1, 3);
    let t3 = policy.switch_to(3).unwrap().clone();
    let (mut h3, _, _) = fixture();
    let out = h3.access_data(0, MemAccessKind::Load, 0x8000, 8, &mem, &t3, Mode::Secure);
    assert_eq!(out.exception, Some(RestExceptionKind::TokenLoad));
}

#[test]
fn dma_sidesteps_the_detector() {
    // §V-B "Detector Placement": the detector sits at the L1-D, so
    // traffic that bypasses the cache (DMA) can destroy a token without
    // raising anything.
    let (mut h, mut mem, mut rng) = fixture();
    let token = Token::generate(TokenWidth::B64, &mut rng);
    mem.write_bytes(0x2000, token.bytes());
    // Armed and detected through the normal path.
    let out = h.access_data(0, MemAccessKind::Load, 0x2000, 8, &mem, &token, Mode::Secure);
    assert_eq!(out.exception, Some(RestExceptionKind::TokenLoad));

    // A DMA engine overwrites the line and invalidates the cached copy.
    mem.fill(0x2000, 64, 0x41);
    h.coherence_invalidate(0x2000);

    // The token is gone; no exception was ever raised for the DMA write
    // itself, and subsequent CPU accesses read the DMA data freely.
    let out = h.access_data(1000, MemAccessKind::Load, 0x2000, 8, &mem, &token, Mode::Secure);
    assert!(out.exception.is_none(), "token destroyed silently by DMA");
}

#[test]
fn longjmp_leaves_stale_stack_tokens_behind() {
    // §V-C: REST cannot support setjmp/longjmp — disarms happen at fixed
    // frame offsets, and a longjmp that skips an epilogue strands armed
    // tokens on the stack. A later, innocent frame then trips over them.
    // This test demonstrates exactly that failure mode end-to-end.
    let mut p = ProgramBuilder::new();
    let guard = rest::runtime::FrameGuard::new(StackScheme::Rest, TokenWidth::B64);
    guard.emit_startup(&mut p);

    let f = p.new_label();
    let after_longjmp = p.new_label();
    // "setjmp": remember SP in S0, call f.
    p.mv(Reg::S0, Reg::SP);
    p.call(f);

    // f: arms its frame redzones, then "longjmp"s out without running
    // the epilogue (restore SP from S0 and jump).
    p.bind(f);
    let layout = guard.layout(&[32], 16);
    guard.emit_prologue(&mut p, &layout);
    p.mv(Reg::SP, Reg::S0); // longjmp: tear down the frame the fast way
    p.j(after_longjmp);

    p.bind(after_longjmp);
    // An innocent function now runs in the same stack region WITHOUT
    // REST instrumentation (unprotected leaf): its ordinary local write
    // lands on a stranded token.
    let frame = layout.frame_size as i64;
    p.addi(Reg::SP, Reg::SP, -frame);
    let rz_off = layout.redzones[0].0 as i64;
    p.li(Reg::T0, 7);
    p.sd(Reg::T0, Reg::SP, rz_off); // plain store onto the stale token
    p.addi(Reg::SP, Reg::SP, frame);
    p.li(Reg::A0, 0);
    p.ecall(EcallNum::Exit);

    let r = rest::simulate(p.build(), RtConfig::rest(Mode::Secure, true));
    match r.stop {
        StopReason::Violation(Violation::Rest(e)) => {
            assert_eq!(
                e.kind,
                RestExceptionKind::TokenStore,
                "the stale token must trip the innocent frame"
            );
        }
        other => panic!("expected the §V-C longjmp false positive, got {other:?}"),
    }
}

#[test]
fn sprinkled_decoys_do_not_perturb_correct_programs() {
    // Sprinkling only adds tokens to gaps no correct program touches:
    // every workload must still run cleanly with it enabled.
    for w in [Workload::Gcc, Workload::Xalancbmk] {
        let r = rest::simulate_workload(
            w,
            Scale::Test,
            RtConfig::rest(Mode::Secure, false).with_sprinkle(),
        );
        assert_eq!(r.stop, StopReason::Exit(0), "{w} under sprinkling");
    }
}
