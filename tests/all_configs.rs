//! Exhaustive configuration matrix: every workload under every Figure 7
//! configuration. Slow in debug builds, so ignored by default — run with
//!
//! ```bash
//! cargo test --release --test all_configs -- --ignored
//! ```

use rest::prelude::*;

#[test]
#[ignore = "broad matrix; run explicitly with --release -- --ignored"]
fn every_workload_under_every_configuration() {
    let configs = [
        RtConfig::plain(),
        RtConfig::asan(),
        RtConfig::rest(Mode::Debug, true),
        RtConfig::rest(Mode::Secure, true),
        RtConfig::rest_perfect(true),
        RtConfig::rest(Mode::Debug, false),
        RtConfig::rest(Mode::Secure, false),
        RtConfig::rest_perfect(false),
        RtConfig::rest(Mode::Secure, true).with_token_width(TokenWidth::B16),
        RtConfig::rest(Mode::Secure, true).with_token_width(TokenWidth::B32),
        RtConfig::rest(Mode::Secure, false).with_sprinkle(),
        RtConfig::rest(Mode::Secure, false).with_fast_pool(),
    ];
    for w in Workload::ALL {
        for cfg in &configs {
            let r = rest::simulate_workload(w, Scale::Test, cfg.clone());
            assert_eq!(
                r.stop,
                StopReason::Exit(0),
                "{w} under {}: {:?}",
                cfg.label(),
                r.stop
            );
            assert!(r.core.cycles > 0);
        }
    }
}
