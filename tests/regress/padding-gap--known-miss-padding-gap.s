# rest-fuzz minimized reproducer
# seed: 0xf0cc5eed  case: 13
# signature: padding-gap/known-miss-padding-gap
    li a0, 184
    li a7, 1
    ecall
    addi s5, a0, 0
    ld1u t0, 187(s5)
    addi a0, t0, 0
    li a7, 6
    ecall
    li a0, 0
    li a7, 5
    ecall
