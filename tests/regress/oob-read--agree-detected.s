# rest-fuzz minimized reproducer
# seed: 0xf0cc5eed  case: 3
# signature: oob-read/agree-detected
    li a0, 1
    li a7, 1
    ecall
    addi s5, a0, 0
    ld4u t0, 61(s5)
    li a0, 0
    li a7, 5
    ecall
