# rest-fuzz minimized reproducer
# seed: 0xf0cc5eed  case: 8
# signature: uninit-read/known-miss-uninit-read
    li a0, 30
    li a7, 1
    ecall
    addi s5, a0, 0
    ld2u t0, 8(s5)
    addi a0, t0, 0
    li a7, 6
    ecall
    li a0, 0
    li a7, 5
    ecall
