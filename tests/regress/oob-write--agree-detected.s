# rest-fuzz minimized reproducer
# seed: 0xf0cc5eed  case: 2
# signature: oob-write/agree-detected
    li a0, 1
    li a7, 1
    ecall
    addi s5, a0, 0
    li t0, 0
    st2 t0, 63(s5)
    li a0, 0
    li a7, 5
    ecall
