# rest-fuzz minimized reproducer
# seed: 0xf0cc5eed  case: 20
# signature: double-free/agree-detected
    li a0, 1
    li a7, 1
    ecall
    addi s5, a0, 0
    addi a0, s5, 0
    li a7, 2
    ecall
    addi a0, s5, 0
    li a7, 2
    ecall
    li a0, 0
    li a7, 5
    ecall
