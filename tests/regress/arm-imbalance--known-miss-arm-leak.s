# rest-fuzz minimized reproducer
# seed: 0xf0cc5eed  case: 5
# signature: arm-imbalance/known-miss-arm-leak
    li a0, 11
    li a7, 1
    ecall
    addi s5, a0, 0
    arm s5
    li a0, 0
    li a7, 5
    ecall
