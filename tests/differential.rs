//! Differential testing: randomly generated *memory-safe* guest
//! programs must (a) never trip any protection scheme, and (b) produce
//! byte-identical output under plain, ASan, and REST — i.e. the
//! hardened stacks are transparent to correct programs. This is the
//! repository's strongest whole-stack correctness property: it crosses
//! the program builder, the emulator, all three allocators, the
//! instrumentation passes, and the runtime.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rest::prelude::*;

/// Generator state: tracks live allocations so every emitted access is
/// in bounds and every free targets a live pointer exactly once.
struct Gen {
    rng: StdRng,
    p: ProgramBuilder,
    /// (slot register-spill address, size) of live allocations; pointers
    /// are spilled to a static table so registers stay free.
    live: Vec<(u64, i64)>,
    used_slots: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        let mut p = ProgramBuilder::new();
        // Startup: SP + shadow base (matches FrameGuard::emit_startup).
        p.li(Reg::SP, 0x7fff_f000);
        p.li(Reg::GP, 0x1_0000_0000);
        // Pointer spill table in static data.
        p.li(Reg::A0, 4096);
        p.ecall(EcallNum::Sbrk);
        p.mv(Reg::S0, Reg::A0);
        Gen {
            rng: StdRng::seed_from_u64(seed),
            p,
            live: Vec::new(),
            used_slots: 0,
        }
    }

    fn emit_malloc(&mut self) {
        let size = *[16i64, 24, 64, 100, 256].get(self.rng.gen_range(0..5)).unwrap();
        self.p.li(Reg::A0, size);
        self.p.ecall(EcallNum::Malloc);
        let slot = self.used_slots * 8;
        self.used_slots += 1;
        self.p.sd(Reg::A0, Reg::S0, slot as i64);
        // Initialise the allocation: reading uninitialised heap is
        // implementation-defined (plain recycles stale bytes, REST
        // zeroes, ASan preserves), and a *correct* program doesn't do it.
        self.p.li(Reg::A1, 0);
        self.p.li(Reg::A2, size);
        self.p.ecall(EcallNum::Memset);
        self.live.push((slot, size));
    }

    fn load_ptr(&mut self, slot: u64, into: Reg) {
        self.p.ld(into, Reg::S0, slot as i64);
    }

    fn emit_access(&mut self) {
        if self.live.is_empty() {
            return;
        }
        let idx = self.rng.gen_range(0..self.live.len());
        let (slot, size) = self.live[idx];
        self.load_ptr(slot, Reg::T1);
        // An in-bounds offset for an 8-byte access (sizes are ≥ 16).
        let max_off = (size - 8).max(0);
        let off = self.rng.gen_range(0..=max_off / 8) * 8;
        if self.rng.gen_bool(0.5) {
            self.p.li(Reg::T2, self.rng.gen_range(0..1000));
            self.p.sd(Reg::T2, Reg::T1, off);
        } else {
            self.p.ld(Reg::T3, Reg::T1, off);
            // Fold the loaded value into a checksum register.
            self.p.add(Reg::S1, Reg::S1, Reg::T3);
        }
    }

    fn emit_free(&mut self) {
        if self.live.is_empty() {
            return;
        }
        let idx = self.rng.gen_range(0..self.live.len());
        let (slot, _) = self.live.swap_remove(idx);
        self.load_ptr(slot, Reg::A0);
        self.p.ecall(EcallNum::Free);
    }

    fn emit_memset_inbounds(&mut self) {
        if self.live.is_empty() {
            return;
        }
        let idx = self.rng.gen_range(0..self.live.len());
        let (slot, size) = self.live[idx];
        self.load_ptr(slot, Reg::A0);
        self.p.li(Reg::A1, self.rng.gen_range(0..256));
        self.p.li(Reg::A2, self.rng.gen_range(1..=size));
        self.p.ecall(EcallNum::Memset);
    }

    fn finish(mut self) -> Program {
        // Emit the checksum so output equality is meaningful.
        for _ in 0..8 {
            self.p.andi(Reg::A0, Reg::S1, 0xff);
            self.p.ecall(EcallNum::PutChar);
            self.p.srli(Reg::S1, Reg::S1, 8);
        }
        // Free everything still live.
        let live = std::mem::take(&mut self.live);
        for (slot, _) in live {
            self.load_ptr(slot, Reg::A0);
            self.p.ecall(EcallNum::Free);
        }
        self.p.li(Reg::A0, 0);
        self.p.ecall(EcallNum::Exit);
        self.p.build()
    }
}

fn generate(seed: u64, steps: usize) -> Program {
    let mut g = Gen::new(seed);
    for _ in 0..steps {
        match g.rng.gen_range(0..10) {
            0..=2 => g.emit_malloc(),
            3..=7 => g.emit_access(),
            8 => g.emit_free(),
            _ => g.emit_memset_inbounds(),
        }
        // Bound the spill table.
        if g.used_slots >= 500 {
            break;
        }
    }
    g.finish()
}

#[test]
fn safe_programs_are_transparent_to_every_scheme() {
    for seed in 0..12u64 {
        let program = generate(seed, 120);
        let plain = rest::simulate(program.clone(), RtConfig::plain());
        assert_eq!(
            plain.stop,
            StopReason::Exit(0),
            "seed {seed}: plain run failed"
        );
        for rt in [
            RtConfig::asan(),
            RtConfig::rest(Mode::Secure, true),
            RtConfig::rest(Mode::Debug, true),
            RtConfig::rest(Mode::Secure, false).with_token_width(TokenWidth::B16),
            RtConfig::rest(Mode::Secure, false).with_sprinkle(),
            RtConfig::rest_perfect(true),
        ] {
            let label = rt.label();
            let r = rest::simulate(program.clone(), rt);
            assert_eq!(
                r.stop,
                StopReason::Exit(0),
                "seed {seed}: false positive under {label}: {:?}",
                r.stop
            );
            assert_eq!(
                r.output, plain.output,
                "seed {seed}: output diverged under {label}"
            );
        }
    }
}

#[test]
fn safe_programs_with_tiny_quarantine_still_run_clean() {
    // Aggressive reuse (forced quarantine eviction) exercises the
    // disarm-and-zero release path on every free.
    for seed in 20..26u64 {
        let program = generate(seed, 150);
        let r = rest::simulate(
            program,
            RtConfig::rest(Mode::Secure, false).with_quarantine(128),
        );
        assert_eq!(r.stop, StopReason::Exit(0), "seed {seed}: {:?}", r.stop);
    }
}
