//! Integration: the full attack × scheme matrix (§V of the paper),
//! end-to-end through the public API — every attack is run under every
//! scheme and checked against the paper's expectation, including the
//! documented REST false negative and the leaks the plain build allows.

use rest::attacks::{verify, Attack, Expectation};
use rest::prelude::*;

fn configs() -> Vec<RtConfig> {
    vec![
        RtConfig::plain(),
        RtConfig::asan(),
        RtConfig::rest(Mode::Secure, true),
        RtConfig::rest(Mode::Debug, true),
    ]
}

#[test]
fn full_attack_matrix_matches_paper_expectations() {
    let mut lines = Vec::new();
    for attack in Attack::ALL {
        for cfg in configs() {
            match verify(attack, cfg) {
                Ok(line) => lines.push(line),
                Err(e) => panic!("matrix mismatch: {e}\nso far:\n{}", lines.join("\n")),
            }
        }
    }
    // Every attack × configuration pair verified.
    assert_eq!(lines.len(), Attack::ALL.len() * 4);
}

#[test]
fn rest_detection_is_consistent_between_secure_and_debug() {
    // Mode affects precision and performance, never *whether* a
    // violation is detected.
    for attack in Attack::ALL {
        let secure = attack.run(RtConfig::rest(Mode::Secure, true));
        let debug = attack.run(RtConfig::rest(Mode::Debug, true));
        assert_eq!(
            secure.detected, debug.detected,
            "{attack}: secure/debug detection diverged"
        );
        assert_eq!(secure.leaked_secret, debug.leaked_secret, "{attack}");
    }
}

#[test]
fn debug_mode_reports_precisely_secure_does_not() {
    let secure = Attack::UseAfterFree.run(RtConfig::rest(Mode::Secure, false));
    match secure.stop {
        StopReason::Violation(Violation::Rest(e)) => assert!(!e.precise),
        ref other => panic!("{other:?}"),
    }
    let debug = Attack::UseAfterFree.run(RtConfig::rest(Mode::Debug, false));
    match debug.stop {
        StopReason::Violation(Violation::Rest(e)) => assert!(e.precise),
        ref other => panic!("{other:?}"),
    }
}

#[test]
fn narrow_tokens_shrink_the_padding_false_negative() {
    // §V-C: the padding gap can be reduced with narrower tokens. A
    // 100-byte allocation pads to 128 under 64 B tokens (28-byte gap)
    // but only to 112 under 16 B tokens (12-byte gap): the overread at
    // offset 104+8 that 64 B tokens miss is inside the 16 B token zone.
    let wide = Attack::PaddingGapOverread.run(RtConfig::rest(Mode::Secure, false));
    assert!(!wide.detected, "64B tokens miss the pad overread");
    let narrow = Attack::PaddingGapOverread
        .run(RtConfig::rest(Mode::Secure, false).with_token_width(TokenWidth::B16));
    assert!(
        narrow.detected,
        "16B tokens must catch the same overread: {:?}",
        narrow.stop
    );
}

#[test]
fn perfect_hw_provides_no_protection() {
    // The limit study replaces arms with stores: the Heartbleed read
    // must sail through, confirming PerfectHW is overhead-only.
    let out = Attack::Heartbleed.run(RtConfig::rest_perfect(true));
    assert!(!out.detected);
    assert!(out.leaked_secret);
}

#[test]
fn expectation_table_is_total() {
    for attack in Attack::ALL {
        for scheme in [Scheme::Plain, Scheme::Asan, Scheme::Rest] {
            // Must not panic, and NotApplicable only where documented.
            let e = attack.expectation(scheme);
            if e == Expectation::NotApplicable {
                assert!(
                    matches!(attack, Attack::BruteForceDisarm),
                    "{attack} unexpectedly n/a under {scheme:?}"
                );
            }
            let _ = e;
        }
    }
}
