//! Legacy-binary heap protection (§IV-A): REST secures the heap of a
//! program that was **never recompiled** — the same binary runs under
//! the plain and REST configurations; only the allocator underneath it
//! changes (the paper's `LD_PRELOAD` deployment).
//!
//! Run with: `cargo run --example legacy_heap`

use rest::prelude::*;

/// A "legacy binary": built once, with no REST instrumentation, no
/// stack-protection pass, no knowledge of tokens. It has a use-after-free
/// bug in its cache-recycling logic.
fn legacy_binary() -> Program {
    let mut p = ProgramBuilder::new();
    // cache_entry = malloc(128); use it; free it...
    p.li(Reg::A0, 128);
    p.ecall(EcallNum::Malloc);
    p.mv(Reg::S0, Reg::A0);
    p.li(Reg::T0, 0xCAFE);
    p.sd(Reg::T0, Reg::S0, 0);
    p.mv(Reg::A0, Reg::S0);
    p.ecall(EcallNum::Free);
    // ...and then use it again through the stale pointer.
    p.ld(Reg::A1, Reg::S0, 0);
    p.li(Reg::A0, 0);
    p.ecall(EcallNum::Exit);
    p.build()
}

fn main() {
    println!("== Heap safety for legacy binaries (no recompilation) ==\n");
    let program = legacy_binary(); // built exactly once

    for rt in [RtConfig::plain(), RtConfig::rest(Mode::Secure, false)] {
        let label = rt.label();
        let r = rest::simulate(program.clone(), rt);
        match r.stop {
            StopReason::Violation(v) => {
                println!("  {label:<18} use-after-free DETECTED: {v}");
            }
            ref s => println!("  {label:<18} bug ran silently ({s:?})"),
        }
    }

    println!("\nThe binary contains zero REST instructions — `disassembly` proof:");
    let has_rest_insts = program
        .instructions()
        .iter()
        .any(|i| matches!(i, Inst::Arm { .. } | Inst::Disarm { .. }));
    println!("  arm/disarm in program text: {has_rest_insts}");
    println!("\nAll arming happens inside the swapped-in allocator, so heap");
    println!("protection needs only LD_PRELOAD, exactly as §IV-A describes.");
}
