//! Write a guest program in assembly text, assemble it, and watch REST
//! catch its use-after-free — the full user-facing workflow.
//!
//! Run with: `cargo run --release --example assembler`

use rest::prelude::*;
use rest_isa::parse_asm;

const SOURCE: &str = "
# A tiny cache with a lifetime bug: the entry is freed on eviction but
# the stale pointer is dereferenced afterwards.

main:
    li   a0, 96
    ecall malloc            ; entry = malloc(96)
    mv   s0, a0
    li   t0, 0x1234
    sd   t0, 0(s0)          ; entry->key = 0x1234

    mv   a0, s0
    ecall free              ; evict(entry)

    ld   a1, 0(s0)          ; BUG: read through the stale pointer
    li   a0, 0
    ecall exit
";

fn main() {
    let program = parse_asm(SOURCE).expect("assembly is well-formed");
    println!("assembled {} instructions:\n{}", program.len(), program.disassemble());

    for rt in [RtConfig::plain(), RtConfig::rest(Mode::Secure, false)] {
        let label = rt.label();
        let r = rest::simulate(program.clone(), rt);
        match r.stop {
            StopReason::Violation(v) => println!("{label:<18} -> caught: {v}"),
            ref s => println!("{label:<18} -> {s:?} (bug undetected)"),
        }
    }

    // The program also round-trips through the serialiser.
    let text = program.to_asm();
    let again = parse_asm(&text).expect("serialised text re-assembles");
    println!("\nround-trip: {} -> {} instructions", program.len(), again.len());
}
