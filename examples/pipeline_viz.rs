//! Visualise the pipeline: trace the first micro-ops of a tiny program
//! through fetch/dispatch/issue/execute/commit, under plain and REST
//! configurations — and watch the debug-mode store-commit delay appear
//! in the diagram.
//!
//! Run with: `cargo run --release --example pipeline_viz`

use rest::cpu::{SimConfig, System};
use rest::prelude::*;

fn program() -> Program {
    let mut p = ProgramBuilder::new();
    p.li(Reg::S0, 0x30_0000);
    p.li(Reg::T0, 7);
    p.sd(Reg::T0, Reg::S0, 0); // store (cold miss)
    p.ld(Reg::T1, Reg::S0, 0); // forwarded load
    p.add(Reg::T2, Reg::T1, Reg::T0);
    p.arm(Reg::S0); // REST arm (plain build: same PC slot is a store)
    p.disarm(Reg::S0);
    p.halt();
    p.build()
}

fn show(label: &str, rt: RtConfig) {
    let mut cfg = SimConfig::isca2018(rt);
    cfg.trace_uops = 12;
    let r = System::new(program(), cfg).run();
    println!("== {label} ({} cycles) ==", r.cycles());
    match &r.trace {
        Some(t) => print!("{t}"),
        None => println!("  (no trace)"),
    }
    println!();
}

fn main() {
    // The plain build cannot run arm/disarm meaningfully — use REST for
    // both, contrasting the secure and debug store-commit policies.
    show("REST secure (eager store commit)", RtConfig::rest(Mode::Secure, true));
    show(
        "REST debug (commit waits for the write: watch C slide right)",
        RtConfig::rest(Mode::Debug, true),
    );
}
