//! The paper's motivating example (Listing 1 / Figure 1): a
//! Heartbleed-style out-of-bounds read through an attacker-controlled
//! `memcpy` length, run under each protection scheme.
//!
//! Run with: `cargo run --example heartbleed`

use rest::attacks::{Attack, SECRET};
use rest::prelude::*;

fn main() {
    println!("== CVE-2014-0160 (Heartbleed), simplified, as in Listing 1 ==");
    println!(
        "victim buffer: 64 B | planted secret: {:?} | attacker payload length: 2048\n",
        String::from_utf8_lossy(SECRET)
    );

    for rt in [
        RtConfig::plain(),
        RtConfig::asan(),
        RtConfig::rest(Mode::Secure, false),
        RtConfig::rest(Mode::Debug, false),
    ] {
        let label = rt.label();
        let out = Attack::Heartbleed.run(rt);
        print!("  {label:<18}");
        match (&out.stop, out.leaked_secret) {
            (StopReason::Violation(v), _) => {
                println!("over-read STOPPED — {v}");
            }
            (_, true) => {
                println!("over-read SUCCEEDED — the secret leaked to the client");
            }
            (s, false) => println!("no detection, no leak ({s:?})"),
        }
    }

    println!("\nAs in Figure 1: tokens bookending the buffer stop the read before");
    println!("it reaches adjacent sensitive data; canaries would not (nothing is");
    println!("overwritten), and the plain build leaks its memory to the network.");
}
