//! Quickstart: build a tiny guest program, run it unprotected and under
//! REST, and watch REST stop a heap overflow the plain build misses.
//!
//! Run with: `cargo run --example quickstart`

use rest::prelude::*;

fn sum_array_program(walk_past_end: bool) -> Program {
    let mut p = ProgramBuilder::new();
    // buf = malloc(256); fill with 1..32; sum it back.
    p.li(Reg::A0, 256);
    p.ecall(EcallNum::Malloc);
    p.mv(Reg::S0, Reg::A0);
    let limit = if walk_past_end { 512 } else { 256 };

    // fill
    p.li(Reg::T0, 0);
    let fill = p.label_here();
    p.add(Reg::T1, Reg::S0, Reg::T0);
    p.sd(Reg::T0, Reg::T1, 0);
    p.addi(Reg::T0, Reg::T0, 8);
    p.li(Reg::T2, limit); // the bug: writes run past the allocation
    p.blt(Reg::T0, Reg::T2, fill);

    // sum
    p.li(Reg::T0, 0);
    p.li(Reg::A1, 0);
    let sum = p.label_here();
    p.add(Reg::T1, Reg::S0, Reg::T0);
    p.ld(Reg::T3, Reg::T1, 0);
    p.add(Reg::A1, Reg::A1, Reg::T3);
    p.addi(Reg::T0, Reg::T0, 8);
    p.li(Reg::T2, 256);
    p.blt(Reg::T0, Reg::T2, sum);

    p.mv(Reg::A0, Reg::S0);
    p.ecall(EcallNum::Free);
    p.li(Reg::A0, 0);
    p.ecall(EcallNum::Exit);
    p.build()
}

fn main() {
    println!("== REST quickstart ==\n");

    // 1. A correct program, three ways: how much does protection cost?
    println!("correct program, cycles by scheme:");
    for rt in [
        RtConfig::plain(),
        RtConfig::asan(),
        RtConfig::rest(Mode::Secure, false),
    ] {
        let label = rt.label();
        let r = rest::simulate(sum_array_program(false), rt);
        println!("  {label:<18} {:>8} cycles  ({:.2} uops/cycle)", r.cycles(), r.core.uipc());
    }

    // 2. The buggy variant: who notices?
    println!("\nbuggy program (writes 256 bytes past a 256-byte buffer):");
    for rt in [
        RtConfig::plain(),
        RtConfig::asan(),
        RtConfig::rest(Mode::Secure, false),
    ] {
        let label = rt.label();
        let r = rest::simulate(sum_array_program(true), rt);
        match r.stop {
            StopReason::Violation(v) => println!("  {label:<18} DETECTED: {v}"),
            ref s => println!("  {label:<18} ran to {s:?} — overflow went unnoticed"),
        }
    }

    println!("\nREST detects the overflow in hardware with no per-access instrumentation.");
}
