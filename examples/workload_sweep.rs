//! Mini evaluation sweep: run a subset of the paper's workloads under
//! every scheme and print a Figure-7-style overhead table.
//!
//! Run with: `cargo run --release --example workload_sweep`
//! (use `--release`; the cycle-level simulator is slow in debug builds)

use rest::prelude::*;

fn main() {
    let workloads = [Workload::Lbm, Workload::Gcc, Workload::Xalancbmk, Workload::Sjeng];
    let configs = [
        RtConfig::asan(),
        RtConfig::rest(Mode::Debug, true),
        RtConfig::rest(Mode::Secure, true),
        RtConfig::rest(Mode::Secure, false),
    ];

    println!("== overhead over plain (%), test-scale inputs ==\n");
    print!("{:<12}", "workload");
    for c in &configs {
        print!("{:>20}", c.label());
    }
    println!();

    for w in workloads {
        let plain = rest::simulate_workload(w, Scale::Test, RtConfig::plain());
        assert_eq!(plain.stop, StopReason::Exit(0), "{w}: baseline failed");
        print!("{:<12}", w.name());
        for c in &configs {
            let r = rest::simulate_workload(w, Scale::Test, c.clone());
            assert_eq!(r.stop, StopReason::Exit(0), "{w} under {}", c.label());
            print!("{:>19.1}%", r.overhead_pct_vs(&plain));
        }
        println!();
    }

    println!("\nExpected shape (paper, Figure 7): ASan highest; REST debug in");
    println!("between; REST secure lowest, with alloc-heavy workloads (gcc,");
    println!("xalancbmk) above streaming ones (lbm, sjeng ~0%).");
}
