//! Deterministic, seeded fault injection for the REST simulator.
//!
//! REST's security argument assumes the token detector *always* fires on a
//! token-valued L1-D fill and that every LSQ hit on an armed token-bit
//! raises a precise exception.  This crate deliberately breaks those
//! assumptions, one seeded single-shot fault at a time, so the campaign
//! runner in `rest-bench` can measure how the stack fails: closed
//! (detected), open (missed detection / silent data corruption), or noisy
//! (spurious exceptions on clean programs).
//!
//! # Fault models
//!
//! | kind                | site (event counter)                      | effect |
//! |---------------------|-------------------------------------------|--------|
//! | `MetaBitClear`      | L1-D token-bit writes (arm) + fill detections | the bit is never set / dropped — fail-open |
//! | `MetaBitSet`        | clean L1-D fills                          | a spurious token bit appears — fail-closed |
//! | `TokenByteFlip`     | architectural arms                        | one bit of the stored token flips in guest memory |
//! | `ExceptionSuppress` | would-be REST violations                  | delivery for that slot is stuck off — fail-open |
//! | `ExceptionSpurious` | checked app loads/stores                  | a REST exception fires with no armed token |
//! | `EvictionMetaDrop`  | L1-D evictions carrying token metadata    | metadata lost on writeback; tokens decay in DRAM |
//!
//! # Determinism
//!
//! Each [`FaultSpec`] carries a seed and an arming window over the site's
//! event counter.  The single trigger index is
//! `window_start + splitmix64(seed ^ kind) % window_len`, so a given
//! (spec, program) pair always injects at exactly the same dynamic event
//! regardless of host scheduling or worker count.  All mutable state lives
//! in a [`FaultState`] behind a poison-proof [`FaultHandle`] shared by the
//! emulator (architectural effects) and the memory hierarchy (micro-
//! architectural trigger sites).

#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::sync::{Arc, Mutex, MutexGuard};

/// The six supported fault models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A token metadata bit in the L1-D is cleared (or never set): the
    /// detector saw the token but the per-slot bit was lost — fail-open.
    MetaBitClear,
    /// A token metadata bit is set on a clean fill: the detector fires on
    /// data that is not a token — fail-closed (spurious exception).
    MetaBitSet,
    /// One bit of a stored token flips in guest memory after an arm:
    /// the resident value no longer matches the token — missed detection.
    TokenByteFlip,
    /// A would-be REST exception is swallowed at the LSQ check and the
    /// slot's delivery path sticks off — fail-open.
    ExceptionSuppress,
    /// A REST exception is raised on an ordinary app access with no armed
    /// token anywhere near it — fail-closed.
    ExceptionSpurious,
    /// An L1-D eviction drops its token metadata; the tokens it guarded
    /// decay to zero bytes in DRAM — fail-open after writeback.
    EvictionMetaDrop,
}

impl FaultKind {
    /// Every model, in campaign/reporting order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::MetaBitClear,
        FaultKind::MetaBitSet,
        FaultKind::TokenByteFlip,
        FaultKind::ExceptionSuppress,
        FaultKind::ExceptionSpurious,
        FaultKind::EvictionMetaDrop,
    ];

    /// Stable kebab-case name used in JSON documents and audit entries.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::MetaBitClear => "meta-bit-clear",
            FaultKind::MetaBitSet => "meta-bit-set",
            FaultKind::TokenByteFlip => "token-byte-flip",
            FaultKind::ExceptionSuppress => "exception-suppress",
            FaultKind::ExceptionSpurious => "exception-spurious",
            FaultKind::EvictionMetaDrop => "eviction-meta-drop",
        }
    }

    fn salt(self) -> u64 {
        match self {
            FaultKind::MetaBitClear => 0x01,
            FaultKind::MetaBitSet => 0x02,
            FaultKind::TokenByteFlip => 0x03,
            FaultKind::ExceptionSuppress => 0x04,
            FaultKind::ExceptionSpurious => 0x05,
            FaultKind::EvictionMetaDrop => 0x06,
        }
    }

    /// The default arming window used by the `faults` campaign.  Windows
    /// target early dynamic events so the short `--test`-scale programs
    /// reliably reach the trigger: allocator redzones arm within the
    /// first few arm events, attacks trip their first would-be violation
    /// at event zero, and clean fills/checked accesses number in the
    /// thousands, so a slightly later index lands mid-run.
    pub fn default_spec(self, seed: u64) -> FaultSpec {
        let (start, len) = match self {
            FaultKind::MetaBitClear => (1, 1),
            FaultKind::MetaBitSet => (2, 1),
            FaultKind::TokenByteFlip => (1, 1),
            FaultKind::ExceptionSuppress => (0, 1),
            FaultKind::ExceptionSpurious => (64, 1),
            FaultKind::EvictionMetaDrop => (0, 1),
        };
        FaultSpec { kind: self, seed, window_start: start, window_len: len }
    }
}

/// splitmix64 — the standard 64-bit finaliser; cheap, deterministic, and
/// good enough to decorrelate (seed, kind) pairs.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A single seeded, single-shot fault: which model, where in the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    pub kind: FaultKind,
    /// Seed mixed into the trigger index and into any derived choice
    /// (which token bit flips, which slot a spurious bit lands in).
    pub seed: u64,
    /// First qualifying site event (0-based) at which the fault may arm.
    pub window_start: u64,
    /// Width of the arming window; the trigger index is drawn
    /// deterministically from `[window_start, window_start + len)`.
    /// A zero length is treated as one.
    pub window_len: u64,
}

impl FaultSpec {
    /// The exact 0-based site-event index at which this fault fires.
    pub fn trigger_event(&self) -> u64 {
        let len = self.window_len.max(1);
        self.window_start + splitmix64(self.seed ^ self.kind.salt()) % len
    }

    /// Which bit (0..width*8) of the stored token a `TokenByteFlip`
    /// corrupts, for a token slot of `width_bytes` bytes.
    pub fn corrupt_bit_index(&self, width_bytes: u64) -> u64 {
        splitmix64(self.seed.wrapping_mul(0x9e3779b1).wrapping_add(7)) % (width_bytes * 8)
    }

    /// Which slot of a line a `MetaBitSet` fault lands in, for a line of
    /// `slots` token slots.
    pub fn spurious_slot_index(&self, slots: u64) -> u64 {
        splitmix64(self.seed.wrapping_add(13)) % slots.max(1)
    }
}

/// One applied (or observed) fault effect, for audit-log provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Trigger site, e.g. `"l1d-arm"`, `"l1d-fill"`, `"lsq-check"`,
    /// `"l1d-evict"`, `"arm"`, `"suppressed-hit"`, `"self-heal"`.
    pub site: &'static str,
    /// Guest address the effect touched (slot, line, or access address).
    pub addr: u64,
    /// Dynamic site-event index at which it happened.
    pub event: u64,
}

/// A deferred architectural consequence raised by the memory hierarchy
/// and applied by the emulator between instructions (the hierarchy has no
/// access to guest memory or the armed set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEffect {
    /// An evicted L1-D line lost its token metadata: forget the armed
    /// slots under `mask` and decay their stored token bytes to zero.
    DropTokens {
        /// Line base address.
        line: u64,
        /// Per-slot token-bit mask that was dropped.
        mask: u8,
        /// Bytes per token slot (the token width).
        slot_bytes: u64,
    },
}

/// Summary of what a fault did during one run; serialised into the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultReport {
    pub kind: &'static str,
    /// Total qualifying site events observed.
    pub site_events: u64,
    /// The 0-based event index the spec armed on.
    pub trigger_event: u64,
    /// Whether the run reached the trigger at all.
    pub triggered: bool,
    /// Number of recorded effects (injection + downstream hits/heals),
    /// counted cumulatively — draining [`FaultHandle::take_records`]
    /// into the audit log does not reset it.
    pub records: u64,
    /// Accesses that would have raised a REST violation but were let
    /// through because their slot's detection was suppressed.
    pub suppressed_hits: u64,
}

/// Mutable injection state shared between the emulator and the hierarchy.
#[derive(Debug)]
pub struct FaultState {
    spec: FaultSpec,
    trigger_event: u64,
    site_events: u64,
    triggered_at: Option<u64>,
    /// Slot addresses whose REST detection is currently lost (cleared
    /// metadata bit, suppressed delivery, decayed token).
    suppressed: HashSet<u64>,
    /// `(slot_addr, width)` pairs that spuriously look armed.
    spurious: Vec<(u64, u64)>,
    pending: Vec<MemEffect>,
    records: Vec<FaultRecord>,
    records_total: u64,
    suppressed_hits: u64,
}

impl FaultState {
    fn new(spec: FaultSpec) -> FaultState {
        FaultState {
            spec,
            trigger_event: spec.trigger_event(),
            site_events: 0,
            triggered_at: None,
            suppressed: HashSet::new(),
            spurious: Vec::new(),
            pending: Vec::new(),
            records: Vec::new(),
            records_total: 0,
            suppressed_hits: 0,
        }
    }

    /// Count one qualifying site event; true exactly once, at the
    /// trigger index.
    fn note_site(&mut self) -> bool {
        let idx = self.site_events;
        self.site_events += 1;
        if self.triggered_at.is_none() && idx == self.trigger_event {
            self.triggered_at = Some(idx);
            true
        } else {
            false
        }
    }

    fn record(&mut self, site: &'static str, addr: u64) {
        self.records_total += 1;
        // Bounded so a pathological run cannot grow without limit; the
        // interesting records (injection, first hits) come first.
        if self.records.len() < 64 {
            let event = self.site_events.saturating_sub(1);
            self.records.push(FaultRecord { site, addr, event });
        }
    }
}

/// Shared, poison-proof handle to a [`FaultState`].  Both the emulator
/// and the hierarchy clone this; a panicking simulation thread must not
/// poison injection state for the cell's post-mortem report.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    inner: Arc<Mutex<FaultState>>,
    kind: FaultKind,
}

impl FaultHandle {
    pub fn new(spec: FaultSpec) -> FaultHandle {
        FaultHandle {
            inner: Arc::new(Mutex::new(FaultState::new(spec))),
            kind: spec.kind,
        }
    }

    /// The fault model this handle injects (cheap; no lock).
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    fn lock(&self) -> MutexGuard<'_, FaultState> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    // ---- hierarchy-side trigger sites -------------------------------

    /// L1-D miss fill: `mask` is the detector's per-slot token-bit mask
    /// for the incoming line (`slot_bytes` bytes per slot).  Returns the
    /// possibly-faulted mask.  Also models self-healing: a re-detected
    /// slot whose bit was previously lost gets its detection back.
    pub fn filter_fill_mask(&self, line: u64, mask: u8, slot_bytes: u64) -> u8 {
        let mut st = self.lock();
        if mask != 0 {
            // Self-heal any suppressed slot the detector re-covers (the
            // token bytes are still in memory, so a refill re-detects).
            if st.spec.kind == FaultKind::MetaBitClear && !st.suppressed.is_empty() {
                let mut healed = Vec::new();
                for i in 0..8 {
                    if mask & (1 << i) != 0 {
                        let slot = line + i as u64 * slot_bytes;
                        if st.suppressed.remove(&slot) {
                            healed.push(slot);
                        }
                    }
                }
                for slot in healed {
                    st.record("self-heal", slot);
                }
            }
            if st.spec.kind == FaultKind::MetaBitClear && st.note_site() {
                let bit = mask.trailing_zeros() as u64;
                let slot = line + bit * slot_bytes;
                st.suppressed.insert(slot);
                st.record("l1d-fill", slot);
                return mask & !(1 << bit);
            }
        } else if st.spec.kind == FaultKind::MetaBitSet && st.note_site() {
            let slots = 64 / slot_bytes.max(1);
            let idx = st.spec.spurious_slot_index(slots);
            let slot = line + idx * slot_bytes;
            st.spurious.push((slot, slot_bytes));
            st.record("l1d-fill", slot);
            return 1 << idx;
        }
        mask
    }

    /// L1-D token-bit write driven by an arm (`decision.set_token_bit`).
    /// Returns true if the metadata write must be dropped.
    pub fn suppress_arm_bit(&self, slot_addr: u64) -> bool {
        let mut st = self.lock();
        if st.spec.kind == FaultKind::MetaBitClear && st.note_site() {
            st.suppressed.insert(slot_addr);
            st.record("l1d-arm", slot_addr);
            return true;
        }
        false
    }

    /// L1-D eviction carrying token metadata.  Returns true if the
    /// metadata is lost; the architectural decay is queued as a
    /// [`MemEffect`] for the emulator to apply.
    pub fn drop_eviction(&self, line: u64, mask: u8, slot_bytes: u64) -> bool {
        let mut st = self.lock();
        if st.spec.kind == FaultKind::EvictionMetaDrop && st.note_site() {
            st.pending.push(MemEffect::DropTokens { line, mask, slot_bytes });
            st.record("l1d-evict", line);
            return true;
        }
        false
    }

    // ---- emulator-side (architectural) sites ------------------------

    /// An architectural arm of `slot_addr` just completed.  Returns the
    /// bit index to flip in the stored token, if this arm is the trigger.
    pub fn arm_event(&self, slot_addr: u64, width_bytes: u64) -> Option<u64> {
        let mut st = self.lock();
        if st.spec.kind == FaultKind::TokenByteFlip && st.note_site() {
            st.suppressed.insert(slot_addr);
            st.record("arm", slot_addr);
            return Some(st.spec.corrupt_bit_index(width_bytes));
        }
        None
    }

    /// A checked app access is about to be compared against the armed
    /// set.  Returns a spurious "armed" slot address if an exception must
    /// fire here despite no token being present.
    pub fn spurious_check(&self, addr: u64, size: u64) -> Option<u64> {
        let mut st = self.lock();
        match st.spec.kind {
            FaultKind::MetaBitSet => {
                let hit = st
                    .spurious
                    .iter()
                    .find(|(slot, w)| addr < slot + w && slot < &(addr + size))
                    .map(|&(slot, _)| slot);
                if let Some(slot) = hit {
                    st.record("lsq-spurious", slot);
                }
                hit
            }
            FaultKind::ExceptionSpurious => {
                if st.note_site() {
                    let slot = addr & !7;
                    st.record("lsq-check", slot);
                    Some(slot)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// A real REST violation on `slot` is about to be raised.  Returns
    /// true if detection for this access is lost (suppressed slot, or an
    /// `ExceptionSuppress` trigger sticking the slot's delivery off).
    pub fn suppress_detection(&self, slot: u64) -> bool {
        let mut st = self.lock();
        if st.suppressed.contains(&slot) {
            st.suppressed_hits += 1;
            if st.suppressed_hits <= 4 {
                st.record("suppressed-hit", slot);
            }
            return true;
        }
        if st.spec.kind == FaultKind::ExceptionSuppress && st.note_site() {
            st.suppressed.insert(slot);
            st.suppressed_hits += 1;
            st.record("lsq-suppress", slot);
            return true;
        }
        false
    }

    /// Forget a slot's suppression (its token was re-armed or healed).
    pub fn clear_suppression(&self, slot: u64) {
        self.lock().suppressed.remove(&slot);
    }

    /// Drain deferred architectural effects queued by the hierarchy.
    pub fn take_effects(&self) -> Vec<MemEffect> {
        std::mem::take(&mut self.lock().pending)
    }

    /// Drain provenance records (for the audit log).
    pub fn take_records(&self) -> Vec<FaultRecord> {
        std::mem::take(&mut self.lock().records)
    }

    /// Snapshot the run-level summary.
    pub fn report(&self) -> FaultReport {
        let st = self.lock();
        FaultReport {
            kind: st.spec.kind.name(),
            site_events: st.site_events,
            trigger_event: st.trigger_event,
            triggered: st.triggered_at.is_some(),
            records: st.records_total,
            suppressed_hits: st.suppressed_hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_is_deterministic_and_inside_window() {
        for kind in FaultKind::ALL {
            for seed in [0u64, 1, 0xdead_beef, u64::MAX] {
                let spec = FaultSpec { kind, seed, window_start: 10, window_len: 4 };
                let t = spec.trigger_event();
                assert_eq!(t, spec.trigger_event(), "trigger must be stable");
                assert!((10..14).contains(&t), "trigger {t} outside window");
            }
        }
    }

    #[test]
    fn zero_length_window_means_exactly_start() {
        let spec = FaultSpec {
            kind: FaultKind::ExceptionSuppress,
            seed: 42,
            window_start: 7,
            window_len: 0,
        };
        assert_eq!(spec.trigger_event(), 7);
    }

    #[test]
    fn note_site_fires_exactly_once() {
        let h = FaultHandle::new(FaultSpec {
            kind: FaultKind::ExceptionSuppress,
            seed: 3,
            window_start: 2,
            window_len: 1,
        });
        // Events 0 and 1: no suppression beyond the armed set (empty).
        assert!(!h.suppress_detection(0x100));
        assert!(!h.suppress_detection(0x200));
        // Event 2 is the trigger: detection sticks off for this slot.
        assert!(h.suppress_detection(0x300));
        // Later events do not re-trigger, but the stuck slot stays off.
        assert!(!h.suppress_detection(0x400));
        assert!(h.suppress_detection(0x300));
        let rep = h.report();
        assert!(rep.triggered);
        assert_eq!(rep.trigger_event, 2);
        assert_eq!(rep.suppressed_hits, 2);
    }

    #[test]
    fn meta_bit_clear_drops_one_bit_and_self_heals() {
        let h = FaultHandle::new(FaultSpec {
            kind: FaultKind::MetaBitClear,
            seed: 9,
            window_start: 0,
            window_len: 1,
        });
        // Trigger on the first fill detection: bit 1 (lowest set) drops.
        let mask = h.filter_fill_mask(0x1000, 0b0110, 8);
        assert_eq!(mask, 0b0100);
        let slot = 0x1000 + 8; // bit index 1, 8-byte slots
        assert!(h.suppress_detection(slot), "cleared slot must be fail-open");
        // A refill that re-detects the slot heals it.
        assert_eq!(h.filter_fill_mask(0x1000, 0b0010, 8), 0b0010);
        assert!(!h.suppress_detection(slot), "healed slot detects again");
    }

    #[test]
    fn meta_bit_set_plants_a_spurious_slot() {
        let spec = FaultSpec {
            kind: FaultKind::MetaBitSet,
            seed: 5,
            window_start: 0,
            window_len: 1,
        };
        let h = FaultHandle::new(spec);
        let mask = h.filter_fill_mask(0x2000, 0, 8);
        assert_eq!(mask.count_ones(), 1, "exactly one spurious bit");
        let idx = spec.spurious_slot_index(8);
        assert_eq!(mask, 1 << idx);
        let slot = 0x2000 + idx * 8;
        assert_eq!(h.spurious_check(slot, 8), Some(slot));
        assert_eq!(h.spurious_check(slot + 64, 8), None);
    }

    #[test]
    fn eviction_drop_queues_a_mem_effect() {
        let h = FaultHandle::new(FaultSpec {
            kind: FaultKind::EvictionMetaDrop,
            seed: 1,
            window_start: 0,
            window_len: 1,
        });
        assert!(h.drop_eviction(0x3000, 0b1001, 8));
        assert!(!h.drop_eviction(0x3040, 0b0001, 8), "single-shot");
        assert_eq!(
            h.take_effects(),
            vec![MemEffect::DropTokens { line: 0x3000, mask: 0b1001, slot_bytes: 8 }]
        );
        assert!(h.take_effects().is_empty(), "effects drain once");
    }

    #[test]
    fn token_byte_flip_reports_bit_in_range() {
        let spec = FaultSpec {
            kind: FaultKind::TokenByteFlip,
            seed: 77,
            window_start: 0,
            window_len: 1,
        };
        let h = FaultHandle::new(spec);
        let bit = h.arm_event(0x4000, 8).expect("first arm triggers");
        assert!(bit < 64);
        assert_eq!(bit, spec.corrupt_bit_index(8));
        assert!(h.arm_event(0x4008, 8).is_none(), "single-shot");
        assert!(h.suppress_detection(0x4000), "corrupted slot is fail-open");
    }

    #[test]
    fn poisoned_lock_recovers() {
        let h = FaultHandle::new(FaultKind::MetaBitClear.default_spec(0));
        let h2 = h.clone();
        let _ = std::thread::spawn(move || {
            let _guard = h2.inner.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        // The handle must keep working after a panicking holder.
        let rep = h.report();
        assert_eq!(rep.kind, "meta-bit-clear");
    }

    #[test]
    fn default_specs_cover_all_kinds_with_stable_names() {
        let names: Vec<_> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "meta-bit-clear",
                "meta-bit-set",
                "token-byte-flip",
                "exception-suppress",
                "exception-spurious",
                "eviction-meta-drop"
            ]
        );
        for kind in FaultKind::ALL {
            let spec = kind.default_spec(0x5eed);
            assert_eq!(spec.kind, kind);
            assert!(spec.window_len >= 1);
        }
    }
}
