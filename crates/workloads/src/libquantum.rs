//! `libquantum`-like kernel: quantum-register simulation stand-in — bit
//! manipulation gates swept across a large amplitude array.
//!
//! Profile: one long-lived allocation, streaming 64-bit accesses, heavy
//! logical ops, almost no allocator traffic.

use rest_isa::{Program, Reg};

use crate::common::{Ctx, WorkloadParams};

pub fn build(params: &WorkloadParams) -> Program {
    let words = params.pick(2048, 8192);
    let gates = params.pick(6, 20);
    let mut c = Ctx::new(params);

    // The quantum register (1 allocation).
    c.malloc_imm(8 * words);
    c.p.mv(Reg::S0, Reg::A0);

    // Seed register state: reg[i] = i ^ (i << 13).
    c.p.li(Reg::S2, 0);
    c.p.li(Reg::S5, words);
    let init = c.p.label_here();
    c.p.slli(Reg::T1, Reg::S2, 13);
    c.p.xor(Reg::T1, Reg::T1, Reg::S2);
    c.p.slli(Reg::T2, Reg::S2, 3);
    c.p.add(Reg::T2, Reg::S0, Reg::T2);
    c.p.sd(Reg::T1, Reg::T2, 0);
    c.p.addi(Reg::S2, Reg::S2, 1);
    c.p.blt(Reg::S2, Reg::S5, init);

    // Gate loop: each gate applies sigma-x-like toggles of a
    // pseudo-random target bit plus a controlled phase mix.
    c.p.li(Reg::S6, 0x9e37_79b9);
    let gate = c.loop_head(Reg::S4, gates);
    {
        // Target bit = lcg(S6) & 63.
        c.lcg(Reg::S6, Reg::T0);
        c.p.andi(Reg::S7, Reg::S6, 63);
        c.p.li(Reg::T4, 1);
        c.p.sll(Reg::S8, Reg::T4, Reg::S7); // mask

        c.p.li(Reg::S2, 0);
        let word = c.p.label_here();
        c.p.slli(Reg::T1, Reg::S2, 3);
        c.p.add(Reg::T1, Reg::S0, Reg::T1);
        c.p.ld(Reg::T2, Reg::T1, 0);
        c.p.xor(Reg::T2, Reg::T2, Reg::S8); // sigma-x on target bit
        c.p.srli(Reg::T3, Reg::T2, 7);
        c.p.xor(Reg::T2, Reg::T2, Reg::T3); // phase mix
        c.p.sd(Reg::T2, Reg::T1, 0);
        c.p.addi(Reg::S2, Reg::S2, 1);
        c.p.blt(Reg::S2, Reg::S5, word);
    }
    c.loop_end(Reg::S4, gate);

    // Like the SPEC originals, the long-lived grids are never freed —
    // the OS reclaims them at exit. (Freeing here would charge an
    // unrepresentative quarantine arm-sweep to the last instant of the
    // run.)
    c.finish()
}

#[cfg(test)]
mod tests {
    use crate::common::testutil::calibrate;
    use crate::Workload;

    #[test]
    fn calibration() {
        // ~11 insts/word × 2048 × 6 gates ≈ 135 k; 1 allocation.
        calibrate(Workload::Libquantum, 100_000..300_000, 1..2);
    }
}
