//! SPEC CPU2006-like synthetic workloads.
//!
//! The paper evaluates REST on twelve SPEC CPU2006 C/C++ benchmarks
//! (with the *test* input set) compiled for i386. SPEC sources are
//! licensed and need a full x86 toolchain, so this crate rebuilds each
//! benchmark as a synthetic kernel in the mini-ISA that reproduces the
//! properties the paper's figures actually depend on:
//!
//! * **allocation behaviour** — the paper calls out xalancbmk at ≈ 0.2
//!   allocations per kilo-instruction (the highest), gcc close behind,
//!   and lbm/sjeng at fewer than 10 allocation calls total; every
//!   workload here is calibrated to that ordering (see
//!   [`Workload::profile`] and the calibration tests),
//! * **memory-access pattern** — streaming (bzip2, lbm, libquantum),
//!   pointer-chasing (gcc, xalancbmk), recursion with stack buffers
//!   (gobmk, sjeng), dense compute (namd, hmmer, h264ref), indirect
//!   sparse access (soplex, astar),
//! * **stack-buffer use** — kernels with fixed-size stack arrays go
//!   through the [`rest_runtime::FrameGuard`] pass so the full-protection
//!   configurations exercise prologue/epilogue hardening,
//! * **libc data movement** — kernels issue `memcpy`/`memset` ecalls
//!   where the originals use them, exercising ASan's interception.
//!
//! # Example
//!
//! ```
//! use rest_workloads::{Scale, Workload, WorkloadParams};
//!
//! let params = WorkloadParams::test(rest_runtime::StackScheme::None);
//! let program = Workload::Lbm.build(&params);
//! assert!(program.len() > 10);
//! ```

#![forbid(unsafe_code)]

mod astar;
mod bzip2;
mod common;
mod gcc;
mod gobmk;
mod h264ref;
mod hmmer;
mod lbm;
mod libquantum;
mod namd;
mod sjeng;
mod soplex;
mod xalancbmk;

pub use common::{Ctx, WorkloadParams};

use rest_core::TokenWidth;
use rest_isa::Program;
use rest_runtime::StackScheme;

/// Input-set scale: `Test` for unit tests, `Ref` for the benchmark
/// harness. (The paper uses SPEC's *test* inputs; our `Ref` is simply a
/// longer run of the same kernel.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Short runs (~100–300 k instructions).
    Test,
    /// Benchmark runs (~0.5–2 M instructions).
    Ref,
}

/// Coarse allocation-intensity class, mirroring the paper's discussion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AllocIntensity {
    /// Fewer than 10 allocation calls in the whole run (lbm, sjeng).
    Minimal,
    /// Tens of allocations (streaming/compute kernels).
    Low,
    /// Allocation-heavy (astar, soplex).
    Medium,
    /// The top of the range: gcc, xalancbmk (≈ 0.1–0.3 allocs/kinst).
    High,
}

/// Static description of a workload's expected behaviour, used by the
/// calibration tests and the benchmark harness.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Benchmark name as printed in the paper's figures.
    pub name: &'static str,
    /// Allocation intensity class.
    pub alloc_intensity: AllocIntensity,
    /// Whether the kernel declares protected stack buffers.
    pub uses_stack_buffers: bool,
    /// Whether the kernel calls `memcpy`/`memset` through the runtime.
    pub uses_libc_calls: bool,
}

/// The twelve benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    Bzip2,
    Gcc,
    Gobmk,
    Libquantum,
    Astar,
    H264ref,
    Lbm,
    Namd,
    Sjeng,
    Soplex,
    Xalancbmk,
    Hmmer,
}

impl Workload {
    /// All workloads in the paper's figure order.
    pub const ALL: [Workload; 12] = [
        Workload::Bzip2,
        Workload::Gobmk,
        Workload::Gcc,
        Workload::Libquantum,
        Workload::Astar,
        Workload::H264ref,
        Workload::Lbm,
        Workload::Namd,
        Workload::Sjeng,
        Workload::Soplex,
        Workload::Xalancbmk,
        Workload::Hmmer,
    ];

    /// The workload's behavioural profile.
    pub fn profile(self) -> Profile {
        match self {
            Workload::Bzip2 => Profile {
                name: "bzip2",
                alloc_intensity: AllocIntensity::Low,
                uses_stack_buffers: true,
                uses_libc_calls: true,
            },
            Workload::Gcc => Profile {
                name: "gcc",
                alloc_intensity: AllocIntensity::High,
                uses_stack_buffers: false,
                uses_libc_calls: false,
            },
            Workload::Gobmk => Profile {
                name: "gobmk",
                alloc_intensity: AllocIntensity::Low,
                uses_stack_buffers: true,
                uses_libc_calls: true,
            },
            Workload::Libquantum => Profile {
                name: "libquantum",
                alloc_intensity: AllocIntensity::Low,
                uses_stack_buffers: false,
                uses_libc_calls: false,
            },
            Workload::Astar => Profile {
                name: "astar",
                alloc_intensity: AllocIntensity::Medium,
                uses_stack_buffers: false,
                uses_libc_calls: false,
            },
            Workload::H264ref => Profile {
                name: "h264ref",
                alloc_intensity: AllocIntensity::Low,
                uses_stack_buffers: true,
                uses_libc_calls: true,
            },
            Workload::Lbm => Profile {
                name: "lbm",
                alloc_intensity: AllocIntensity::Minimal,
                uses_stack_buffers: false,
                uses_libc_calls: false,
            },
            Workload::Namd => Profile {
                name: "namd",
                alloc_intensity: AllocIntensity::Low,
                uses_stack_buffers: false,
                uses_libc_calls: false,
            },
            Workload::Sjeng => Profile {
                name: "sjeng",
                alloc_intensity: AllocIntensity::Minimal,
                uses_stack_buffers: true,
                uses_libc_calls: false,
            },
            Workload::Soplex => Profile {
                name: "soplex",
                alloc_intensity: AllocIntensity::Medium,
                uses_stack_buffers: false,
                uses_libc_calls: false,
            },
            Workload::Xalancbmk => Profile {
                name: "xalancbmk",
                alloc_intensity: AllocIntensity::High,
                uses_stack_buffers: false,
                uses_libc_calls: true,
            },
            Workload::Hmmer => Profile {
                name: "hmmer",
                alloc_intensity: AllocIntensity::Low,
                uses_stack_buffers: false,
                uses_libc_calls: false,
            },
        }
    }

    /// Short name (as used in figure axes).
    pub fn name(self) -> &'static str {
        self.profile().name
    }

    /// Looks a workload up by its figure name (exact, case-insensitive).
    ///
    /// Used by the benchmark harness's `--filter` flag and the CLI's
    /// `workload` subcommand.
    pub fn from_name(name: &str) -> Option<Workload> {
        Workload::ALL
            .into_iter()
            .find(|w| w.name().eq_ignore_ascii_case(name))
    }

    /// All workloads whose figure name contains `pattern`
    /// (case-insensitive substring; empty pattern matches everything).
    pub fn matching(pattern: &str) -> Vec<Workload> {
        let needle = pattern.to_ascii_lowercase();
        Workload::ALL
            .into_iter()
            .filter(|w| w.name().contains(&needle))
            .collect()
    }

    /// Builds the workload's guest program for `params`.
    pub fn build(self, params: &WorkloadParams) -> Program {
        match self {
            Workload::Bzip2 => bzip2::build(params),
            Workload::Gcc => gcc::build(params),
            Workload::Gobmk => gobmk::build(params),
            Workload::Libquantum => libquantum::build(params),
            Workload::Astar => astar::build(params),
            Workload::H264ref => h264ref::build(params),
            Workload::Lbm => lbm::build(params),
            Workload::Namd => namd::build(params),
            Workload::Sjeng => sjeng::build(params),
            Workload::Soplex => soplex::build(params),
            Workload::Xalancbmk => xalancbmk::build(params),
            Workload::Hmmer => hmmer::build(params),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The gobmk sub-inputs of the paper's Figures 7/8 (each SPEC gobmk run
/// uses a different game position; we reproduce that as `(name, seed)`
/// board-generation variants).
pub const GOBMK_INPUTS: [(&str, u64); 5] = [
    ("gobmk-capture", 0xCAB0_0001),
    ("gobmk-connect", 0xC044_EC70),
    ("gobmk-connect_rot", 0xC044_0707),
    ("gobmk-cutstone", 0xC075_703E),
    ("gobmk-dniwog", 0x0D41_060D),
];

/// Convenience: parameters for a full-protection build of the given
/// scheme at `scale`.
pub fn params_for(scale: Scale, stack: StackScheme, width: TokenWidth) -> WorkloadParams {
    WorkloadParams {
        scale,
        stack_scheme: stack,
        token_width: width,
        seed: 0xC0FFEE,
    }
}

#[cfg(test)]
mod name_lookup_tests {
    use super::*;

    #[test]
    fn from_name_round_trips_every_workload() {
        for w in Workload::ALL {
            assert_eq!(Workload::from_name(w.name()), Some(w));
            assert_eq!(Workload::from_name(&w.name().to_uppercase()), Some(w));
        }
        assert_eq!(Workload::from_name("perlbench"), None);
        assert_eq!(Workload::from_name(""), None);
    }

    #[test]
    fn matching_is_substring_and_case_insensitive() {
        assert_eq!(Workload::matching("xalanc"), vec![Workload::Xalancbmk]);
        assert_eq!(Workload::matching("GCC"), vec![Workload::Gcc]);
        assert_eq!(Workload::matching("").len(), Workload::ALL.len());
        assert!(Workload::matching("zzz").is_empty());
    }
}
