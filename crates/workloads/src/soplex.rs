//! `soplex`-like kernel: LP-solver stand-in — sparse matrix–vector
//! products over CSR-style arrays with periodic working-vector
//! reallocation.
//!
//! Profile: medium allocation activity (setup arrays plus `realloc`
//! calls during iteration), indirect indexed loads.

use rest_isa::{EcallNum, MemSize, Program, Reg};

use crate::common::{Ctx, WorkloadParams};

const ROWS: i64 = 256;
const NNZ_PER_ROW: i64 = 8;

pub fn build(params: &WorkloadParams) -> Program {
    let passes = params.pick(6, 42);
    let mut c = Ctx::new(params);

    // CSR arrays + vectors (5 setup allocations).
    c.malloc_imm(ROWS * NNZ_PER_ROW * 4);
    c.p.mv(Reg::S0, Reg::A0); // col indices (u32)
    c.malloc_imm(ROWS * NNZ_PER_ROW * 8);
    c.p.mv(Reg::S1, Reg::A0); // values
    c.malloc_imm(ROWS * 8);
    c.p.mv(Reg::S2, Reg::A0); // x
    c.malloc_imm(ROWS * 8);
    c.p.mv(Reg::S3, Reg::A0); // y
    c.malloc_imm(ROWS * 8);
    c.p.mv(Reg::S10, Reg::A0); // work vector (realloc'd while solving)

    // Build the matrix and x.
    c.p.li(Reg::S6, 0x50_1e50); // seed
    c.p.li(Reg::S5, 0);
    c.p.li(Reg::T0, ROWS * NNZ_PER_ROW);
    let build_mat = c.p.label_here();
    c.lcg(Reg::S6, Reg::T1);
    c.p.andi(Reg::T2, Reg::S6, ROWS - 1);
    c.p.slli(Reg::T3, Reg::S5, 2);
    c.p.add(Reg::T3, Reg::S0, Reg::T3);
    c.p.store(Reg::T2, Reg::T3, 0, MemSize::B4);
    c.p.slli(Reg::T3, Reg::S5, 3);
    c.p.add(Reg::T3, Reg::S1, Reg::T3);
    c.p.sd(Reg::S6, Reg::T3, 0);
    c.p.addi(Reg::S5, Reg::S5, 1);
    c.p.li(Reg::T0, ROWS * NNZ_PER_ROW);
    c.p.blt(Reg::S5, Reg::T0, build_mat);
    c.p.li(Reg::S5, 0);
    let build_x = c.p.label_here();
    c.p.slli(Reg::T3, Reg::S5, 3);
    c.p.add(Reg::T3, Reg::S2, Reg::T3);
    c.p.sd(Reg::S5, Reg::T3, 0);
    c.p.addi(Reg::S5, Reg::S5, 1);
    c.p.li(Reg::T0, ROWS);
    c.p.blt(Reg::S5, Reg::T0, build_x);

    let main = c.loop_head(Reg::S4, passes);
    {
        // y = A·x over all rows.
        c.p.li(Reg::S5, 0); // row
        let row = c.p.label_here();
        c.p.li(Reg::S8, 0); // accumulator
        c.p.li(Reg::S9, 0); // k
        let nz = c.p.label_here();
        c.p.muli(Reg::T1, Reg::S5, NNZ_PER_ROW);
        c.p.add(Reg::T1, Reg::T1, Reg::S9);
        c.p.slli(Reg::T2, Reg::T1, 2);
        c.p.add(Reg::T2, Reg::S0, Reg::T2);
        c.p.load(Reg::T3, Reg::T2, 0, MemSize::B4); // col
        c.p.slli(Reg::T2, Reg::T1, 3);
        c.p.add(Reg::T2, Reg::S1, Reg::T2);
        c.p.ld(Reg::T4, Reg::T2, 0); // val
        c.p.slli(Reg::T3, Reg::T3, 3);
        c.p.add(Reg::T3, Reg::S2, Reg::T3);
        c.p.ld(Reg::T5, Reg::T3, 0); // x[col]
        c.p.mul(Reg::T4, Reg::T4, Reg::T5);
        c.p.add(Reg::S8, Reg::S8, Reg::T4);
        c.p.addi(Reg::S9, Reg::S9, 1);
        c.p.li(Reg::T0, NNZ_PER_ROW);
        c.p.blt(Reg::S9, Reg::T0, nz);
        c.p.slli(Reg::T1, Reg::S5, 3);
        c.p.add(Reg::T1, Reg::S3, Reg::T1);
        c.p.sd(Reg::S8, Reg::T1, 0);
        c.p.addi(Reg::S5, Reg::S5, 1);
        c.p.li(Reg::T0, ROWS);
        c.p.blt(Reg::S5, Reg::T0, row);
        // Every third pass, grow the work vector (simplex basis change).
        c.p.andi(Reg::T1, Reg::S4, 3);
        let no_regrow = c.p.new_label();
        c.p.bne(Reg::T1, Reg::ZERO, no_regrow);
        c.p.mv(Reg::A0, Reg::S10);
        c.p.slli(Reg::T2, Reg::S4, 6);
        c.p.addi(Reg::A1, Reg::T2, ROWS * 8);
        c.p.ecall(EcallNum::Realloc);
        c.p.mv(Reg::S10, Reg::A0);
        c.p.bind(no_regrow);
    }
    c.loop_end(Reg::S4, main);

    c.free_reg(Reg::S0);
    c.free_reg(Reg::S1);
    c.free_reg(Reg::S2);
    c.free_reg(Reg::S3);
    c.free_reg(Reg::S10);
    c.finish()
}

#[cfg(test)]
mod tests {
    use crate::common::testutil::calibrate;
    use crate::Workload;

    #[test]
    fn calibration() {
        // 6 passes × 256 rows × 8 nnz × ~15 insts ≈ 190 k; 5 setup
        // allocations + realloc-driven churn.
        calibrate(Workload::Soplex, 130_000..400_000, 5..12);
    }
}
