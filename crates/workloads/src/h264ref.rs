//! `h264ref`-like kernel: video-encoder stand-in — block motion
//! estimation: each macroblock is copied into a stack buffer and SAD
//! (sum of absolute differences) is evaluated against candidate offsets
//! in the reference frame.
//!
//! Profile: large static frames, byte-granular compute, stack buffer in
//! the hot function, `memcpy` through the runtime, few allocations.

use rest_isa::{EcallNum, MemSize, Program, Reg};

use crate::common::{Ctx, WorkloadParams};

const FRAME_BYTES: i64 = 16384;

pub fn build(params: &WorkloadParams) -> Program {
    let macroblocks = params.pick(30, 280);
    let mut c = Ctx::new(params);

    // Reference and current frames in static data.
    c.sbrk_imm(FRAME_BYTES);
    c.p.mv(Reg::S0, Reg::A0);
    c.sbrk_imm(FRAME_BYTES);
    c.p.mv(Reg::S1, Reg::A0);
    // Motion-vector output array (1 allocation).
    c.malloc_imm(macroblocks * 8);
    c.p.mv(Reg::S10, Reg::A0);

    // Fill both frames.
    c.p.li(Reg::S6, 0x264_2642);
    for frame in [Reg::S0, Reg::S1] {
        c.p.li(Reg::S2, 0);
        let fill = c.p.label_here();
        c.lcg(Reg::S6, Reg::T0);
        c.p.add(Reg::T1, frame, Reg::S2);
        c.p.sd(Reg::S6, Reg::T1, 0);
        c.p.addi(Reg::S2, Reg::S2, 8);
        c.p.li(Reg::T0, FRAME_BYTES);
        c.p.blt(Reg::S2, Reg::T0, fill);
    }

    let estimate = c.p.new_label();
    let after = c.p.new_label();

    c.p.li(Reg::S7, 0); // macroblock index
    let main = c.loop_head(Reg::S4, macroblocks);
    {
        c.p.call(estimate);
        c.p.addi(Reg::S7, Reg::S7, 1);
    }
    c.loop_end(Reg::S4, main);
    c.p.j(after);

    // fn estimate(): block for macroblock S7, frames S0/S1, mv out S10.
    c.p.symbol("estimate");
    c.p.bind(estimate);
    let layout = c.guard.layout(&[256], 32);
    let boff = layout.buffers[0].offset as i64;
    c.guard.emit_prologue(&mut c.p, &layout);
    c.p.sd(Reg::RA, Reg::SP, 0);
    // Copy the current block into the stack buffer.
    c.p.slli(Reg::T1, Reg::S7, 6);
    c.p.andi(Reg::T1, Reg::T1, FRAME_BYTES - 256);
    c.p.add(Reg::A1, Reg::S1, Reg::T1);
    c.p.addi(Reg::A0, Reg::SP, boff);
    c.p.li(Reg::A2, 256);
    c.p.ecall(EcallNum::Memcpy);
    // Evaluate 9 candidate offsets; keep the best SAD.
    c.p.li(Reg::S9, i64::MAX); // best SAD
    c.p.li(Reg::S11, 0); // best candidate
    c.p.li(Reg::S3, 0); // candidate index
    let cand = c.p.label_here();
    {
        // Reference base = ref + ((mb*64 + cand*48) & mask).
        c.p.slli(Reg::T1, Reg::S7, 6);
        c.p.muli(Reg::T2, Reg::S3, 48);
        c.p.add(Reg::T1, Reg::T1, Reg::T2);
        c.p.andi(Reg::T1, Reg::T1, FRAME_BYTES - 256);
        c.p.add(Reg::S8, Reg::S0, Reg::T1);
        // SAD over 32 sample points of the block.
        c.p.li(Reg::S5, 0); // sad
        c.p.li(Reg::S2, 0); // sample
        let sad = c.p.label_here();
        c.p.slli(Reg::T1, Reg::S2, 3);
        c.p.addi(Reg::T2, Reg::SP, boff);
        c.p.add(Reg::T2, Reg::T2, Reg::T1);
        c.p.load(Reg::T3, Reg::T2, 0, MemSize::B1);
        c.p.add(Reg::T2, Reg::S8, Reg::T1);
        c.p.load(Reg::T4, Reg::T2, 0, MemSize::B1);
        c.p.sub(Reg::T3, Reg::T3, Reg::T4);
        // |x| branch-free: (x ^ (x >> 63)) - (x >> 63).
        c.p.push(rest_isa::Inst::AluImm {
            op: rest_isa::AluOp::Sra,
            dst: Reg::T4,
            src: Reg::T3,
            imm: 63,
        });
        c.p.xor(Reg::T3, Reg::T3, Reg::T4);
        c.p.sub(Reg::T3, Reg::T3, Reg::T4);
        c.p.add(Reg::S5, Reg::S5, Reg::T3);
        c.p.addi(Reg::S2, Reg::S2, 1);
        c.p.li(Reg::T0, 32);
        c.p.blt(Reg::S2, Reg::T0, sad);
        // best = min(best, sad)
        let not_better = c.p.new_label();
        c.p.bge(Reg::S5, Reg::S9, not_better);
        c.p.mv(Reg::S9, Reg::S5);
        c.p.mv(Reg::S11, Reg::S3);
        c.p.bind(not_better);
    }
    c.p.addi(Reg::S3, Reg::S3, 1);
    c.p.li(Reg::T0, 9);
    c.p.blt(Reg::S3, Reg::T0, cand);
    // Record the winning motion vector.
    c.p.slli(Reg::T1, Reg::S7, 3);
    c.p.add(Reg::T1, Reg::S10, Reg::T1);
    c.p.sd(Reg::S11, Reg::T1, 0);
    c.p.ld(Reg::RA, Reg::SP, 0);
    c.guard.emit_epilogue(&mut c.p, &layout);
    c.p.ret();

    c.p.bind(after);
    c.free_reg(Reg::S10);
    c.finish()
}

#[cfg(test)]
mod tests {
    use crate::common::testutil::calibrate;
    use crate::Workload;

    #[test]
    fn calibration() {
        // 30 macroblocks × 9 candidates × 32 samples × ~13 insts ≈ 115 k
        // + frame init ≈ 30 k; 1 allocation.
        calibrate(Workload::H264ref, 100_000..300_000, 1..2);
    }
}
