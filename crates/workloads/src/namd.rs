//! `namd`-like kernel: molecular-dynamics stand-in — a multiply-heavy
//! pairwise force loop over a particle array with a cutoff window.
//!
//! Profile: a couple of long-lived arrays, dense compute with high ILP,
//! negligible allocator traffic.

use rest_isa::{Program, Reg};

use crate::common::{Ctx, WorkloadParams};

pub fn build(params: &WorkloadParams) -> Program {
    let particles = params.pick(256, 512);
    let window = params.pick(16, 24);
    let steps = params.pick(3, 8);
    let mask = particles - 1; // particles is a power of two
    let mut c = Ctx::new(params);

    // Positions and forces (2 allocations).
    c.malloc_imm(8 * particles);
    c.p.mv(Reg::S0, Reg::A0);
    c.malloc_imm(8 * particles);
    c.p.mv(Reg::S1, Reg::A0);

    // Positions: pos[i] = i * 0x2545F4914F6CDD1D.
    c.p.li(Reg::S2, 0);
    c.p.li(Reg::S5, particles);
    let init = c.p.label_here();
    c.p.li(Reg::T1, 0x2545_F491_4F6C_DD1D_u64 as i64);
    c.p.mul(Reg::T1, Reg::T1, Reg::S2);
    c.p.slli(Reg::T2, Reg::S2, 3);
    c.p.add(Reg::T2, Reg::S0, Reg::T2);
    c.p.sd(Reg::T1, Reg::T2, 0);
    c.p.addi(Reg::S2, Reg::S2, 1);
    c.p.blt(Reg::S2, Reg::S5, init);

    let step = c.loop_head(Reg::S4, steps);
    {
        c.p.li(Reg::S2, 0); // i
        let outer = c.p.label_here();
        c.p.slli(Reg::T1, Reg::S2, 3);
        c.p.add(Reg::T1, Reg::S0, Reg::T1);
        c.p.ld(Reg::S7, Reg::T1, 0); // pos[i]
        c.p.li(Reg::S8, 0); // force accumulator
        c.p.li(Reg::S3, 1); // j offset
        let inner = c.p.label_here();
        // neighbour index = (i + j) & mask
        c.p.add(Reg::T2, Reg::S2, Reg::S3);
        c.p.andi(Reg::T2, Reg::T2, mask);
        c.p.slli(Reg::T2, Reg::T2, 3);
        c.p.add(Reg::T2, Reg::S0, Reg::T2);
        c.p.ld(Reg::T3, Reg::T2, 0); // pos[j]
        c.p.sub(Reg::T3, Reg::S7, Reg::T3); // dx
        c.p.mul(Reg::T4, Reg::T3, Reg::T3); // dx^2
        c.p.mul(Reg::T4, Reg::T4, Reg::T3); // dx^3 (Lennard-Jones-ish)
        c.p.srli(Reg::T4, Reg::T4, 16);
        c.p.add(Reg::S8, Reg::S8, Reg::T4);
        c.p.addi(Reg::S3, Reg::S3, 1);
        c.p.li(Reg::T0, window);
        c.p.blt(Reg::S3, Reg::T0, inner);
        // force[i] += acc
        c.p.slli(Reg::T1, Reg::S2, 3);
        c.p.add(Reg::T1, Reg::S1, Reg::T1);
        c.p.ld(Reg::T2, Reg::T1, 0);
        c.p.add(Reg::T2, Reg::T2, Reg::S8);
        c.p.sd(Reg::T2, Reg::T1, 0);
        c.p.addi(Reg::S2, Reg::S2, 1);
        c.p.blt(Reg::S2, Reg::S5, outer);
    }
    c.loop_end(Reg::S4, step);

    // Like the SPEC originals, the long-lived grids are never freed —
    // the OS reclaims them at exit. (Freeing here would charge an
    // unrepresentative quarantine arm-sweep to the last instant of the
    // run.)
    c.finish()
}

#[cfg(test)]
mod tests {
    use crate::common::testutil::calibrate;
    use crate::Workload;

    #[test]
    fn calibration() {
        // 256 particles × 15 window × ~13 insts × 3 steps ≈ 160 k; 2
        // allocations.
        calibrate(Workload::Namd, 100_000..350_000, 2..3);
    }
}
