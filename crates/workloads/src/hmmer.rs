//! `hmmer`-like kernel: profile-HMM search stand-in — Viterbi dynamic
//! programming over a state row per sequence symbol.
//!
//! Profile: a few long-lived arrays, branch-light max/add inner loop,
//! negligible allocator traffic.

use rest_isa::{MemSize, Program, Reg};

use crate::common::{Ctx, WorkloadParams};

const STATES: i64 = 32;

pub fn build(params: &WorkloadParams) -> Program {
    let seq_len = params.pick(400, 2600);
    let mut c = Ctx::new(params);

    // Previous and current DP rows (2 allocations).
    c.malloc_imm(STATES * 8);
    c.p.mv(Reg::S0, Reg::A0); // prev
    c.malloc_imm(STATES * 8);
    c.p.mv(Reg::S1, Reg::A0); // cur
    // Sequence in static data.
    c.sbrk_imm(seq_len + 8);
    c.p.mv(Reg::S2, Reg::A0);
    c.p.li(Reg::S6, 0x44dd_a11a);
    c.p.li(Reg::S3, 0);
    let fill = c.p.label_here();
    c.lcg(Reg::S6, Reg::T0);
    c.p.add(Reg::T1, Reg::S2, Reg::S3);
    c.p.store(Reg::S6, Reg::T1, 0, MemSize::B1);
    c.p.addi(Reg::S3, Reg::S3, 1);
    c.p.li(Reg::T0, seq_len);
    c.p.blt(Reg::S3, Reg::T0, fill);

    // DP over the sequence.
    c.p.li(Reg::S5, 0); // t
    let symbol = c.p.label_here();
    c.p.add(Reg::T1, Reg::S2, Reg::S5);
    c.p.load(Reg::S9, Reg::T1, 0, MemSize::B1); // emission symbol
    c.p.li(Reg::S3, 1); // state s
    let state = c.p.label_here();
    // stay = prev[s] + em(sym, s)
    c.p.slli(Reg::T1, Reg::S3, 3);
    c.p.add(Reg::T2, Reg::S0, Reg::T1);
    c.p.ld(Reg::T3, Reg::T2, 0);
    c.p.xor(Reg::T4, Reg::S9, Reg::S3);
    c.p.add(Reg::T3, Reg::T3, Reg::T4);
    // move = prev[s-1] + 3
    c.p.ld(Reg::T5, Reg::T2, -8);
    c.p.addi(Reg::T5, Reg::T5, 3);
    // cur[s] = max(stay, move), branch-free.
    c.p.slt(Reg::T0, Reg::T3, Reg::T5);
    c.p.sub(Reg::T5, Reg::T5, Reg::T3);
    c.p.mul(Reg::T5, Reg::T5, Reg::T0);
    c.p.add(Reg::T3, Reg::T3, Reg::T5);
    c.p.add(Reg::T2, Reg::S1, Reg::T1);
    c.p.sd(Reg::T3, Reg::T2, 0);
    c.p.addi(Reg::S3, Reg::S3, 1);
    c.p.li(Reg::T0, STATES);
    c.p.blt(Reg::S3, Reg::T0, state);
    // Swap rows, next symbol.
    c.p.mv(Reg::T0, Reg::S0);
    c.p.mv(Reg::S0, Reg::S1);
    c.p.mv(Reg::S1, Reg::T0);
    c.p.addi(Reg::S5, Reg::S5, 1);
    c.p.li(Reg::T0, seq_len);
    c.p.blt(Reg::S5, Reg::T0, symbol);

    // Like the SPEC originals, the long-lived grids are never freed —
    // the OS reclaims them at exit. (Freeing here would charge an
    // unrepresentative quarantine arm-sweep to the last instant of the
    // run.)
    c.finish()
}

#[cfg(test)]
mod tests {
    use crate::common::testutil::calibrate;
    use crate::Workload;

    #[test]
    fn calibration() {
        // 400 symbols × 31 states × ~17 insts ≈ 215 k; 2 allocations.
        calibrate(Workload::Hmmer, 150_000..350_000, 2..3);
    }
}
