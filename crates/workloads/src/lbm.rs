//! `lbm`-like kernel: lattice-Boltzmann stand-in — a streaming 3-point
//! stencil swept repeatedly over a large array.
//!
//! Matches the paper's profile for lbm: fewer than 10 allocation calls
//! in the whole run, large sequential working set, negligible allocator
//! overhead under every scheme.

use rest_isa::{Program, Reg};

use crate::common::{Ctx, WorkloadParams};

pub fn build(params: &WorkloadParams) -> Program {
    let cells = params.pick(4096, 16384);
    let sweeps = params.pick(4, 8);
    let mut c = Ctx::new(params);

    // Two grids (2 allocations total — "minimal" class).
    c.malloc_imm(8 * cells);
    c.p.mv(Reg::S0, Reg::A0); // src
    c.malloc_imm(8 * cells);
    c.p.mv(Reg::S1, Reg::A0); // dst

    // Initialise src[i] = i * 2654435761 (knuth hash-ish).
    c.p.li(Reg::S2, 0);
    c.p.li(Reg::S5, cells);
    let init = c.p.label_here();
    c.p.slli(Reg::T1, Reg::S2, 3);
    c.p.add(Reg::T1, Reg::S0, Reg::T1);
    c.p.li(Reg::T2, 2654435761);
    c.p.mul(Reg::T2, Reg::T2, Reg::S2);
    c.p.sd(Reg::T2, Reg::T1, 0);
    c.p.addi(Reg::S2, Reg::S2, 1);
    c.p.blt(Reg::S2, Reg::S5, init);

    // Sweeps: dst[i] = (src[i-1] + 2*src[i] + src[i+1]) / 4, then swap.
    let sweep = c.loop_head(Reg::S4, sweeps);
    {
        c.p.li(Reg::S2, 1);
        c.p.addi(Reg::S5, Reg::S5, 0); // bound stays in S5
        let cell = c.p.label_here();
        c.p.slli(Reg::T1, Reg::S2, 3);
        c.p.add(Reg::T2, Reg::S0, Reg::T1);
        c.p.ld(Reg::T3, Reg::T2, -8);
        c.p.ld(Reg::T4, Reg::T2, 0);
        c.p.ld(Reg::T5, Reg::T2, 8);
        c.p.add(Reg::T3, Reg::T3, Reg::T5);
        c.p.slli(Reg::T4, Reg::T4, 1);
        c.p.add(Reg::T3, Reg::T3, Reg::T4);
        c.p.srli(Reg::T3, Reg::T3, 2);
        c.p.add(Reg::T4, Reg::S1, Reg::T1);
        c.p.sd(Reg::T3, Reg::T4, 0);
        c.p.addi(Reg::S2, Reg::S2, 1);
        c.p.addi(Reg::T0, Reg::S5, -1);
        c.p.blt(Reg::S2, Reg::T0, cell);
        // Swap grids.
        c.p.mv(Reg::T0, Reg::S0);
        c.p.mv(Reg::S0, Reg::S1);
        c.p.mv(Reg::S1, Reg::T0);
    }
    c.loop_end(Reg::S4, sweep);

    // Like the SPEC originals, the long-lived grids are never freed —
    // the OS reclaims them at exit. (Freeing here would charge an
    // unrepresentative quarantine arm-sweep to the last instant of the
    // run.)
    c.finish()
}

#[cfg(test)]
mod tests {
    use crate::common::testutil::calibrate;
    use crate::Workload;

    #[test]
    fn calibration() {
        // ~14 insts per cell × 4096 cells × 4 sweeps ≈ 230 k; exactly 2
        // allocations.
        calibrate(Workload::Lbm, 150_000..400_000, 2..3);
    }
}
