//! `xalancbmk`-like kernel: XML-transformation stand-in — text scanning
//! punctuated by constant small-node allocation with a bounded element
//! stack, plus string copies through the runtime.
//!
//! Profile: **the allocation-heaviest benchmark** (the paper singles out
//! xalancbmk at ≈ 0.2 allocations per kilo-instruction, with allocator
//! overhead dominating its Figure 3 breakdown and Figure 7 overheads).

use rest_isa::{MemSize, Program, Reg};

use crate::common::{Ctx, WorkloadParams};

const TEXT_BYTES: i64 = 8192;
const STACK_CAP: i64 = 16;

pub fn build(params: &WorkloadParams) -> Program {
    let events = params.pick(75, 600);
    let scan_bytes = 260;
    let mut c = Ctx::new(params);

    // Document text in static data.
    c.sbrk_imm(TEXT_BYTES);
    c.p.mv(Reg::S1, Reg::A0);
    c.p.li(Reg::S6, 0xd0c5_ca1e);
    c.p.li(Reg::S2, 0);
    let fill = c.p.label_here();
    c.lcg(Reg::S6, Reg::T0);
    c.p.add(Reg::T1, Reg::S1, Reg::S2);
    c.p.sd(Reg::S6, Reg::T1, 0);
    c.p.addi(Reg::S2, Reg::S2, 8);
    c.p.li(Reg::T0, TEXT_BYTES);
    c.p.blt(Reg::S2, Reg::T0, fill);

    // Element stack.
    c.malloc_imm(STACK_CAP * 8);
    c.p.mv(Reg::S0, Reg::A0);
    c.p.li(Reg::S7, 0); // depth
    c.p.li(Reg::S5, 0); // text cursor
    c.p.li(Reg::S8, 0); // checksum

    let main = c.loop_head(Reg::S4, events);
    {
        // Scan a text segment (SAX-parser stand-in).
        c.p.li(Reg::S3, scan_bytes);
        let scan = c.p.label_here();
        c.p.andi(Reg::T1, Reg::S5, TEXT_BYTES - 1);
        c.p.add(Reg::T1, Reg::S1, Reg::T1);
        c.p.load(Reg::T2, Reg::T1, 0, MemSize::B1);
        c.p.add(Reg::S8, Reg::S8, Reg::T2); // checksum
        c.p.addi(Reg::S5, Reg::S5, 1);
        c.p.addi(Reg::S3, Reg::S3, -1);
        c.p.bne(Reg::S3, Reg::ZERO, scan);
        // Element event: allocate a DOM node (24 + (r & 0x38) bytes).
        c.lcg(Reg::S6, Reg::T0);
        c.p.andi(Reg::A0, Reg::S6, 0x38);
        c.p.addi(Reg::A0, Reg::A0, 24);
        c.malloc_a0();
        c.p.mv(Reg::T5, Reg::A0);
        c.p.sd(Reg::S6, Reg::T5, 0);
        // Copy a 16-byte name string into the node.
        c.p.mv(Reg::A0, Reg::T5);
        c.p.andi(Reg::T1, Reg::S5, TEXT_BYTES - 64);
        c.p.add(Reg::A1, Reg::S1, Reg::T1);
        c.p.li(Reg::A2, 16);
        c.p.ecall(rest_isa::EcallNum::Memcpy);
        // Push onto the element stack.
        c.p.slli(Reg::T1, Reg::S7, 3);
        c.p.add(Reg::T1, Reg::S0, Reg::T1);
        c.p.sd(Reg::T5, Reg::T1, 0);
        c.p.addi(Reg::S7, Reg::S7, 1);
        // End-of-element flush: pop and free half the stack when full.
        c.p.li(Reg::T0, STACK_CAP);
        let no_flush = c.p.new_label();
        c.p.blt(Reg::S7, Reg::T0, no_flush);
        c.p.li(Reg::S9, STACK_CAP / 2);
        let pop = c.p.label_here();
        c.p.addi(Reg::S7, Reg::S7, -1);
        c.p.slli(Reg::T1, Reg::S7, 3);
        c.p.add(Reg::T1, Reg::S0, Reg::T1);
        c.p.ld(Reg::A0, Reg::T1, 0);
        c.p.ecall(rest_isa::EcallNum::Free);
        c.p.addi(Reg::S9, Reg::S9, -1);
        c.p.bne(Reg::S9, Reg::ZERO, pop);
        c.p.bind(no_flush);
    }
    c.loop_end(Reg::S4, main);

    // Drain remaining elements.
    let drained = c.p.new_label();
    let drain = c.p.label_here();
    c.p.beq(Reg::S7, Reg::ZERO, drained);
    c.p.addi(Reg::S7, Reg::S7, -1);
    c.p.slli(Reg::T1, Reg::S7, 3);
    c.p.add(Reg::T1, Reg::S0, Reg::T1);
    c.p.ld(Reg::A0, Reg::T1, 0);
    c.p.ecall(rest_isa::EcallNum::Free);
    c.p.j(drain);
    c.p.bind(drained);
    c.free_reg(Reg::S0);
    c.finish()
}

#[cfg(test)]
mod tests {
    use crate::common::testutil::calibrate;
    use crate::Workload;

    #[test]
    fn calibration() {
        // 75 events × (260-byte scan × 7 insts + node churn) ≈ 160 k;
        // 76 allocations (≈ 0.5/kinst — the top of the range, as in the
        // paper).
        calibrate(Workload::Xalancbmk, 110_000..300_000, 70..85);
    }
}
