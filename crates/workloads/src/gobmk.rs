//! `gobmk`-like kernel: Go-engine stand-in — candidate-move evaluation
//! that copies a board region into a stack buffer (via `memcpy`),
//! flood-fills influence, and writes a few cells back.
//!
//! Profile: low allocation rate (an arena plus occasional tree nodes),
//! stack buffers on the hot path, `memcpy` through the runtime. The
//! paper's Figures 7/8 run gobmk with several sub-inputs; the `seed`
//! parameter reproduces that as input variation.

use rest_isa::{MemSize, Program, Reg};

use crate::common::{Ctx, WorkloadParams};

pub fn build(params: &WorkloadParams) -> Program {
    let moves = params.pick(280, 2200);
    let mut c = Ctx::new(params);

    // Board in static data (19×19 padded to 512 B).
    c.sbrk_imm(512);
    c.p.mv(Reg::S0, Reg::A0);
    // Initialise the board from the sub-input seed.
    c.p.li(Reg::S6, params.seed as i64);
    c.p.li(Reg::S2, 0);
    c.p.li(Reg::S5, 361);
    let init = c.p.label_here();
    c.lcg(Reg::S6, Reg::T0);
    c.p.andi(Reg::T1, Reg::S6, 3); // empty/black/white/edge
    c.p.add(Reg::T2, Reg::S0, Reg::S2);
    c.p.store(Reg::T1, Reg::T2, 0, MemSize::B1);
    c.p.addi(Reg::S2, Reg::S2, 1);
    c.p.blt(Reg::S2, Reg::S5, init);

    // Game-tree node list head.
    c.p.li(Reg::S1, 0);

    let try_move = c.p.new_label();
    let after = c.p.new_label();
    let main = c.loop_head(Reg::S4, moves);
    {
        c.lcg(Reg::S6, Reg::T0);
        c.p.mv(Reg::A0, Reg::S6);
        c.p.call(try_move);
        // Every 64th move, allocate a tree node; free the previous one
        // (keeps live size flat, low allocation rate).
        c.p.andi(Reg::T1, Reg::S4, 63);
        let skip = c.p.new_label();
        c.p.bne(Reg::T1, Reg::ZERO, skip);
        c.malloc_imm(96);
        c.p.sd(Reg::S4, Reg::A0, 0);
        c.p.mv(Reg::T5, Reg::A0);
        let no_old = c.p.new_label();
        c.p.beq(Reg::S1, Reg::ZERO, no_old);
        c.free_reg(Reg::S1);
        c.p.bind(no_old);
        c.p.mv(Reg::S1, Reg::T5);
        c.p.bind(skip);
    }
    c.loop_end(Reg::S4, main);
    c.p.j(after);

    // fn try_move(rand in A0)
    c.p.symbol("try_move");
    c.p.bind(try_move);
    let layout = c.guard.layout(&[128], 32);
    let boff = layout.buffers[0].offset as i64;
    c.guard.emit_prologue(&mut c.p, &layout);
    c.p.sd(Reg::RA, Reg::SP, 0);
    c.p.mv(Reg::S9, Reg::A0);
    // Copy a board region into the frame buffer (libc memcpy).
    c.p.addi(Reg::A0, Reg::SP, boff);
    c.p.mv(Reg::A1, Reg::S0);
    c.p.li(Reg::A2, 128);
    c.p.ecall(rest_isa::EcallNum::Memcpy);
    // Flood-fill-ish influence propagation inside the buffer.
    c.p.andi(Reg::T1, Reg::S9, 63);
    c.p.li(Reg::S10, 32);
    let flood = c.p.label_here();
    c.p.addi(Reg::T2, Reg::SP, boff);
    c.p.add(Reg::T2, Reg::T2, Reg::T1);
    c.p.load(Reg::T3, Reg::T2, 0, MemSize::B1);
    c.p.addi(Reg::T3, Reg::T3, 1);
    c.p.store(Reg::T3, Reg::T2, 0, MemSize::B1);
    c.p.muli(Reg::T3, Reg::T3, 7);
    c.p.add(Reg::T1, Reg::T1, Reg::T3);
    c.p.andi(Reg::T1, Reg::T1, 127);
    c.p.addi(Reg::S10, Reg::S10, -1);
    c.p.bne(Reg::S10, Reg::ZERO, flood);
    // Commit a few cells back to the board.
    c.p.li(Reg::S10, 8);
    let commit = c.p.label_here();
    c.p.muli(Reg::T1, Reg::S10, 13);
    c.p.andi(Reg::T1, Reg::T1, 127);
    c.p.addi(Reg::T2, Reg::SP, boff);
    c.p.add(Reg::T2, Reg::T2, Reg::T1);
    c.p.load(Reg::T3, Reg::T2, 0, MemSize::B1);
    c.p.andi(Reg::T4, Reg::T1, 255);
    c.p.add(Reg::T4, Reg::S0, Reg::T4);
    c.p.store(Reg::T3, Reg::T4, 0, MemSize::B1);
    c.p.addi(Reg::S10, Reg::S10, -1);
    c.p.bne(Reg::S10, Reg::ZERO, commit);
    c.p.ld(Reg::RA, Reg::SP, 0);
    c.guard.emit_epilogue(&mut c.p, &layout);
    c.p.ret();

    c.p.bind(after);
    let no_node = c.p.new_label();
    c.p.beq(Reg::S1, Reg::ZERO, no_node);
    c.free_reg(Reg::S1);
    c.p.bind(no_node);
    c.finish()
}

#[cfg(test)]
mod tests {
    use crate::common::testutil::calibrate;
    use crate::Workload;

    #[test]
    fn calibration() {
        // 280 moves × ~420 guest insts ≈ 120 k + init; a handful of tree
        // nodes (280/64 ≈ 5 mallocs).
        calibrate(Workload::Gobmk, 80_000..200_000, 3..10);
    }
}
