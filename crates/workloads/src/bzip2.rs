//! `bzip2`-like kernel: block-compression stand-in — per-block buffer
//! allocation, byte-granular run-length/frequency compression with a
//! stack-resident frequency table, and libc data movement.
//!
//! Profile: a few allocations per block (low rate overall), streaming
//! byte accesses, stack buffer in the hot function, `memset`/`memcpy`
//! through the runtime.

use rest_isa::{EcallNum, MemSize, Program, Reg};

use crate::common::{Ctx, WorkloadParams};

pub fn build(params: &WorkloadParams) -> Program {
    let block = params.pick(4096, 16384);
    let blocks = params.pick(2, 6);
    let mut c = Ctx::new(params);

    c.p.li(Reg::S6, 0xb21b_00b5); // data generator state

    let compress = c.p.new_label();
    let after = c.p.new_label();

    let main = c.loop_head(Reg::S4, blocks);
    {
        // Source and destination buffers for this block.
        c.malloc_imm(block);
        c.p.mv(Reg::S0, Reg::A0);
        c.malloc_imm(2 * block);
        c.p.mv(Reg::S1, Reg::A0);
        // Fill the source with pseudo-random bytes, 8 at a time.
        c.p.li(Reg::S2, 0);
        c.p.li(Reg::S5, block);
        let fill = c.p.label_here();
        c.lcg(Reg::S6, Reg::T0);
        c.p.add(Reg::T1, Reg::S0, Reg::S2);
        c.p.sd(Reg::S6, Reg::T1, 0);
        c.p.addi(Reg::S2, Reg::S2, 8);
        c.p.blt(Reg::S2, Reg::S5, fill);
        // Compress.
        c.p.call(compress);
        // Shuffle the first 256 output bytes back over the source
        // (models bzip2's block reuse; exercises memcpy interception).
        c.memcpy(Reg::S0, Reg::S1, 256);
        c.free_reg(Reg::S0);
        c.free_reg(Reg::S1);
    }
    c.loop_end(Reg::S4, main);
    c.p.j(after);

    // fn compress(src = S0, dst = S1, len = S5)
    c.p.symbol("compress");
    c.p.bind(compress);
    let layout = c.guard.layout(&[256], 32);
    let boff = layout.buffers[0].offset as i64;
    c.guard.emit_prologue(&mut c.p, &layout);
    c.p.sd(Reg::RA, Reg::SP, 0);
    // Zero the frequency table (stack buffer) via runtime memset.
    c.p.addi(Reg::A0, Reg::SP, boff);
    c.p.li(Reg::A1, 0);
    c.p.li(Reg::A2, 256);
    c.p.ecall(EcallNum::Memset);
    // Byte loop: frequency count + run-length emit.
    c.p.li(Reg::S2, 0); // src index
    c.p.li(Reg::S3, 0); // dst index
    c.p.li(Reg::S9, -1); // prev byte
    let byte = c.p.label_here();
    c.p.add(Reg::T1, Reg::S0, Reg::S2);
    c.p.load(Reg::T2, Reg::T1, 0, MemSize::B1);
    // freq[byte & 63] += 1 (4-byte counters on the stack).
    c.p.andi(Reg::T3, Reg::T2, 63);
    c.p.slli(Reg::T3, Reg::T3, 2);
    c.p.addi(Reg::T4, Reg::SP, boff);
    c.p.add(Reg::T4, Reg::T4, Reg::T3);
    c.p.load(Reg::T5, Reg::T4, 0, MemSize::B4);
    c.p.addi(Reg::T5, Reg::T5, 1);
    c.p.store(Reg::T5, Reg::T4, 0, MemSize::B4);
    // Emit on run break.
    let same = c.p.new_label();
    c.p.beq(Reg::T2, Reg::S9, same);
    c.p.add(Reg::T4, Reg::S1, Reg::S3);
    c.p.store(Reg::T2, Reg::T4, 0, MemSize::B1);
    c.p.addi(Reg::S3, Reg::S3, 1);
    c.p.mv(Reg::S9, Reg::T2);
    c.p.bind(same);
    c.p.addi(Reg::S2, Reg::S2, 1);
    c.p.blt(Reg::S2, Reg::S5, byte);
    c.p.ld(Reg::RA, Reg::SP, 0);
    c.guard.emit_epilogue(&mut c.p, &layout);
    c.p.ret();

    c.p.bind(after);
    c.finish()
}

#[cfg(test)]
mod tests {
    use crate::common::testutil::calibrate;
    use crate::Workload;

    #[test]
    fn calibration() {
        // 2 blocks × 4096 bytes × ~17 insts ≈ 145 k; 4 allocations.
        calibrate(Workload::Bzip2, 100_000..300_000, 4..5);
    }
}
