//! `gcc`-like kernel: compiler stand-in — frequent small variable-size
//! node allocations hung off a pointer table, interleaved with
//! token-stream "compilation passes".
//!
//! Profile: one of the two allocation-heaviest benchmarks (paper Figure
//! 3/7: gcc and xalancbmk dominate allocator overhead), short-lived
//! nodes of mixed sizes, pointer-table scatter.

use rest_isa::{MemSize, Program, Reg};

use crate::common::{Ctx, WorkloadParams};

const TABLE_SLOTS: i64 = 128;

pub fn build(params: &WorkloadParams) -> Program {
    let iters = params.pick(55, 430);
    let pass_len = 120;
    let mut c = Ctx::new(params);

    // Node pointer table.
    c.malloc_imm(TABLE_SLOTS * 8);
    c.p.mv(Reg::S0, Reg::A0);
    // Token stream in static data.
    c.sbrk_imm(2048);
    c.p.mv(Reg::S1, Reg::A0);
    c.p.li(Reg::S6, 0x6cc0_11ec);
    // Fill the token stream.
    c.p.li(Reg::S2, 0);
    let fill = c.p.label_here();
    c.lcg(Reg::S6, Reg::T0);
    c.p.add(Reg::T1, Reg::S1, Reg::S2);
    c.p.sd(Reg::S6, Reg::T1, 0);
    c.p.addi(Reg::S2, Reg::S2, 8);
    c.p.li(Reg::T0, 2048);
    c.p.blt(Reg::S2, Reg::T0, fill);

    c.p.li(Reg::S7, 0); // stream cursor
    c.p.li(Reg::S8, 0); // checksum
    let main = c.loop_head(Reg::S4, iters);
    {
        // Allocate an AST node: 16 + (r & 0x70) bytes.
        c.lcg(Reg::S6, Reg::T0);
        c.p.andi(Reg::A0, Reg::S6, 0x70);
        c.p.addi(Reg::A0, Reg::A0, 16);
        c.malloc_a0();
        c.p.mv(Reg::T5, Reg::A0);
        c.p.sd(Reg::S6, Reg::T5, 0);
        c.p.sd(Reg::S4, Reg::T5, 8);
        // Hang it in a pseudo-random table slot, freeing the evictee.
        c.p.srli(Reg::T1, Reg::S6, 8);
        c.p.andi(Reg::T1, Reg::T1, TABLE_SLOTS - 1);
        c.p.slli(Reg::T1, Reg::T1, 3);
        c.p.add(Reg::T1, Reg::S0, Reg::T1);
        c.p.ld(Reg::S9, Reg::T1, 0);
        c.p.sd(Reg::T5, Reg::T1, 0);
        let no_evict = c.p.new_label();
        c.p.beq(Reg::S9, Reg::ZERO, no_evict);
        c.free_reg(Reg::S9);
        c.p.bind(no_evict);
        // Compilation pass: fold the token stream into a checksum with
        // data-dependent branching, chasing pointers through the AST
        // node table as a compiler walking its IR would.
        c.p.li(Reg::S3, pass_len);
        let pass = c.p.label_here();
        c.p.andi(Reg::T1, Reg::S7, 2047 - 7);
        c.p.add(Reg::T1, Reg::S1, Reg::T1);
        c.p.ld(Reg::T2, Reg::T1, 0);
        // Visit the node the token hashes to.
        c.p.andi(Reg::T4, Reg::T2, TABLE_SLOTS - 1);
        c.p.slli(Reg::T4, Reg::T4, 3);
        c.p.add(Reg::T4, Reg::S0, Reg::T4);
        c.p.ld(Reg::T5, Reg::T4, 0); // node pointer
        let no_node = c.p.new_label();
        c.p.beq(Reg::T5, Reg::ZERO, no_node);
        c.p.ld(Reg::T4, Reg::T5, 0); // node field
        c.p.add(Reg::S8, Reg::S8, Reg::T4);
        c.p.sd(Reg::S8, Reg::T5, 8); // annotate the node
        c.p.bind(no_node);
        c.p.andi(Reg::T3, Reg::T2, 1);
        let odd = c.p.new_label();
        let join = c.p.new_label();
        c.p.bne(Reg::T3, Reg::ZERO, odd);
        c.p.add(Reg::S8, Reg::S8, Reg::T2);
        c.p.j(join);
        c.p.bind(odd);
        c.p.xor(Reg::S8, Reg::S8, Reg::T2);
        c.p.bind(join);
        c.p.addi(Reg::S7, Reg::S7, 8);
        c.p.addi(Reg::S3, Reg::S3, -1);
        c.p.bne(Reg::S3, Reg::ZERO, pass);
    }
    c.loop_end(Reg::S4, main);

    // Drain the table.
    c.p.li(Reg::S2, 0);
    let drain = c.p.label_here();
    c.p.slli(Reg::T1, Reg::S2, 3);
    c.p.add(Reg::T1, Reg::S0, Reg::T1);
    c.p.ld(Reg::S9, Reg::T1, 0);
    let empty = c.p.new_label();
    c.p.beq(Reg::S9, Reg::ZERO, empty);
    c.free_reg(Reg::S9);
    c.p.bind(empty);
    c.p.addi(Reg::S2, Reg::S2, 1);
    c.p.li(Reg::T0, TABLE_SLOTS);
    c.p.blt(Reg::S2, Reg::T0, drain);
    c.free_reg(Reg::S0);

    // Keep the checksum live so nothing is dead code.
    c.p.store(Reg::S8, Reg::S1, 0, MemSize::B8);
    c.finish()
}

#[cfg(test)]
mod tests {
    use crate::common::testutil::calibrate;
    use crate::Workload;

    #[test]
    fn calibration() {
        // 55 iters × (120-token pass × ~16 insts + node churn) ≈ 120 k;
        // 56 allocations (≈ 0.45/kinst — the "high" class).
        calibrate(Workload::Gcc, 90_000..250_000, 50..60);
    }
}
