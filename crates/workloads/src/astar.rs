//! `astar`-like kernel: pathfinding stand-in — repeated best-first grid
//! searches, each with its own node-pool and distance-array allocations.
//!
//! Profile: medium allocation rate (a pair of allocations and frees per
//! search), data-dependent neighbour expansion over a cost grid.

use rest_isa::{MemSize, Program, Reg};

use crate::common::{Ctx, WorkloadParams};

const GRID: i64 = 64 * 64; // cost bytes
const EXPANSIONS: i64 = 2800;

pub fn build(params: &WorkloadParams) -> Program {
    let searches = params.pick(3, 16);
    let mut c = Ctx::new(params);

    // Cost grid (1 long-lived allocation).
    c.malloc_imm(GRID);
    c.p.mv(Reg::S0, Reg::A0);
    c.p.li(Reg::S6, 0xa57a_4242);
    c.p.li(Reg::S2, 0);
    let fill = c.p.label_here();
    c.lcg(Reg::S6, Reg::T0);
    c.p.add(Reg::T1, Reg::S0, Reg::S2);
    c.p.sd(Reg::S6, Reg::T1, 0);
    c.p.addi(Reg::S2, Reg::S2, 8);
    c.p.li(Reg::T0, GRID);
    c.p.blt(Reg::S2, Reg::T0, fill);

    let main = c.loop_head(Reg::S4, searches);
    {
        // Per-search allocations: a distance window + open list. (Small
        // relative to search compute, as in the original.)
        c.malloc_imm(1024 * 2);
        c.p.mv(Reg::S1, Reg::A0); // dist (u16 per cell, windowed)
        c.malloc_imm(256 * 8);
        c.p.mv(Reg::S3, Reg::A0); // open list
        // Start cell from the search seed.
        c.lcg(Reg::S6, Reg::T0);
        c.p.andi(Reg::S7, Reg::S6, GRID - 1); // current cell
        c.p.li(Reg::S9, 0); // open-list cursor
        // Expansion loop.
        c.p.li(Reg::S5, EXPANSIONS);
        let expand = c.p.label_here();
        {
            // Read the cell's cost and relax 4 neighbours.
            c.p.add(Reg::T1, Reg::S0, Reg::S7);
            c.p.load(Reg::S8, Reg::T1, 0, MemSize::B1);
            for delta in [1i64, -1, 64, -64] {
                c.p.addi(Reg::T2, Reg::S7, delta);
                c.p.andi(Reg::T2, Reg::T2, GRID - 1);
                // dist[n & 1023] += cost (windowed relaxation stand-in).
                c.p.andi(Reg::T3, Reg::T2, 1023);
                c.p.slli(Reg::T3, Reg::T3, 1);
                c.p.add(Reg::T3, Reg::S1, Reg::T3);
                c.p.load(Reg::T4, Reg::T3, 0, MemSize::B2);
                c.p.add(Reg::T4, Reg::T4, Reg::S8);
                c.p.store(Reg::T4, Reg::T3, 0, MemSize::B2);
            }
            // Push the best neighbour on the open list and move there.
            c.p.andi(Reg::T1, Reg::S9, 255);
            c.p.slli(Reg::T1, Reg::T1, 3);
            c.p.add(Reg::T1, Reg::S3, Reg::T1);
            c.p.sd(Reg::S7, Reg::T1, 0);
            c.p.addi(Reg::S9, Reg::S9, 1);
            // Next cell: data-dependent walk.
            c.p.add(Reg::S7, Reg::S7, Reg::S8);
            c.p.addi(Reg::S7, Reg::S7, 17);
            c.p.andi(Reg::S7, Reg::S7, GRID - 1);
        }
        c.p.addi(Reg::S5, Reg::S5, -1);
        c.p.bne(Reg::S5, Reg::ZERO, expand);
        c.free_reg(Reg::S1);
        c.free_reg(Reg::S3);
    }
    c.loop_end(Reg::S4, main);

    c.free_reg(Reg::S0);
    c.finish()
}

#[cfg(test)]
mod tests {
    use crate::common::testutil::calibrate;
    use crate::Workload;

    #[test]
    fn calibration() {
        // 3 searches × 2800 expansions × ~31 insts ≈ 260 k; 1 + 2×3 = 7
        // allocations (medium class).
        calibrate(Workload::Astar, 150_000..400_000, 6..9);
    }
}
