use rest_core::TokenWidth;
use rest_isa::{EcallNum, Label, Program, ProgramBuilder, Reg};
use rest_runtime::{FrameGuard, StackScheme};

use crate::Scale;

/// Parameters shared by all workload builders.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadParams {
    /// Input-set scale.
    pub scale: Scale,
    /// Stack-protection scheme to compile with (None / ASan / REST).
    pub stack_scheme: StackScheme,
    /// Token width (governs REST stack-redzone alignment).
    pub token_width: TokenWidth,
    /// Seed for compile-time pseudo-random choices (e.g. gobmk's
    /// sub-input variations).
    pub seed: u64,
}

impl WorkloadParams {
    /// Test-scale parameters.
    pub fn test(stack_scheme: StackScheme) -> WorkloadParams {
        WorkloadParams {
            scale: Scale::Test,
            stack_scheme,
            token_width: TokenWidth::B64,
            seed: 0xC0FFEE,
        }
    }

    /// Benchmark-scale parameters.
    pub fn reference(stack_scheme: StackScheme) -> WorkloadParams {
        WorkloadParams {
            scale: Scale::Ref,
            ..WorkloadParams::test(stack_scheme)
        }
    }

    /// The stack-protection pass for these parameters.
    pub fn guard(&self) -> FrameGuard {
        FrameGuard::new(self.stack_scheme, self.token_width)
    }

    /// Picks `(test, ref)` by scale.
    pub fn pick(&self, test: i64, reference: i64) -> i64 {
        match self.scale {
            Scale::Test => test,
            Scale::Ref => reference,
        }
    }
}

/// Shared builder context for workload kernels: a [`ProgramBuilder`]
/// plus the stack-protection pass and guest-code idioms (LCG random
/// numbers, runtime calls).
#[derive(Debug)]
pub struct Ctx {
    /// The underlying assembler.
    pub p: ProgramBuilder,
    /// Stack-protection pass.
    pub guard: FrameGuard,
}

impl Ctx {
    /// Starts a program: stack pointer and shadow base setup.
    pub fn new(params: &WorkloadParams) -> Ctx {
        let guard = params.guard();
        let mut p = ProgramBuilder::new();
        p.symbol("_start");
        guard.emit_startup(&mut p);
        Ctx { p, guard }
    }

    /// Terminates the program with `exit(0)` and assembles it.
    pub fn finish(mut self) -> Program {
        self.p.li(Reg::A0, 0);
        self.p.ecall(EcallNum::Exit);
        self.p.build()
    }

    /// `A0 = malloc(size)`. Clobbers `A0`, `A7`.
    pub fn malloc_imm(&mut self, size: i64) {
        self.p.li(Reg::A0, size);
        self.p.ecall(EcallNum::Malloc);
    }

    /// `A0 = malloc(A0)`.
    pub fn malloc_a0(&mut self) {
        self.p.ecall(EcallNum::Malloc);
    }

    /// `free(r)`. Clobbers `A0`, `A7`.
    pub fn free_reg(&mut self, r: Reg) {
        if r != Reg::A0 {
            self.p.mv(Reg::A0, r);
        }
        self.p.ecall(EcallNum::Free);
    }

    /// `memcpy(dst, src, len)` through the runtime (exercises ASan's
    /// libc interception). Clobbers `A0..A2`, `A7`.
    pub fn memcpy(&mut self, dst: Reg, src: Reg, len: i64) {
        if dst != Reg::A0 {
            self.p.mv(Reg::A0, dst);
        }
        if src != Reg::A1 {
            self.p.mv(Reg::A1, src);
        }
        self.p.li(Reg::A2, len);
        self.p.ecall(EcallNum::Memcpy);
    }

    /// `memset(dst, byte, len)` through the runtime. Clobbers `A0..A2`,
    /// `A7`.
    pub fn memset(&mut self, dst: Reg, byte: i64, len: i64) {
        if dst != Reg::A0 {
            self.p.mv(Reg::A0, dst);
        }
        self.p.li(Reg::A1, byte);
        self.p.li(Reg::A2, len);
        self.p.ecall(EcallNum::Memset);
    }

    /// `A0 = sbrk(n)`: carve a static array out of the data break.
    pub fn sbrk_imm(&mut self, n: i64) {
        self.p.li(Reg::A0, n);
        self.p.ecall(EcallNum::Sbrk);
    }

    /// Advances an in-guest linear congruential generator:
    /// `state = state * K + C`. Clobbers `tmp`.
    pub fn lcg(&mut self, state: Reg, tmp: Reg) {
        self.p.li(tmp, 0x5851_F42D_4C95_7F2D_u64 as i64);
        self.p.mul(state, state, tmp);
        self.p.li(tmp, 0x1405_7B7E_F767_814F_u64 as i64);
        self.p.add(state, state, tmp);
    }

    /// Emits a counted loop head: `li counter, n; <label>:`. Pair with
    /// [`Ctx::loop_end`].
    pub fn loop_head(&mut self, counter: Reg, n: i64) -> Label {
        self.p.li(counter, n);
        self.p.label_here()
    }

    /// Emits the loop tail: `addi counter, counter, -1; bne counter, x0, head`.
    pub fn loop_end(&mut self, counter: Reg, head: Label) {
        self.p.addi(counter, counter, -1);
        self.p.bne(counter, Reg::ZERO, head);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_respects_scale() {
        let t = WorkloadParams::test(StackScheme::None);
        let r = WorkloadParams::reference(StackScheme::None);
        assert_eq!(t.pick(3, 9), 3);
        assert_eq!(r.pick(3, 9), 9);
    }

    #[test]
    fn loop_helpers_produce_runnable_loop() {
        let params = WorkloadParams::test(StackScheme::None);
        let mut c = Ctx::new(&params);
        let head = c.loop_head(Reg::S0, 5);
        c.p.addi(Reg::S1, Reg::S1, 1);
        c.loop_end(Reg::S0, head);
        let prog = c.finish();
        assert!(prog.len() > 5);
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use rest_core::Mode;
    use rest_cpu::{Emulator, ExecEngine, SimConfig, StopReason};
    use rest_runtime::{RtConfig, StackScheme};

    use crate::{Workload, WorkloadParams};

    /// Runs `w` functionally at test scale under `rt`, returning the
    /// stop reason, retired macro instructions, and allocation count.
    pub fn run(w: Workload, stack: StackScheme, rt: RtConfig) -> (StopReason, u64, u64) {
        let params = WorkloadParams::test(stack);
        let program = w.build(&params);
        let cfg = SimConfig::isca2018(rt);
        let mut emu = Emulator::new(program, &cfg);
        emu.run_functional();
        let stop = emu.take_stop().expect("run_functional stops");
        let allocs = emu.runtime().allocator().stats().allocs;
        (stop, emu.insts(), allocs)
    }

    /// Asserts the workload completes under plain, ASan, and REST (both
    /// scopes), and that its instruction/allocation counts at test scale
    /// sit in the given bands under the plain build.
    pub fn calibrate(w: Workload, insts: std::ops::Range<u64>, allocs: std::ops::Range<u64>) {
        let (stop, n, a) = run(w, StackScheme::None, RtConfig::plain());
        assert_eq!(stop, StopReason::Exit(0), "{w}: plain run failed");
        assert!(
            insts.contains(&n),
            "{w}: {n} insts outside calibration band {insts:?}"
        );
        assert!(
            allocs.contains(&a),
            "{w}: {a} allocs outside calibration band {allocs:?}"
        );

        let (stop, _, _) = run(w, StackScheme::Asan, RtConfig::asan());
        assert_eq!(stop, StopReason::Exit(0), "{w}: asan run failed");
        let (stop, _, _) = run(w, StackScheme::Rest, RtConfig::rest(Mode::Secure, true));
        assert_eq!(stop, StopReason::Exit(0), "{w}: rest full run failed");
        let (stop, _, _) = run(w, StackScheme::None, RtConfig::rest(Mode::Secure, false));
        assert_eq!(stop, StopReason::Exit(0), "{w}: rest heap run failed");
    }
}
