//! `sjeng`-like kernel: chess-engine stand-in — recursive game-tree
//! search with a per-frame move buffer and a global transposition table.
//!
//! Profile: fewer than 10 allocation calls total, deep recursion with
//! stack buffers (the stack-protection pass arms/disarms redzones on
//! every call in "full" configurations), hash-table scatter accesses.

use rest_isa::{MemSize, Program, Reg};

use crate::common::{Ctx, WorkloadParams};

pub fn build(params: &WorkloadParams) -> Program {
    let depth = params.pick(5, 7);
    let moves = 4i64;
    let mut c = Ctx::new(params);

    // Transposition table (the run's only allocation).
    c.malloc_imm(4096);
    c.p.mv(Reg::S0, Reg::A0);
    // Zobrist-ish hash state.
    c.p.li(Reg::S6, 0x0b5e_55ed);

    let rec = c.p.new_label();
    let done = c.p.new_label();
    c.p.li(Reg::A0, depth);
    c.p.call(rec);
    c.p.j(done);

    // fn rec(depth in A0)
    c.p.symbol("rec");
    c.p.bind(rec);
    let layout = c.guard.layout(&[32], 32);
    let boff = layout.buffers[0].offset as i64;
    c.guard.emit_prologue(&mut c.p, &layout);
    c.p.sd(Reg::RA, Reg::SP, 0);
    c.p.sd(Reg::A0, Reg::SP, 8);
    c.p.sd(Reg::S3, Reg::SP, 16);
    let leaf = c.p.new_label();
    c.p.beq(Reg::A0, Reg::ZERO, leaf);
    c.p.li(Reg::S3, moves);
    let move_loop = c.p.label_here();
    // Generate a pseudo-random move and record it in the frame buffer.
    c.lcg(Reg::S6, Reg::T0);
    c.p.andi(Reg::T1, Reg::S6, 31);
    c.p.addi(Reg::T2, Reg::SP, boff);
    c.p.add(Reg::T2, Reg::T2, Reg::T1);
    c.p.andi(Reg::T3, Reg::S6, 0xff);
    c.p.store(Reg::T3, Reg::T2, 0, MemSize::B1);
    // Position evaluation: several rounds of hash mixing + table probes.
    c.p.li(Reg::S10, 6);
    let eval = c.p.label_here();
    c.p.srli(Reg::T1, Reg::S6, 8);
    c.p.andi(Reg::T1, Reg::T1, 511);
    c.p.slli(Reg::T1, Reg::T1, 3);
    c.p.add(Reg::T1, Reg::S0, Reg::T1);
    c.p.ld(Reg::T2, Reg::T1, 0);
    c.p.xor(Reg::T2, Reg::T2, Reg::S6);
    c.p.sd(Reg::T2, Reg::T1, 0);
    c.p.mul(Reg::S6, Reg::S6, Reg::T2);
    c.p.addi(Reg::S6, Reg::S6, 0x51ed);
    c.p.addi(Reg::S10, Reg::S10, -1);
    c.p.bne(Reg::S10, Reg::ZERO, eval);
    // Recurse.
    c.p.ld(Reg::A0, Reg::SP, 8);
    c.p.addi(Reg::A0, Reg::A0, -1);
    c.p.call(rec);
    c.p.addi(Reg::S3, Reg::S3, -1);
    c.p.bne(Reg::S3, Reg::ZERO, move_loop);
    c.p.bind(leaf);
    c.p.ld(Reg::RA, Reg::SP, 0);
    c.p.ld(Reg::S3, Reg::SP, 16);
    c.guard.emit_epilogue(&mut c.p, &layout);
    c.p.ret();

    c.p.bind(done);
    c.free_reg(Reg::S0);
    c.finish()
}

#[cfg(test)]
mod tests {
    use crate::common::testutil::calibrate;
    use crate::Workload;

    #[test]
    fn calibration() {
        // (4^6−1)/3 ≈ 1365 nodes × ~95 insts ≈ 130 k; exactly 1
        // allocation (the transposition table).
        calibrate(Workload::Sjeng, 90_000..220_000, 1..2);
    }
}
