//! Edge-case integration tests for the memory hierarchy: structural
//! hazards (MSHR target limits, write buffers), multi-level service
//! paths, and the coherence/DMA interface.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rest_core::{Mode, Token, TokenWidth};
use rest_isa::{GuestMemory, MemAccessKind};
use rest_mem::{Hierarchy, MemConfig, ServedBy};

fn setup() -> (Hierarchy, GuestMemory, Token) {
    let mut rng = StdRng::seed_from_u64(7);
    (
        Hierarchy::new(MemConfig::isca2018()),
        GuestMemory::new(),
        Token::generate(TokenWidth::B64, &mut rng),
    )
}

#[test]
fn l2_serves_lines_evicted_from_l1() {
    let (mut h, mem, tok) = setup();
    // Fill one L1-D set (8 ways at 8 kB stride) plus one more.
    let base = 0x10_0000u64;
    let mut now = 0;
    for i in 0..9u64 {
        let out = h.access_data(now, MemAccessKind::Load, base + i * 8192, 8, &mem, &tok, Mode::Secure);
        now = out.complete_at + 1;
    }
    // The first line was evicted from L1 but lives in L2.
    let out = h.access_data(now + 100, MemAccessKind::Load, base, 8, &mem, &tok, Mode::Secure);
    assert_eq!(out.served_by, ServedBy::L2);
    // And an L2 hit is much faster than DRAM.
    let l2_latency = out.complete_at - (now + 100);
    assert!(l2_latency < 40, "L2 service took {l2_latency} cycles");
}

#[test]
fn dram_serves_cold_lines_slowly() {
    let (mut h, mem, tok) = setup();
    let out = h.access_data(0, MemAccessKind::Load, 0x40_0000, 8, &mem, &tok, Mode::Secure);
    assert_eq!(out.served_by, ServedBy::Dram);
    assert!(out.complete_at > 60, "DRAM access too fast: {}", out.complete_at);
    assert_eq!(h.stats().dram_accesses, 1);
}

#[test]
fn mshr_target_limit_forces_fresh_allocation() {
    // L1-D MSHRs merge up to 20 targets; the 21st secondary miss to the
    // same in-flight line cannot merge. It must still complete correctly.
    let (mut h, mem, tok) = setup();
    let mut completions = Vec::new();
    for i in 0..25u64 {
        let out = h.access_data(i, MemAccessKind::Load, 0x50_0000 + i % 8, 8, &mem, &tok, Mode::Secure);
        completions.push(out.complete_at);
    }
    // All complete, monotonically reasonable, and only one DRAM fetch of
    // the line happened for the merged ones.
    assert!(completions.iter().all(|&c| c > 0));
    assert!(h.stats().dram_accesses <= 3);
}

#[test]
fn writeback_pressure_engages_the_write_buffer() {
    let (mut h, mem, tok) = setup();
    // Dirty many lines in one set, then thrash it: every fill evicts a
    // dirty line into the L1 write buffer.
    let base = 0x20_0000u64;
    let mut now = 0;
    for i in 0..32u64 {
        let out = h.access_data(now, MemAccessKind::Store, base + i * 8192, 8, &mem, &tok, Mode::Secure);
        now = out.complete_at + 1;
    }
    assert!(
        h.stats().l1d_writebacks >= 16,
        "writebacks: {}",
        h.stats().l1d_writebacks
    );
}

#[test]
fn coherence_invalidate_discards_token_state() {
    let (mut h, mut mem, tok) = setup();
    mem.write_bytes(0x3000, tok.bytes());
    // Arm via fill-path detection.
    let out = h.access_data(0, MemAccessKind::Load, 0x3000, 8, &mem, &tok, Mode::Secure);
    assert!(out.exception.is_some());
    assert!(h.l1d().token_bit_covering(0x3000, 64));
    h.coherence_invalidate(0x3000);
    assert!(!h.l1d().token_bit_covering(0x3000, 64));
    // DMA rewrote memory: the refetched line is clean.
    mem.fill(0x3000, 64, 0);
    let out = h.access_data(1000, MemAccessKind::Load, 0x3000, 8, &mem, &tok, Mode::Secure);
    assert!(out.exception.is_none());
}

#[test]
fn instruction_and_data_caches_are_split() {
    let (mut h, mem, tok) = setup();
    // Fetch a code line, then access the same address as data: both miss
    // independently (split L1s), but the data access hits the now-warm L2.
    let t1 = h.fetch_inst(0, 0x1_0000, &mem, &tok);
    assert!(t1 > 2);
    let out = h.access_data(t1 + 10, MemAccessKind::Load, 0x1_0000, 8, &mem, &tok, Mode::Secure);
    assert_eq!(h.stats().l1d_misses, 1, "data side must miss separately");
    assert_eq!(out.served_by, ServedBy::L2, "but the L2 is unified");
}

#[test]
fn narrow_token_bits_survive_partial_disarm() {
    let mut rng = StdRng::seed_from_u64(8);
    let tok = Token::generate(TokenWidth::B16, &mut rng);
    let mut h = Hierarchy::new(MemConfig::isca2018());
    let mut mem = GuestMemory::new();
    // Arm all four slots of one line.
    let mut now = 0;
    for slot in 0..4u64 {
        let out = h.access_data(now, MemAccessKind::Arm, 0x6000 + slot * 16, 16, &mem, &tok, Mode::Secure);
        now = out.complete_at + 1;
        mem.write_bytes(0x6000 + slot * 16, tok.bytes());
    }
    // Disarm slot 1 only.
    mem.fill(0x6010, 16, 0);
    let out = h.access_data(now + 10, MemAccessKind::Disarm, 0x6010, 16, &mem, &tok, Mode::Secure);
    assert!(out.exception.is_none());
    // Slot 1 is free; slots 0/2/3 still trap.
    let ok = h.access_data(now + 100, MemAccessKind::Load, 0x6010, 8, &mem, &tok, Mode::Secure);
    assert!(ok.exception.is_none());
    let bad = h.access_data(now + 200, MemAccessKind::Load, 0x6020, 8, &mem, &tok, Mode::Secure);
    assert!(bad.exception.is_some());
}

#[test]
fn stats_merge_roundtrip() {
    let (mut h, mem, tok) = setup();
    h.access_data(0, MemAccessKind::Load, 0x9000, 8, &mem, &tok, Mode::Secure);
    let mut agg = rest_mem::MemStats::default();
    agg.merge(h.stats());
    agg.merge(h.stats());
    assert_eq!(agg.l1d_misses, 2 * h.stats().l1d_misses);
}

#[test]
fn dedicated_token_cache_speeds_armed_line_refetch() {
    // §VIII future work: evicted armed lines parked in a dedicated
    // buffer are re-installed at near-L1 latency — and still trap.
    let mut rng = StdRng::seed_from_u64(77);
    let tok = Token::generate(TokenWidth::B64, &mut rng);
    let mut mem = GuestMemory::new();
    mem.write_bytes(0x9000, tok.bytes());

    let run = |entries: usize, mem: &GuestMemory| {
        let mut cfg = MemConfig::isca2018();
        cfg.token_cache_entries = entries;
        let mut h = Hierarchy::new(cfg);
        // Install the armed line (faults, but also fills + detects).
        let out = h.access_data(0, MemAccessKind::Load, 0x9000, 8, mem, &tok, Mode::Secure);
        assert!(out.exception.is_some());
        // Thrash the set to evict it (8 kB stride, 8 ways).
        let mut now = out.complete_at + 1;
        for i in 1..=8u64 {
            let o = h.access_data(now, MemAccessKind::Load, 0x9000 + i * 8192, 8, mem, &tok, Mode::Secure);
            now = o.complete_at + 1;
        }
        // Refetch the armed line.
        let start = now + 10;
        let out = h.access_data(start, MemAccessKind::Load, 0x9000, 8, mem, &tok, Mode::Secure);
        assert!(out.exception.is_some(), "token bit must be restored");
        (out.complete_at - start, h.stats().token_cache_hits)
    };

    let (slow, hits0) = run(0, &mem);
    let (fast, hits1) = run(16, &mem);
    assert_eq!(hits0, 0);
    assert_eq!(hits1, 1);
    assert!(
        fast < slow,
        "token cache must serve refetches faster: {fast} vs {slow}"
    );
}
