/// A write buffer for outgoing writebacks.
///
/// Evicted dirty lines park here while draining to the next level. When
/// the buffer is full, the evicting access stalls until the oldest entry
/// drains — the structural hazard the paper's 8-entry buffers bound.
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    capacity: usize,
    /// Drain-completion cycles of occupied entries.
    drains: Vec<u64>,
    stalls: u64,
    total_writebacks: u64,
}

impl WriteBuffer {
    /// Creates a buffer with `capacity` entries (0 = writes bypass
    /// buffering and complete inline).
    pub fn new(capacity: usize) -> WriteBuffer {
        WriteBuffer {
            capacity,
            drains: Vec::new(),
            stalls: 0,
            total_writebacks: 0,
        }
    }

    fn expire(&mut self, now: u64) {
        self.drains.retain(|&d| d > now);
    }

    /// Enqueues a writeback at `now` that takes `drain_latency` cycles to
    /// reach the next level. Returns the cycle at which the *evicting
    /// access* may proceed: `now` if a slot was free, later if the buffer
    /// was full and the access had to wait for the oldest drain.
    pub fn push(&mut self, now: u64, drain_latency: u64) -> u64 {
        self.expire(now);
        self.total_writebacks += 1;
        let start = if self.capacity == 0 {
            // No buffering: the access absorbs the whole drain.
            return now + drain_latency;
        } else if self.drains.len() >= self.capacity {
            self.stalls += 1;
            let earliest = *self.drains.iter().min().expect("buffer non-empty");
            self.expire(earliest);
            earliest
        } else {
            now
        };
        self.drains.push(start + drain_latency);
        start
    }

    /// Entries currently draining.
    pub fn occupancy(&mut self, now: u64) -> usize {
        self.expire(now);
        self.drains.len()
    }

    /// Number of full-buffer stalls.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Total writebacks accepted.
    pub fn total_writebacks(&self) -> u64 {
        self.total_writebacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_slot_costs_nothing() {
        let mut wb = WriteBuffer::new(2);
        assert_eq!(wb.push(10, 50), 10);
        assert_eq!(wb.occupancy(10), 1);
        assert_eq!(wb.occupancy(60), 0);
    }

    #[test]
    fn full_buffer_stalls_until_oldest_drain() {
        let mut wb = WriteBuffer::new(2);
        wb.push(0, 100); // drains at 100
        wb.push(0, 40); // drains at 40
        let start = wb.push(10, 10);
        assert_eq!(start, 40);
        assert_eq!(wb.stalls(), 1);
    }

    #[test]
    fn zero_capacity_absorbs_latency_inline() {
        let mut wb = WriteBuffer::new(0);
        assert_eq!(wb.push(5, 20), 25);
    }

    #[test]
    fn counts_writebacks() {
        let mut wb = WriteBuffer::new(4);
        for i in 0..3 {
            wb.push(i, 5);
        }
        assert_eq!(wb.total_writebacks(), 3);
    }
}
