//! Cycle-level memory hierarchy for the REST simulator.
//!
//! Implements the memory side of the paper's Table II configuration:
//! split 64 kB 8-way L1 caches (2-cycle), a unified 2 MB 16-way L2
//! (20-cycle), MSHRs with miss merging, write buffers, and a banked
//! DDR3-800 DRAM model with open-row tracking — plus the entirety of the
//! paper's hardware contribution:
//!
//! * per-L1-D-line **token bits** (1, 2 or 4 per line depending on token
//!   width),
//! * the **token detector** in the L1-D fill path, which compares each
//!   incoming line against the token-configuration register and sets the
//!   corresponding token bit(s),
//! * `arm`/`disarm` handling at the cache (arm sets the bit without
//!   writing the 64 B value; the value is materialised lazily when the
//!   line is evicted),
//! * token-access detection for regular loads/stores, returning the
//!   [`rest_core::RestExceptionKind`] mandated by Table I,
//! * critical-word-first interaction with debug mode (a load whose
//!   delivered word partially matches the token is held until the full
//!   line has been checked).
//!
//! The hierarchy is *timing-directed*: tags, LRU state, MSHR and bank
//! occupancy are tracked cycle-accurately, while data values live in the
//! functional [`rest_isa::GuestMemory`]-style memory owned by the
//! emulator. The token detector therefore compares real line bytes,
//! making detection genuinely content-based as in the paper.

#![forbid(unsafe_code)]

mod cache;
mod config;
mod dram;
mod hierarchy;
mod mshr;
mod stats;
mod wbuf;

pub use cache::{Cache, EvictedLine};
pub use config::{CacheConfig, DramConfig, MemConfig};
pub use dram::Dram;
pub use hierarchy::{DataOutcome, Hierarchy, LineReader, ServedBy};
pub use mshr::MshrFile;
pub use stats::MemStats;
pub use wbuf::WriteBuffer;
