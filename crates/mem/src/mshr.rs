use std::collections::HashMap;

/// A miss-status holding register file.
///
/// Tracks outstanding line fills for one cache level. A secondary miss to
/// a line already in flight *merges*: it costs no new entry and completes
/// when the primary fill returns (subject to the per-entry target limit).
/// When all entries are busy, a new miss must wait for the earliest
/// completion — the stall the paper's Table II provisions against with
/// "4 20-entry MSHRs".
///
/// # Example
///
/// ```
/// use rest_mem::MshrFile;
///
/// let mut mshrs = MshrFile::new(2, 4);
/// let start = mshrs.allocate(0x1000, 10, 100); // line, now, fill-done
/// assert_eq!(start, 10);                        // no structural stall
/// assert_eq!(mshrs.merge(0x1000, 50), Some(100)); // secondary miss merges
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: usize,
    targets_per_entry: usize,
    /// line address -> (fill completion cycle, targets merged so far).
    inflight: HashMap<u64, (u64, usize)>,
    /// Completion cycles of all in-flight fills (for full-file stalls).
    stalls: u64,
    merges: u64,
}

impl MshrFile {
    /// Creates a file with `entries` primary-miss slots, each accepting
    /// `targets_per_entry` merged secondary misses.
    pub fn new(entries: usize, targets_per_entry: usize) -> MshrFile {
        MshrFile {
            entries,
            targets_per_entry,
            inflight: HashMap::new(),
            stalls: 0,
            merges: 0,
        }
    }

    /// Drops entries whose fills completed at or before `now`.
    pub fn expire(&mut self, now: u64) {
        self.inflight.retain(|_, (done, _)| *done > now);
    }

    /// If `line` is already being fetched at `now`, merges onto the entry
    /// and returns the fill completion cycle. Returns `None` when the
    /// line is not in flight *or* the entry's target slots are exhausted
    /// (the access must then be retried; we model that as a fresh
    /// allocation after the entry retires).
    pub fn merge(&mut self, line: u64, now: u64) -> Option<u64> {
        self.expire(now);
        match self.inflight.get_mut(&line) {
            Some((done, targets)) if *targets < self.targets_per_entry => {
                *targets += 1;
                self.merges += 1;
                Some(*done)
            }
            _ => None,
        }
    }

    /// Allocates an entry for a primary miss to `line` discovered at
    /// `now` whose fill would complete at `fill_done` if it started
    /// immediately. Returns the cycle at which the miss can actually
    /// *start* (== `now` unless the file is full, in which case the
    /// request waits for the earliest in-flight completion).
    pub fn allocate(&mut self, line: u64, now: u64, fill_done: u64) -> u64 {
        self.expire(now);
        let start = if self.inflight.len() >= self.entries {
            let earliest = self
                .inflight
                .values()
                .map(|&(done, _)| done)
                .min()
                .expect("file is non-empty when full");
            self.stalls += 1;
            // The stalled request begins once a slot frees.
            let wait = earliest.saturating_sub(now);
            self.expire(earliest);
            self.inflight
                .insert(line, (fill_done + wait, 1));
            return now + wait;
        } else {
            now
        };
        self.inflight.insert(line, (fill_done, 1));
        start
    }

    /// Number of in-flight fills (after expiring completed ones).
    pub fn occupancy(&mut self, now: u64) -> usize {
        self.expire(now);
        self.inflight.len()
    }

    /// Number of times a request stalled on a full file.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Number of merged secondary misses.
    pub fn merges(&self) -> u64 {
        self.merges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_miss_starts_immediately_when_free() {
        let mut m = MshrFile::new(2, 2);
        assert_eq!(m.allocate(0x0, 5, 50), 5);
        assert_eq!(m.occupancy(5), 1);
    }

    #[test]
    fn secondary_miss_merges_until_target_limit() {
        let mut m = MshrFile::new(1, 2);
        m.allocate(0x40, 0, 100);
        assert_eq!(m.merge(0x40, 10), Some(100)); // target 2
        assert_eq!(m.merge(0x40, 20), None); // limit hit
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn full_file_delays_new_miss_until_earliest_completion() {
        let mut m = MshrFile::new(2, 4);
        m.allocate(0x0, 0, 60);
        m.allocate(0x40, 0, 90);
        let start = m.allocate(0x80, 10, 110);
        assert_eq!(start, 60); // waited for the 0x0 fill
        assert_eq!(m.stalls(), 1);
    }

    #[test]
    fn entries_expire() {
        let mut m = MshrFile::new(1, 4);
        m.allocate(0x0, 0, 30);
        assert_eq!(m.occupancy(29), 1);
        assert_eq!(m.occupancy(30), 0);
        assert_eq!(m.merge(0x0, 31), None); // completed, no merge target
    }
}
