use crate::config::DramConfig;

/// Banked DRAM channel with open-row (open-page) policy.
///
/// Each bank remembers its open row; a request to the same row pays only
/// CAS + burst, a request to a different row pays precharge + activate +
/// CAS + burst, and a request to an idle bank pays activate + CAS +
/// burst. Requests serialise per bank (bank-busy tracking), which is the
/// first-order DRAM queueing effect.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    /// Open row per bank (`None` = precharged/idle).
    open_rows: Vec<Option<u64>>,
    /// Cycle at which each bank becomes free.
    bank_free: Vec<u64>,
    accesses: u64,
    row_hits: u64,
    row_conflicts: u64,
}

impl Dram {
    /// Creates an idle DRAM channel.
    pub fn new(cfg: DramConfig) -> Dram {
        let banks = cfg.banks;
        Dram {
            cfg,
            open_rows: vec![None; banks],
            bank_free: vec![0; banks],
            accesses: 0,
            row_hits: 0,
            row_conflicts: 0,
        }
    }

    fn bank_of(&self, line_addr: u64) -> usize {
        // Interleave consecutive lines across banks.
        ((line_addr / 64) % self.cfg.banks as u64) as usize
    }

    fn row_of(&self, line_addr: u64) -> u64 {
        line_addr / self.cfg.row_bytes
    }

    /// Issues a line access at `now`; returns the completion cycle.
    pub fn access(&mut self, now: u64, line_addr: u64) -> u64 {
        self.accesses += 1;
        let bank = self.bank_of(line_addr);
        let row = self.row_of(line_addr);
        let start = now.max(self.bank_free[bank]);
        let latency = match self.open_rows[bank] {
            Some(open) if open == row => {
                self.row_hits += 1;
                self.cfg.row_hit_cycles()
            }
            Some(_) => {
                self.row_conflicts += 1;
                self.cfg.row_conflict_cycles()
            }
            None => self.cfg.row_empty_cycles(),
        };
        self.open_rows[bank] = Some(row);
        let done = start + latency;
        self.bank_free[bank] = done;
        done
    }

    /// Total line accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Row-buffer hits.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Row-buffer conflicts.
    pub fn row_conflicts(&self) -> u64 {
        self.row_conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::isca2018())
    }

    #[test]
    fn first_access_pays_row_empty() {
        let mut d = dram();
        let done = d.access(0, 0x10000);
        assert_eq!(done, DramConfig::isca2018().row_empty_cycles());
    }

    #[test]
    fn same_row_hits_are_cheaper() {
        let mut d = dram();
        let t1 = d.access(0, 0);
        // Same bank, same row: line 0 and line at +banks*64 stride would
        // change bank; stay within the same line's row & bank by reusing
        // the same line address.
        let t2 = d.access(t1, 0);
        assert_eq!(t2 - t1, DramConfig::isca2018().row_hit_cycles());
        assert_eq!(d.row_hits(), 1);
    }

    #[test]
    fn row_conflict_pays_full_penalty() {
        let mut d = dram();
        let cfg = DramConfig::isca2018();
        let t1 = d.access(0, 0);
        // Same bank (stride banks*64 lines apart), different row.
        let other = cfg.row_bytes * cfg.banks as u64;
        let t2 = d.access(t1, other);
        assert_eq!(t2 - t1, cfg.row_conflict_cycles());
        assert_eq!(d.row_conflicts(), 1);
    }

    #[test]
    fn busy_bank_serialises_requests() {
        let mut d = dram();
        let t1 = d.access(0, 0);
        // Request to the same bank issued while it is busy starts after.
        let t2 = d.access(1, 0);
        assert!(t2 >= t1 + DramConfig::isca2018().row_hit_cycles());
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        let mut d = dram();
        let t1 = d.access(0, 0);
        let t2 = d.access(0, 64); // next line -> next bank
        assert_eq!(t1, t2); // identical latency, overlapping in time
        assert_eq!(d.accesses(), 2);
    }
}
