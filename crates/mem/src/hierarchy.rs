use rest_core::table1::{cache_decision, Action};
use rest_core::{Mode, RestExceptionKind, Token};
use rest_faults::FaultHandle;
use rest_isa::{GuestMemory, MemAccessKind};

use crate::cache::Cache;
use crate::config::MemConfig;
use crate::dram::Dram;
use crate::mshr::MshrFile;
use crate::stats::MemStats;
use crate::wbuf::WriteBuffer;

/// Source of functional (architectural) line bytes for the token
/// detector in the L1-D fill path.
pub trait LineReader {
    /// Returns the 64 bytes of the line at `line_addr` (line-aligned).
    fn read_line(&self, line_addr: u64) -> [u8; 64];
}

impl LineReader for GuestMemory {
    fn read_line(&self, line_addr: u64) -> [u8; 64] {
        if let Some(img) = self.pre_line_image(line_addr) {
            // The functional emulator has already applied an arm/disarm
            // to this line; the timing model must observe the pre-update
            // content a real fill would fetch.
            return *img;
        }
        let mut buf = [0u8; 64];
        self.read_bytes(line_addr, &mut buf);
        buf
    }
}

/// Which level ultimately supplied the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    L1,
    L2,
    Dram,
}

/// Result of one data access walked through the hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct DataOutcome {
    /// Cycle at which the requested word is available to the pipeline
    /// (critical-word-first on misses).
    pub complete_at: u64,
    /// Cycle at which the *full line* has arrived and been checked by
    /// the token detector (== `complete_at` on hits).
    pub line_checked_at: u64,
    /// Hardware-detected REST violation, if any (Table I).
    pub exception: Option<RestExceptionKind>,
    /// Level that served the access.
    pub served_by: ServedBy,
    /// Debug mode only: the load was held in the MSHR because the
    /// delivered critical word partially matched the token value.
    pub held_for_check: bool,
    /// CPI-stack attribution of `complete_at - (now + L1D hit latency)`
    /// — the latency *beyond* an L1-D hit, split by where it was spent.
    /// Cycles waiting on the L2 (access served by the L2).
    pub l1d_miss_cycles: u64,
    /// Cycles spent in the L2 lookup on the way to DRAM.
    pub l2_miss_cycles: u64,
    /// Cycles waiting on DRAM beyond the L2 lookup.
    pub dram_cycles: u64,
    /// Extra cycles caused by REST itself: disarm's zeroing cycle,
    /// debug-mode full-line-check holds, token-cache re-install.
    pub rest_check_cycles: u64,
}

/// The simulated memory hierarchy: split L1s, unified L2, DRAM — with
/// the REST token detector and per-line token bits at the L1-D.
///
/// See the crate docs for the modelling approach. All latencies are in
/// core cycles at the paper's 2 GHz clock.
#[derive(Debug)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l1i_mshrs: MshrFile,
    l1d_mshrs: MshrFile,
    l2_mshrs: MshrFile,
    l1d_wbuf: WriteBuffer,
    l2_wbuf: WriteBuffer,
    dram: Dram,
    stats: MemStats,
    /// Extra cycles after the critical word until the full 64 B line has
    /// streamed in and the detector has finished (4 × 16 B fill beats).
    line_fill_tail: u64,
    /// §VIII token cache: line addresses (with their token masks) of
    /// armed lines evicted from the L1-D, FIFO-replaced. Empty capacity
    /// disables the feature.
    token_cache: std::collections::VecDeque<(u64, u8)>,
    token_cache_entries: usize,
    /// Seeded fault injection (shared with the emulator). The hierarchy
    /// hosts the micro-architectural trigger sites: fill-time detection
    /// masks, arm-driven token-bit writes, and metadata-carrying
    /// evictions. None on fault-free runs — the hooks cost nothing.
    fault: Option<FaultHandle>,
}

impl Hierarchy {
    /// Builds an empty hierarchy from `cfg`.
    pub fn new(cfg: MemConfig) -> Hierarchy {
        Hierarchy {
            l1i_mshrs: MshrFile::new(cfg.l1i.mshr_entries, cfg.l1i.mshr_targets),
            l1d_mshrs: MshrFile::new(cfg.l1d.mshr_entries, cfg.l1d.mshr_targets),
            l2_mshrs: MshrFile::new(cfg.l2.mshr_entries, cfg.l2.mshr_targets),
            l1d_wbuf: WriteBuffer::new(cfg.l1d.write_buffer_entries),
            l2_wbuf: WriteBuffer::new(cfg.l2.write_buffer_entries),
            dram: Dram::new(cfg.dram.clone()),
            l1i: Cache::new(cfg.l1i, "L1I"),
            l1d: Cache::new(cfg.l1d, "L1D"),
            l2: Cache::new(cfg.l2, "L2"),
            stats: MemStats::default(),
            line_fill_tail: 4,
            token_cache: std::collections::VecDeque::new(),
            token_cache_entries: cfg.token_cache_entries,
            fault: None,
        }
    }

    /// Attaches shared fault-injection state (cloned from the emulator's
    /// handle so both sides observe the same trigger counters).
    pub fn set_fault(&mut self, fault: FaultHandle) {
        self.fault = Some(fault);
    }

    /// Collected statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The L1 data cache (exposed for directed tests).
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// Invalidates `addr`'s L1-D line (incoming coherence invalidation
    /// or DMA to the line). Per Table I, coherence messages are handled
    /// "as usual" — in particular the token detector does NOT examine
    /// DMA traffic, which is why §V-B notes REST cannot catch token
    /// accesses that sidestep the cache entirely.
    pub fn coherence_invalidate(&mut self, addr: u64) {
        if let Some(ev) = self.l1d.invalidate(addr) {
            if ev.token_mask != 0 {
                self.stats.token_lines_evicted_l1d += 1;
            }
        }
        self.l2.invalidate(addr);
    }

    /// Instruction fetch of the line containing `pc`; returns the cycle
    /// at which fetch data is available.
    pub fn fetch_inst(&mut self, now: u64, pc: u64, mem: &dyn LineReader, token: &Token) -> u64 {
        let line = self.l1i.line_addr(pc);
        // A line whose fill is still in flight is not yet present, even
        // though its tag has been pre-installed: check the MSHRs first.
        if let Some(done) = self.l1i_mshrs.merge(line, now) {
            self.stats.l1i_misses += 1;
            return done;
        }
        if self.l1i.lookup(line, false) {
            self.stats.l1i_hits += 1;
            return now + self.l1i.config().hit_latency;
        }
        self.stats.l1i_misses += 1;
        let start = now + self.l1i.config().hit_latency;
        let (data_at, _) = self.fetch_from_l2(start, line, mem, token);
        let done = data_at;
        let alloc_start = self.l1i_mshrs.allocate(line, now, done);
        let done = done + (alloc_start - now);
        // Fill L1I (instruction lines never carry tokens or dirt).
        self.l1i.fill(line, false, 0);
        done
    }

    /// Fetches `line` from the L2 (and below), filling the L2 on a miss.
    /// Returns `(critical word available, served_by_dram)`.
    fn fetch_from_l2(
        &mut self,
        now: u64,
        line: u64,
        mem: &dyn LineReader,
        token: &Token,
    ) -> (u64, bool) {
        if let Some(done) = self.l2_mshrs.merge(line, now) {
            self.stats.l2_misses += 1;
            return (done, true);
        }
        if self.l2.lookup(line, false) {
            self.stats.l2_hits += 1;
            return (now + self.l2.config().hit_latency, false);
        }
        self.stats.l2_misses += 1;
        let start = now + self.l2.config().hit_latency;
        let dram_done = self.dram.access(start, line);
        self.stats.dram_accesses += 1;
        // Content-based accounting of token lines crossing the L2/memory
        // interface (paper §VI-B prose statistic).
        if token.line_contains_token(&mem.read_line(line)) {
            self.stats.token_lines_l2_mem += 1;
        }
        let alloc_start = self.l2_mshrs.allocate(line, now, dram_done);
        let dram_done = dram_done + (alloc_start - now);
        if let Some(ev) = self.l2.fill(line, false, 0) {
            if ev.dirty {
                self.stats.l2_writebacks += 1;
                if token.line_contains_token(&mem.read_line(ev.addr)) {
                    self.stats.token_lines_l2_mem += 1;
                }
                // Drain to DRAM through the L2 write buffer.
                let drain = self.dram_writeback_latency();
                self.l2_wbuf.push(dram_done, drain);
            }
        }
        (dram_done, true)
    }

    fn dram_writeback_latency(&self) -> u64 {
        // Writebacks are fire-and-forget; charge a row-hit-ish occupancy.
        48
    }

    /// Applies an `EvictionMetaDrop` fault to an outgoing line's token
    /// mask: on the trigger eviction the metadata is lost (the decay of
    /// the guarded tokens is queued for the emulator) and the caller
    /// sees a token-free eviction.
    fn faulted_eviction_mask(&self, line: u64, mask: u8, token: &Token) -> u8 {
        if mask != 0 {
            if let Some(f) = &self.fault {
                if f.drop_eviction(line, mask, token.width().bytes()) {
                    return 0;
                }
            }
        }
        mask
    }

    /// Ensures `line` is resident in the L1-D at `now`, running the token
    /// detector on fills. Returns `(critical_word_at, line_checked_at,
    /// served_by)`.
    fn ensure_l1d_resident(
        &mut self,
        now: u64,
        line: u64,
        is_write: bool,
        mem: &dyn LineReader,
        token: &Token,
    ) -> (u64, u64, ServedBy) {
        // §VIII token cache: an armed line parked in the dedicated
        // buffer is re-installed at near-L1 latency, token bits intact.
        if self.token_cache_entries > 0 {
            if let Some(pos) = self.token_cache.iter().position(|&(a, _)| a == line) {
                let (_, mask) = self.token_cache.remove(pos).expect("position valid");
                self.stats.token_cache_hits += 1;
                let t = now + self.l1d.config().hit_latency + 1;
                if let Some(ev) = self.l1d.fill(line, true, mask) {
                    let ev_mask = self.faulted_eviction_mask(ev.addr, ev.token_mask, token);
                    if ev_mask != 0 {
                        self.stats.token_lines_evicted_l1d += 1;
                        self.token_cache.push_back((ev.addr, ev_mask));
                        while self.token_cache.len() > self.token_cache_entries {
                            self.token_cache.pop_front();
                        }
                    }
                }
                self.l1d.lookup(line, is_write);
                return (t, t, ServedBy::L1);
            }
        }
        if let Some(done) = self.l1d_mshrs.merge(line, now) {
            // Secondary miss: data at primary fill completion. The tag
            // was pre-installed by the primary; record the touch so LRU
            // and dirty state stay correct.
            self.stats.l1d_misses += 1;
            self.l1d.lookup(line, is_write);
            return (done, done + self.line_fill_tail, ServedBy::L2);
        }
        if self.l1d.lookup(line, is_write) {
            self.stats.l1d_hits += 1;
            let t = now + self.l1d.config().hit_latency;
            return (t, t, ServedBy::L1);
        }
        self.stats.l1d_misses += 1;
        let start = now + self.l1d.config().hit_latency;
        let (data_at, from_dram) = self.fetch_from_l2(start, line, mem, token);
        let alloc_start = self.l1d_mshrs.allocate(line, now, data_at);
        let data_at = data_at + (alloc_start - now);
        // Token detector runs as the line streams in. An injected
        // metadata-bit fault perturbs the detector's mask: a cleared bit
        // loses a real detection (fail-open), a set bit plants a
        // spurious one (fail-closed).
        let mut mask = token.line_token_mask(&mem.read_line(line));
        if let Some(f) = &self.fault {
            mask = f.filter_fill_mask(line, mask, token.width().bytes());
        }
        if mask != 0 {
            self.stats.token_detections_on_fill += 1;
        }
        if let Some(ev) = self.l1d.fill(line, is_write, mask) {
            // Eviction-time metadata loss: the outgoing packet's token
            // mask is dropped and the decay is queued for the emulator.
            let ev_mask = self.faulted_eviction_mask(ev.addr, ev.token_mask, token);
            if ev_mask != 0 {
                // Lazy materialisation: the token value travels in the
                // outgoing packet (Table I, Eviction row).
                self.stats.token_lines_evicted_l1d += 1;
                if self.token_cache_entries > 0 {
                    self.token_cache.push_back((ev.addr, ev_mask));
                    while self.token_cache.len() > self.token_cache_entries {
                        self.token_cache.pop_front();
                    }
                }
            }
            if ev.dirty || ev_mask != 0 {
                self.stats.l1d_writebacks += 1;
                let drain = self.l2.config().hit_latency;
                self.l1d_wbuf.push(data_at, drain);
                // Install the writeback in the L2.
                if let Some(l2ev) = self.l2.fill(ev.addr, true, 0) {
                    if l2ev.dirty {
                        self.stats.l2_writebacks += 1;
                        if token.line_contains_token(&mem.read_line(l2ev.addr)) {
                            self.stats.token_lines_l2_mem += 1;
                        }
                        let drain = self.dram_writeback_latency();
                        self.l2_wbuf.push(data_at, drain);
                    }
                }
            }
        }
        let served = if from_dram { ServedBy::Dram } else { ServedBy::L2 };
        (data_at, data_at + self.line_fill_tail, served)
    }

    /// Walks one data access through the hierarchy, applying the REST
    /// rules of Table I.
    ///
    /// * `mem` supplies functional line bytes for the token detector —
    ///   pass the architectural memory image *before* this access's own
    ///   write is applied.
    /// * `mode` selects secure/debug behaviour (store-commit policy is
    ///   the pipeline's job, but the critical-word-first load hold is
    ///   modelled here).
    #[allow(clippy::too_many_arguments)]
    pub fn access_data(
        &mut self,
        now: u64,
        kind: MemAccessKind,
        addr: u64,
        size: u64,
        mem: &dyn LineReader,
        token: &Token,
        mode: Mode,
    ) -> DataOutcome {
        let w = token.width().bytes();
        let line = self.l1d.line_addr(addr);
        let is_write = matches!(
            kind,
            MemAccessKind::Store | MemAccessKind::Arm | MemAccessKind::Disarm
        );
        let was_hit = self.l1d.probe(line);
        let (data_at, checked_at, served) = self.ensure_l1d_resident(now, line, is_write, mem, token);
        let mut complete_at = data_at;
        let mut held = false;

        // CPI-stack attribution: split the latency beyond an L1-D hit
        // by the level that caused it. For DRAM-served accesses the L2
        // lookup happened on the miss path, so up to one L2 hit latency
        // belongs to the L2-miss bucket and the rest to DRAM.
        let hit_time = now + self.l1d.config().hit_latency;
        let miss_extra = data_at.saturating_sub(hit_time);
        let (mut l1d_miss_cycles, mut l2_miss_cycles, mut dram_cycles) = (0, 0, 0);
        let mut rest_check_cycles = 0;
        match served {
            // Token-cache re-installs complete at hit latency + 1; that
            // extra cycle is REST's, not the memory system's.
            ServedBy::L1 => rest_check_cycles += miss_extra,
            ServedBy::L2 => l1d_miss_cycles = miss_extra,
            ServedBy::Dram => {
                l2_miss_cycles = miss_extra.min(self.l2.config().hit_latency);
                dram_cycles = miss_extra - l2_miss_cycles;
            }
        }

        // Post-fill token-bit state covering the access.
        let token_bit = match kind {
            MemAccessKind::Arm | MemAccessKind::Disarm => self.l1d.token_bit_covering(addr, w),
            _ => {
                // A scalar access may straddle two slots within the line.
                self.l1d.access_touches_token(addr, size, w)
            }
        };

        let action = match (kind, mode) {
            (MemAccessKind::Arm, _) => Action::Arm,
            (MemAccessKind::Disarm, _) => Action::Disarm,
            (MemAccessKind::Load, _) => Action::Load,
            (MemAccessKind::Store, Mode::Secure) => Action::StoreSecure,
            (MemAccessKind::Store, Mode::Debug) => Action::StoreDebug,
        };
        let decision = cache_decision(action, was_hit, token_bit);

        if let Some(kind) = decision.exception {
            self.stats.rest_exceptions += 1;
            return DataOutcome {
                complete_at,
                line_checked_at: checked_at,
                exception: Some(kind),
                served_by: served,
                held_for_check: false,
                l1d_miss_cycles,
                l2_miss_cycles,
                dram_cycles,
                rest_check_cycles,
            };
        }
        if decision.set_token_bit {
            // Arm: set the bit; the wide value write is deferred to
            // eviction, so an L1 hit completes in a single cycle. A
            // `MetaBitClear` fault can lose exactly this write — the
            // slot is then armed architecturally but invisible to the
            // hardware detector until a refill re-detects it.
            let slot_addr = addr / w * w;
            let dropped = self
                .fault
                .as_ref()
                .is_some_and(|f| f.suppress_arm_bit(slot_addr));
            if !dropped {
                let slot = (addr % 64) / w;
                self.l1d.set_token_bits(addr, 1u8 << slot);
                self.l1d.mark_dirty(addr);
            }
        }
        if decision.clear_slot_unset_bit {
            // Disarm: zero the slot across all data banks; one extra
            // cycle of latency (§III-B).
            self.l1d.clear_token_bit(addr, w);
            complete_at += 1;
            rest_check_cycles += 1;
        }
        // Critical-word-first vs. debug mode: a missing load whose
        // delivered word partially matches the token is not released
        // from the MSHR until the full line has been checked.
        if kind == MemAccessKind::Load && !was_hit && mode == Mode::Debug {
            let line_bytes = mem.read_line(line);
            let off = (addr - line) as usize;
            let end = (off + size as usize).min(64);
            let tok_slot_off = off % w as usize;
            let tok = token.bytes();
            let partial_match = (off..end).all(|i| {
                let ti = (tok_slot_off + (i - off)) % w as usize;
                line_bytes[i] == tok[ti]
            });
            if partial_match {
                let released_at = complete_at.max(checked_at);
                rest_check_cycles += released_at - complete_at;
                complete_at = released_at;
                held = true;
                self.stats.debug_load_holds += 1;
            }
        }
        DataOutcome {
            complete_at,
            line_checked_at: checked_at,
            exception: None,
            served_by: served,
            held_for_check: held,
            l1d_miss_cycles,
            l2_miss_cycles,
            dram_cycles,
            rest_check_cycles,
        }
    }

    /// Fills the memory-side occupancy gauges (MSHRs in flight, write
    /// buffer entries draining) at `now`. The core fills the
    /// pipeline-side gauges.
    pub fn fill_gauges(&mut self, now: u64, gauges: &mut rest_obs::Gauges) {
        gauges.l1d_mshrs = self.l1d_mshrs.occupancy(now) as u64;
        gauges.l2_mshrs = self.l2_mshrs.occupancy(now) as u64;
        gauges.write_buffer =
            (self.l1d_wbuf.occupancy(now) + self.l2_wbuf.occupancy(now)) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rest_core::TokenWidth;

    fn setup(width: TokenWidth) -> (Hierarchy, GuestMemory, Token) {
        let h = Hierarchy::new(MemConfig::isca2018());
        let mem = GuestMemory::new();
        let mut rng = StdRng::seed_from_u64(42);
        let token = Token::generate(width, &mut rng);
        (h, mem, token)
    }

    #[test]
    fn load_hit_takes_hit_latency() {
        let (mut h, mem, tok) = setup(TokenWidth::B64);
        let first = h.access_data(0, MemAccessKind::Load, 0x1000, 8, &mem, &tok, Mode::Secure);
        assert!(first.complete_at > 2); // miss
        let hit = h.access_data(
            first.complete_at,
            MemAccessKind::Load,
            0x1008,
            8,
            &mem,
            &tok,
            Mode::Secure,
        );
        assert_eq!(hit.complete_at, first.complete_at + 2);
        assert_eq!(hit.served_by, ServedBy::L1);
        assert_eq!(h.stats().l1d_hits, 1);
        assert_eq!(h.stats().l1d_misses, 1);
    }

    #[test]
    fn fill_detects_token_and_access_faults() {
        let (mut h, mut mem, tok) = setup(TokenWidth::B64);
        // Architecturally armed line at 0x2000 (token bytes in memory).
        mem.write_bytes(0x2000, tok.bytes());
        let out = h.access_data(0, MemAccessKind::Load, 0x2010, 8, &mem, &tok, Mode::Secure);
        assert_eq!(out.exception, Some(RestExceptionKind::TokenLoad));
        assert_eq!(h.stats().token_detections_on_fill, 1);
        assert_eq!(h.stats().rest_exceptions, 1);

        let out = h.access_data(100, MemAccessKind::Store, 0x2000, 8, &mem, &tok, Mode::Secure);
        assert_eq!(out.exception, Some(RestExceptionKind::TokenStore));
    }

    #[test]
    fn arm_sets_bit_and_disarm_clears_it() {
        let (mut h, mut mem, tok) = setup(TokenWidth::B64);
        let out = h.access_data(0, MemAccessKind::Arm, 0x3000, 64, &mem, &tok, Mode::Secure);
        assert!(out.exception.is_none());
        assert!(h.l1d().token_bit_covering(0x3000, 64));
        // The architectural arm effect (emulator's job in the full system).
        mem.write_bytes(0x3000, tok.bytes());

        // Load to the armed line faults without any refill. (Cycle 1000
        // is safely past the arm's fill.)
        let out = h.access_data(1000, MemAccessKind::Load, 0x3008, 8, &mem, &tok, Mode::Secure);
        assert_eq!(out.exception, Some(RestExceptionKind::TokenLoad));

        // Disarm clears and zeroes; costs one extra cycle over a hit.
        let out = h.access_data(1100, MemAccessKind::Disarm, 0x3000, 64, &mem, &tok, Mode::Secure);
        assert!(out.exception.is_none());
        assert_eq!(out.complete_at, 1100 + 2 + 1);
        assert!(!h.l1d().token_bit_covering(0x3000, 64));
        mem.fill(0x3000, 64, 0);

        let out = h.access_data(1200, MemAccessKind::Load, 0x3000, 8, &mem, &tok, Mode::Secure);
        assert!(out.exception.is_none());
    }

    #[test]
    fn disarm_of_unarmed_location_faults() {
        let (mut h, mem, tok) = setup(TokenWidth::B64);
        let out = h.access_data(0, MemAccessKind::Disarm, 0x4000, 64, &mem, &tok, Mode::Secure);
        assert_eq!(out.exception, Some(RestExceptionKind::DisarmUnarmed));
    }

    #[test]
    fn transient_token_value_in_resident_line_not_flagged_until_refill() {
        // §V-B condition 3: data acquiring the token value while already
        // in the L1-D raises nothing; after eviction + refill the
        // detector fires.
        let (mut h, mut mem, tok) = setup(TokenWidth::B64);
        // Make the line resident (zeroes).
        let out = h.access_data(0, MemAccessKind::Load, 0x5000, 8, &mem, &tok, Mode::Secure);
        assert!(out.exception.is_none());
        // A store functionally writes token-looking bytes.
        mem.write_bytes(0x5000, tok.bytes());
        let out = h.access_data(100, MemAccessKind::Store, 0x5000, 8, &mem, &tok, Mode::Secure);
        assert!(out.exception.is_none(), "resident line: no detection");
        // Evict and refill: detection fires now.
        h.l1d_invalidate_for_test(0x5000);
        let out = h.access_data(200, MemAccessKind::Load, 0x5000, 8, &mem, &tok, Mode::Secure);
        assert_eq!(out.exception, Some(RestExceptionKind::TokenLoad));
    }

    #[test]
    fn debug_mode_holds_load_on_partial_token_match() {
        let (mut h, mut mem, tok) = setup(TokenWidth::B64);
        // Line whose first 8 bytes equal the token's first 8 bytes but
        // the rest differs: partial critical-word match, full-line
        // mismatch.
        mem.write_bytes(0x6000, &tok.bytes()[..8]);
        let out = h.access_data(0, MemAccessKind::Load, 0x6000, 8, &mem, &tok, Mode::Debug);
        assert!(out.exception.is_none());
        assert!(out.held_for_check);
        assert_eq!(out.complete_at, out.line_checked_at);
        assert_eq!(h.stats().debug_load_holds, 1);

        // A non-matching load in debug mode is released immediately.
        let out = h.access_data(500, MemAccessKind::Load, 0x7000, 8, &mem, &tok, Mode::Debug);
        assert!(!out.held_for_check);
        assert!(out.complete_at < out.line_checked_at);
    }

    #[test]
    fn secure_mode_never_holds_loads() {
        let (mut h, mut mem, tok) = setup(TokenWidth::B64);
        mem.write_bytes(0x6000, &tok.bytes()[..8]);
        let out = h.access_data(0, MemAccessKind::Load, 0x6000, 8, &mem, &tok, Mode::Secure);
        assert!(!out.held_for_check);
        assert!(out.complete_at < out.line_checked_at);
    }

    #[test]
    fn narrow_tokens_arm_individual_slots() {
        let (mut h, mut mem, tok) = setup(TokenWidth::B16);
        h.access_data(0, MemAccessKind::Arm, 0x8010, 16, &mem, &tok, Mode::Secure);
        mem.write_bytes(0x8010, tok.bytes());
        // Slot 0 (0x8000..0x8010) is unarmed: loads fine.
        let out = h.access_data(50, MemAccessKind::Load, 0x8000, 8, &mem, &tok, Mode::Secure);
        assert!(out.exception.is_none());
        // Slot 1 armed: faults.
        let out = h.access_data(60, MemAccessKind::Load, 0x8010, 4, &mem, &tok, Mode::Secure);
        assert_eq!(out.exception, Some(RestExceptionKind::TokenLoad));
        // Straddling access from slot 0 into slot 1 faults too.
        let out = h.access_data(70, MemAccessKind::Load, 0x800c, 8, &mem, &tok, Mode::Secure);
        assert_eq!(out.exception, Some(RestExceptionKind::TokenStore).map(|_| RestExceptionKind::TokenLoad));
    }

    #[test]
    fn armed_line_eviction_counts_token_traffic() {
        let (mut h, mut mem, tok) = setup(TokenWidth::B64);
        h.access_data(0, MemAccessKind::Arm, 0x9000, 64, &mem, &tok, Mode::Secure);
        mem.write_bytes(0x9000, tok.bytes());
        // Thrash the set: L1D is 64kB 8-way => set stride 8 kB; touch 9
        // more lines mapping to the same set.
        let mut t = 100;
        for i in 1..=9u64 {
            let addr = 0x9000 + i * 8 * 1024;
            let out = h.access_data(t, MemAccessKind::Load, addr, 8, &mem, &tok, Mode::Secure);
            t = out.complete_at + 1;
        }
        assert!(h.stats().token_lines_evicted_l1d >= 1);
        // Refetch the armed line: detector re-arms it from content.
        let out = h.access_data(t + 10, MemAccessKind::Load, 0x9000, 8, &mem, &tok, Mode::Secure);
        assert_eq!(out.exception, Some(RestExceptionKind::TokenLoad));
    }

    #[test]
    fn instruction_fetches_hit_after_first_miss() {
        let (mut h, mem, tok) = setup(TokenWidth::B64);
        let t1 = h.fetch_inst(0, 0x1_0000, &mem, &tok);
        assert!(t1 > 2);
        let t2 = h.fetch_inst(t1, 0x1_0004, &mem, &tok);
        assert_eq!(t2, t1 + 2);
        assert_eq!(h.stats().l1i_misses, 1);
        assert_eq!(h.stats().l1i_hits, 1);
    }

    #[test]
    fn mshr_merge_serves_secondary_miss_with_primary_fill() {
        let (mut h, mem, tok) = setup(TokenWidth::B64);
        let a = h.access_data(0, MemAccessKind::Load, 0xa000, 8, &mem, &tok, Mode::Secure);
        // Same line, issued while the fill is in flight.
        let b = h.access_data(1, MemAccessKind::Load, 0xa020, 8, &mem, &tok, Mode::Secure);
        assert_eq!(b.complete_at, a.complete_at);
        assert_eq!(h.stats().l1d_misses, 2);
        assert_eq!(h.stats().l2_misses, 1, "merged miss must not re-access L2");
    }

    impl Hierarchy {
        /// Test hook: forcibly invalidate an L1-D line.
        fn l1d_invalidate_for_test(&mut self, addr: u64) {
            self.l1d.invalidate(addr);
        }
    }
}
