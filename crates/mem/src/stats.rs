/// Counters collected by the memory hierarchy.
///
/// Includes the REST-specific activity the paper reports in §VI-B prose:
/// token detections at the L1-D fill path and token-carrying lines
/// crossing the L2/memory interface (≈ 0.04 per kilo-instruction for
/// xalanc in the secure full configuration).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    pub l1i_hits: u64,
    pub l1i_misses: u64,
    pub l1d_hits: u64,
    pub l1d_misses: u64,
    pub l2_hits: u64,
    pub l2_misses: u64,
    pub dram_accesses: u64,
    pub l1d_writebacks: u64,
    pub l2_writebacks: u64,
    /// Fills into the L1-D in which the token detector found the token
    /// and set token bit(s).
    pub token_detections_on_fill: u64,
    /// Armed (token-bit) lines evicted from the L1-D, i.e. packets in
    /// which the token value was materialised on the way out.
    pub token_lines_evicted_l1d: u64,
    /// Token-carrying lines crossing the L2/memory interface in either
    /// direction (the paper's "tokens per kilo-instruction" statistic).
    pub token_lines_l2_mem: u64,
    /// Exceptions detected at the cache (token loads/stores, bad disarm).
    pub rest_exceptions: u64,
    /// Debug-mode loads held in the MSHR because the critical word
    /// partially matched the token.
    pub debug_load_holds: u64,
    /// Misses served by the §VIII dedicated token cache (0 unless that
    /// feature is enabled).
    pub token_cache_hits: u64,
}

impl MemStats {
    /// Number of counter fields. Consumers that enumerate the fields
    /// (the sink's `stats_map`, the merge test) assert against this so
    /// a new counter cannot be added without wiring it everywhere.
    pub const FIELD_COUNT: usize = 15;

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &MemStats) {
        self.l1i_hits += other.l1i_hits;
        self.l1i_misses += other.l1i_misses;
        self.l1d_hits += other.l1d_hits;
        self.l1d_misses += other.l1d_misses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.dram_accesses += other.dram_accesses;
        self.l1d_writebacks += other.l1d_writebacks;
        self.l2_writebacks += other.l2_writebacks;
        self.token_detections_on_fill += other.token_detections_on_fill;
        self.token_lines_evicted_l1d += other.token_lines_evicted_l1d;
        self.token_lines_l2_mem += other.token_lines_l2_mem;
        self.rest_exceptions += other.rest_exceptions;
        self.debug_load_holds += other.debug_load_holds;
        self.token_cache_hits += other.token_cache_hits;
    }

    /// L1-D hit rate over all data accesses.
    pub fn l1d_hit_rate(&self) -> f64 {
        let total = self.l1d_hits + self.l1d_misses;
        if total == 0 {
            0.0
        } else {
            self.l1d_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = MemStats {
            l1d_hits: 10,
            token_lines_l2_mem: 2,
            ..MemStats::default()
        };
        let b = MemStats {
            l1d_hits: 5,
            l1d_misses: 3,
            ..MemStats::default()
        };
        a.merge(&b);
        assert_eq!(a.l1d_hits, 15);
        assert_eq!(a.l1d_misses, 3);
        assert_eq!(a.token_lines_l2_mem, 2);
    }

    /// Exhaustiveness guard: adding a field to `MemStats` must fail
    /// this test (non-exhaustive destructuring is a compile error)
    /// until `merge` — and the field-count assertions in
    /// `rest-cpu`'s `stats_map` test — are updated to carry it.
    #[test]
    fn merge_covers_every_field() {
        // Compile-time: the destructuring below names every field.
        let MemStats {
            l1i_hits,
            l1i_misses,
            l1d_hits,
            l1d_misses,
            l2_hits,
            l2_misses,
            dram_accesses,
            l1d_writebacks,
            l2_writebacks,
            token_detections_on_fill,
            token_lines_evicted_l1d,
            token_lines_l2_mem,
            rest_exceptions,
            debug_load_holds,
            token_cache_hits,
        } = MemStats::default();
        let all = [
            l1i_hits,
            l1i_misses,
            l1d_hits,
            l1d_misses,
            l2_hits,
            l2_misses,
            dram_accesses,
            l1d_writebacks,
            l2_writebacks,
            token_detections_on_fill,
            token_lines_evicted_l1d,
            token_lines_l2_mem,
            rest_exceptions,
            debug_load_holds,
            token_cache_hits,
        ];
        assert_eq!(all.len(), MemStats::FIELD_COUNT);

        // Runtime: merging a block with a distinct value in every
        // field must propagate each one — a forgotten `+=` line in
        // `merge` shows up as a mismatched field here.
        let mut acc = MemStats::default();
        let probe = MemStats {
            l1i_hits: 1,
            l1i_misses: 2,
            l1d_hits: 3,
            l1d_misses: 4,
            l2_hits: 5,
            l2_misses: 6,
            dram_accesses: 7,
            l1d_writebacks: 8,
            l2_writebacks: 9,
            token_detections_on_fill: 10,
            token_lines_evicted_l1d: 11,
            token_lines_l2_mem: 12,
            rest_exceptions: 13,
            debug_load_holds: 14,
            token_cache_hits: 15,
        };
        acc.merge(&probe);
        assert_eq!(acc, probe, "MemStats::merge dropped a field");
        acc.merge(&probe);
        assert_eq!(acc.token_cache_hits, 30);
        assert_eq!(acc.l1i_hits, 2);
    }

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(MemStats::default().l1d_hit_rate(), 0.0);
        let s = MemStats {
            l1d_hits: 3,
            l1d_misses: 1,
            ..MemStats::default()
        };
        assert!((s.l1d_hit_rate() - 0.75).abs() < 1e-12);
    }
}
