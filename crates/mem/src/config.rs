/// Geometry and timing of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (64 throughout the paper).
    pub line_bytes: u64,
    /// Access latency in core cycles on a hit.
    pub hit_latency: u64,
    /// Number of outstanding line misses (miss-status holding registers).
    pub mshr_entries: usize,
    /// Secondary misses that can merge onto one MSHR entry.
    pub mshr_targets: usize,
    /// Write-buffer entries for outgoing writebacks (0 = none).
    pub write_buffer_entries: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible by
    /// `assoc * line_bytes`).
    pub fn sets(&self) -> usize {
        let denom = self.assoc as u64 * self.line_bytes;
        assert!(
            denom > 0 && self.size_bytes.is_multiple_of(denom),
            "inconsistent cache geometry"
        );
        (self.size_bytes / denom) as usize
    }

    /// The paper's L1 instruction cache: 64 kB, 8-way, 2 cycles,
    /// 4 MSHRs × 20 targets, no prefetch.
    pub fn isca2018_l1i() -> CacheConfig {
        CacheConfig {
            size_bytes: 64 * 1024,
            assoc: 8,
            line_bytes: 64,
            hit_latency: 2,
            mshr_entries: 4,
            mshr_targets: 20,
            write_buffer_entries: 0,
        }
    }

    /// The paper's L1 data cache: 64 kB, 8-way, 2 cycles, 8-entry write
    /// buffer, 4 MSHRs × 20 targets, no prefetch.
    pub fn isca2018_l1d() -> CacheConfig {
        CacheConfig {
            size_bytes: 64 * 1024,
            assoc: 8,
            line_bytes: 64,
            hit_latency: 2,
            mshr_entries: 4,
            mshr_targets: 20,
            write_buffer_entries: 8,
        }
    }

    /// The paper's unified L2: 2 MB, 16-way, 20 cycles, 8-entry write
    /// buffer, 20 MSHRs × 12 targets, no prefetch.
    pub fn isca2018_l2() -> CacheConfig {
        CacheConfig {
            size_bytes: 2 * 1024 * 1024,
            assoc: 16,
            line_bytes: 64,
            hit_latency: 20,
            mshr_entries: 20,
            mshr_targets: 12,
            write_buffer_entries: 8,
        }
    }
}

/// Timing of the DRAM channel (Table II: DDR3-800, 13.75 ns CAS and row
/// precharge, 35 ns RAS).
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Core clock in MHz (2000 in the paper) — DRAM nanosecond timings
    /// are converted to core cycles with this.
    pub core_mhz: u64,
    /// Column access strobe latency, ns.
    pub cas_ns: f64,
    /// Row precharge, ns.
    pub rp_ns: f64,
    /// Row access strobe (activate-to-precharge), ns; used as the
    /// activate component for a closed row.
    pub ras_ns: f64,
    /// Time to stream one 64-byte line over the DDR3-800 bus, ns
    /// (8 beats × 8 B at 800 MT/s = 10 ns).
    pub burst_ns: f64,
    /// Number of banks.
    pub banks: usize,
    /// Row size in bytes per bank (for open-row hit detection).
    pub row_bytes: u64,
}

impl DramConfig {
    /// The paper's DDR3-800 configuration at a 2 GHz core clock.
    pub fn isca2018() -> DramConfig {
        DramConfig {
            core_mhz: 2000,
            cas_ns: 13.75,
            rp_ns: 13.75,
            ras_ns: 35.0,
            burst_ns: 10.0,
            banks: 8,
            row_bytes: 8 * 1024,
        }
    }

    fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * self.core_mhz as f64 / 1000.0).ceil() as u64
    }

    /// Core cycles for a row-buffer hit (CAS + burst).
    pub fn row_hit_cycles(&self) -> u64 {
        self.ns_to_cycles(self.cas_ns + self.burst_ns)
    }

    /// Core cycles when the bank's row buffer is empty (activate + CAS +
    /// burst). We charge the activate component as `ras_ns - rp_ns`
    /// (RAS covers activate-to-precharge).
    pub fn row_empty_cycles(&self) -> u64 {
        self.ns_to_cycles((self.ras_ns - self.rp_ns).max(0.0) + self.cas_ns + self.burst_ns)
    }

    /// Core cycles for a row conflict (precharge + activate + CAS +
    /// burst).
    pub fn row_conflict_cycles(&self) -> u64 {
        self.ns_to_cycles(self.ras_ns + self.cas_ns + self.burst_ns)
    }
}

/// Complete memory-side configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    pub l1i: CacheConfig,
    pub l1d: CacheConfig,
    pub l2: CacheConfig,
    pub dram: DramConfig,
    /// §VIII future work: a small dedicated buffer for armed (token)
    /// lines evicted from the L1-D, so token refetches are served at
    /// near-L1 latency instead of from L2/DRAM. 0 = disabled (the
    /// paper's evaluated design).
    pub token_cache_entries: usize,
}

impl MemConfig {
    /// The full Table II memory-side configuration.
    pub fn isca2018() -> MemConfig {
        MemConfig {
            l1i: CacheConfig::isca2018_l1i(),
            l1d: CacheConfig::isca2018_l1d(),
            l2: CacheConfig::isca2018_l2(),
            dram: DramConfig::isca2018(),
            token_cache_entries: 0,
        }
    }

    /// A tiny configuration for unit tests that want to force evictions
    /// and misses with little traffic.
    pub fn tiny() -> MemConfig {
        MemConfig {
            l1i: CacheConfig {
                size_bytes: 1024,
                assoc: 2,
                line_bytes: 64,
                hit_latency: 1,
                mshr_entries: 2,
                mshr_targets: 4,
                write_buffer_entries: 0,
            },
            l1d: CacheConfig {
                size_bytes: 1024,
                assoc: 2,
                line_bytes: 64,
                hit_latency: 1,
                mshr_entries: 2,
                mshr_targets: 4,
                write_buffer_entries: 2,
            },
            l2: CacheConfig {
                size_bytes: 4096,
                assoc: 4,
                line_bytes: 64,
                hit_latency: 8,
                mshr_entries: 4,
                mshr_targets: 4,
                write_buffer_entries: 2,
            },
            dram: DramConfig::isca2018(),
            token_cache_entries: 0,
        }
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::isca2018()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isca_geometry_matches_table2() {
        let l1d = CacheConfig::isca2018_l1d();
        assert_eq!(l1d.sets(), 128); // 64kB / (8 * 64B)
        let l2 = CacheConfig::isca2018_l2();
        assert_eq!(l2.sets(), 2048); // 2MB / (16 * 64B)
        assert_eq!(l2.hit_latency, 20);
    }

    #[test]
    fn dram_latencies_are_ordered() {
        let d = DramConfig::isca2018();
        assert!(d.row_hit_cycles() < d.row_empty_cycles());
        assert!(d.row_empty_cycles() < d.row_conflict_cycles());
        // 13.75ns + 10ns at 2GHz = 47.5 cycles -> 48
        assert_eq!(d.row_hit_cycles(), 48);
        // (35-13.75) + 13.75 + 10 = 45ns -> 90
        assert_eq!(d.row_empty_cycles(), 90);
        // 35 + 13.75 + 10 = 58.75ns -> 118
        assert_eq!(d.row_conflict_cycles(), 118);
    }

    #[test]
    #[should_panic(expected = "inconsistent cache geometry")]
    fn bad_geometry_panics() {
        let c = CacheConfig {
            size_bytes: 1000,
            assoc: 3,
            line_bytes: 64,
            hit_latency: 1,
            mshr_entries: 1,
            mshr_targets: 1,
            write_buffer_entries: 0,
        };
        let _ = c.sets();
    }
}
