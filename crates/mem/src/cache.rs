use crate::config::CacheConfig;

/// One way (line frame) of a set.
#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    tag: u64,
    dirty: bool,
    /// LRU stamp (monotonic use counter).
    stamp: u64,
    /// REST token bits for the slots of this line (bit *i* = slot *i*).
    /// Only meaningful in the L1-D; other levels keep it zero.
    token_mask: u8,
}

/// A line evicted by a fill or invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Base address of the evicted line.
    pub addr: u64,
    /// Whether the line was dirty (requires a writeback).
    pub dirty: bool,
    /// Token bits the line carried. Non-zero means the outgoing packet
    /// must have the token value materialised into the armed slots
    /// (Table I, "Eviction" row) — arm never wrote the value into the
    /// data array.
    pub token_mask: u8,
}

/// A set-associative, write-back, write-allocate cache with true-LRU
/// replacement and per-line REST token bits.
///
/// Only tags and metadata are stored; data lives in the functional guest
/// memory. This is the standard timing/functional split and is what lets
/// the token detector compare genuine line contents at fill time.
///
/// # Example
///
/// ```
/// use rest_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::isca2018_l1d(), "L1D");
/// assert!(!c.lookup(0x1000, false));      // cold miss
/// c.fill(0x1000, false, 0);
/// assert!(c.lookup(0x1000, false));       // now hits
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    next_stamp: u64,
    name: &'static str,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig, name: &'static str) -> Cache {
        let sets = vec![vec![Way::default(); cfg.assoc]; cfg.sets()];
        Cache {
            cfg,
            sets,
            next_stamp: 0,
            name,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Human-readable name (e.g. `"L1D"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Base address of the line containing `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes - 1)
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr / self.cfg.line_bytes) % self.sets.len() as u64) as usize
    }

    fn tag(&self, addr: u64) -> u64 {
        addr / self.cfg.line_bytes / self.sets.len() as u64
    }

    fn bump(&mut self) -> u64 {
        self.next_stamp += 1;
        self.next_stamp
    }

    fn find(&self, addr: u64) -> Option<(usize, usize)> {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        self.sets[set]
            .iter()
            .position(|w| w.valid && w.tag == tag)
            .map(|way| (set, way))
    }

    /// Looks up `addr`, updating LRU state. Marks the line dirty when
    /// `is_write`. Returns whether the access hit.
    pub fn lookup(&mut self, addr: u64, is_write: bool) -> bool {
        let stamp = self.bump();
        match self.find(addr) {
            Some((set, way)) => {
                let w = &mut self.sets[set][way];
                w.stamp = stamp;
                if is_write {
                    w.dirty = true;
                }
                true
            }
            None => false,
        }
    }

    /// Whether `addr`'s line is resident, without touching LRU state.
    pub fn probe(&self, addr: u64) -> bool {
        self.find(addr).is_some()
    }

    /// Token bits of `addr`'s line, or `None` if not resident.
    pub fn token_mask(&self, addr: u64) -> Option<u8> {
        self.find(addr).map(|(s, w)| self.sets[s][w].token_mask)
    }

    /// Whether the token bit covering `addr` (given `slot_bytes`-wide
    /// slots) is set. `false` when the line is absent.
    pub fn token_bit_covering(&self, addr: u64, slot_bytes: u64) -> bool {
        match self.find(addr) {
            Some((s, w)) => {
                let slot = (addr % self.cfg.line_bytes) / slot_bytes;
                self.sets[s][w].token_mask & (1u8 << slot) != 0
            }
            None => false,
        }
    }

    /// Whether any byte of `[addr, addr+size)` lies in an armed slot of a
    /// resident line. Walks every slot the access overlaps, so wide
    /// accesses that straddle a slot — or a cache-line — boundary check
    /// each covered slot in whichever line holds it.
    pub fn access_touches_token(&self, addr: u64, size: u64, slot_bytes: u64) -> bool {
        let last = addr + size.max(1) - 1;
        let mut slot = addr - addr % slot_bytes;
        while slot <= last {
            if self.token_bit_covering(slot, slot_bytes) {
                return true;
            }
            slot += slot_bytes;
        }
        false
    }

    /// ORs `mask` into the token bits of `addr`'s line.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident (callers fill first).
    pub fn set_token_bits(&mut self, addr: u64, mask: u8) {
        let (s, w) = self
            .find(addr)
            .unwrap_or_else(|| panic!("{}: set_token_bits on absent line {addr:#x}", self.name));
        self.sets[s][w].token_mask |= mask;
    }

    /// Clears the token bit for the slot containing `addr` and marks the
    /// line dirty (the disarm zeroes the slot in the data array).
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn clear_token_bit(&mut self, addr: u64, slot_bytes: u64) {
        let (s, w) = self
            .find(addr)
            .unwrap_or_else(|| panic!("{}: clear_token_bit on absent line {addr:#x}", self.name));
        let slot = (addr % self.cfg.line_bytes) / slot_bytes;
        self.sets[s][w].token_mask &= !(1u8 << slot);
        self.sets[s][w].dirty = true;
    }

    /// Marks `addr`'s resident line dirty (e.g. the arm's lazy value
    /// write obligation).
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn mark_dirty(&mut self, addr: u64) {
        let (s, w) = self
            .find(addr)
            .unwrap_or_else(|| panic!("{}: mark_dirty on absent line {addr:#x}", self.name));
        self.sets[s][w].dirty = true;
    }

    /// Installs `addr`'s line (write-allocate fill), evicting the LRU way
    /// if the set is full. `token_mask` carries the detector's result for
    /// the incoming data. Returns the evicted line, if any.
    pub fn fill(&mut self, addr: u64, dirty: bool, token_mask: u8) -> Option<EvictedLine> {
        if let Some((s, w)) = self.find(addr) {
            // Refill of a resident line (e.g. upgrade); merge state.
            let stamp = self.bump();
            let way = &mut self.sets[s][w];
            way.stamp = stamp;
            way.dirty |= dirty;
            way.token_mask |= token_mask;
            return None;
        }
        let stamp = self.bump();
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let line_bytes = self.cfg.line_bytes;
        let sets_len = self.sets.len() as u64;
        let ways = &mut self.sets[set];
        // Choose an invalid way, else the LRU way.
        let victim = match ways.iter().position(|w| !w.valid) {
            Some(i) => i,
            None => {
                let (i, _) = ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.stamp)
                    .expect("associativity is at least 1");
                i
            }
        };
        let evicted = if ways[victim].valid {
            let old = ways[victim];
            let old_addr = (old.tag * sets_len + set as u64) * line_bytes;
            Some(EvictedLine {
                addr: old_addr,
                dirty: old.dirty,
                token_mask: old.token_mask,
            })
        } else {
            None
        };
        ways[victim] = Way {
            valid: true,
            tag,
            dirty,
            stamp,
            token_mask,
        };
        evicted
    }

    /// Invalidates `addr`'s line, returning its state if it was resident.
    pub fn invalidate(&mut self, addr: u64) -> Option<EvictedLine> {
        let (s, w) = self.find(addr)?;
        let way = self.sets[s][w];
        self.sets[s][w] = Way::default();
        Some(EvictedLine {
            addr: self.line_addr(addr),
            dirty: way.dirty,
            token_mask: way.token_mask,
        })
    }

    /// Number of valid lines (for occupancy assertions in tests).
    pub fn resident_lines(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|w| w.valid)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemConfig;

    fn tiny() -> Cache {
        Cache::new(MemConfig::tiny().l1d, "L1D")
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.lookup(0x1000, false));
        assert!(c.fill(0x1000, false, 0).is_none());
        assert!(c.lookup(0x1000, false));
        assert!(c.lookup(0x103f, false)); // same line
        assert!(!c.lookup(0x1040, false)); // next line
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny(); // 2-way, 8 sets, 64B lines => set stride 512
        let a = 0x0000u64;
        let b = a + 512; // same set
        let d = a + 1024; // same set
        c.fill(a, false, 0);
        c.fill(b, false, 0);
        c.lookup(a, false); // a is now MRU
        let ev = c.fill(d, false, 0).expect("must evict");
        assert_eq!(ev.addr, b);
        assert!(c.probe(a) && c.probe(d) && !c.probe(b));
    }

    #[test]
    fn dirty_state_tracks_writes_and_travels_on_eviction() {
        let mut c = tiny();
        c.fill(0x0, false, 0);
        c.lookup(0x8, true); // write dirties the line
        c.fill(512, false, 0);
        let ev = c.fill(1024, false, 0).unwrap();
        assert_eq!(ev.addr, 0x0);
        assert!(ev.dirty);
    }

    #[test]
    fn token_bits_per_slot() {
        let mut c = tiny();
        c.fill(0x1000, false, 0);
        // 16-byte slots: 4 per line.
        c.set_token_bits(0x1000, 0b0001);
        c.set_token_bits(0x1000, 0b0100);
        assert_eq!(c.token_mask(0x1000), Some(0b0101));
        assert!(c.token_bit_covering(0x1000, 16));
        assert!(!c.token_bit_covering(0x1010, 16));
        assert!(c.token_bit_covering(0x1020, 16));
        c.clear_token_bit(0x1020, 16);
        assert_eq!(c.token_mask(0x1000), Some(0b0001));
    }

    #[test]
    fn access_touching_armed_slot_detected_across_slot_boundary() {
        let mut c = tiny();
        c.fill(0x1000, false, 0b0010); // slot 1 (0x1010..0x1020) armed, 16B slots
        // 8-byte access straddling slot 0 into slot 1.
        assert!(c.access_touches_token(0x100c, 8, 16));
        assert!(!c.access_touches_token(0x1000, 8, 16));
        assert!(c.access_touches_token(0x101f, 1, 16));
        assert!(!c.access_touches_token(0x1020, 1, 16));
    }

    #[test]
    fn access_touching_armed_slot_detected_across_line_boundary() {
        let mut c = tiny();
        // Line 0x1000: slot 3 (0x1030..0x1040) armed; line 0x1040 clean.
        c.fill(0x1000, false, 0b1000);
        c.fill(0x1040, false, 0);
        // A 32-byte access spanning both lines whose first and last bytes
        // land in clean slots but whose interior covers the armed slot.
        assert!(c.access_touches_token(0x1028, 32, 16));
        // The same span one line later touches nothing.
        assert!(!c.access_touches_token(0x1068, 32, 16));
        // A line-straddling access whose *last* slot is the armed one.
        c.fill(0x1080, false, 0);
        c.fill(0x10c0, false, 0b0001);
        assert!(c.access_touches_token(0x10b8, 16, 16));
        assert!(!c.access_touches_token(0x10a8, 16, 16));
        // Wide access fully inside one line with only an interior armed
        // slot (first/last slots clean).
        assert!(c.access_touches_token(0x1000, 64, 16));
    }

    #[test]
    fn eviction_reports_token_mask_for_lazy_value_write() {
        let mut c = tiny();
        c.fill(0x0, false, 0);
        c.set_token_bits(0x0, 0b1);
        c.mark_dirty(0x0);
        c.fill(512, false, 0);
        let ev = c.fill(1024, false, 0).unwrap();
        assert_eq!(ev.token_mask, 0b1);
        assert!(ev.dirty);
    }

    #[test]
    fn refill_of_resident_line_merges_state() {
        let mut c = tiny();
        c.fill(0x40, false, 0);
        assert!(c.fill(0x40, true, 0b10).is_none());
        assert_eq!(c.token_mask(0x40), Some(0b10));
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(0x80, true, 0b1);
        let ev = c.invalidate(0x80).unwrap();
        assert_eq!(ev.addr, 0x80);
        assert!(ev.dirty);
        assert_eq!(ev.token_mask, 0b1);
        assert!(!c.probe(0x80));
        assert!(c.invalidate(0x80).is_none());
    }

    #[test]
    fn isca_l1d_holds_1024_lines() {
        let mut c = Cache::new(CacheConfig::isca2018_l1d(), "L1D");
        for i in 0..1024u64 {
            c.fill(i * 64, false, 0);
        }
        assert_eq!(c.resident_lines(), 1024);
        // 1025th line must evict.
        assert!(c.fill(1024 * 64, false, 0).is_some());
    }
}
