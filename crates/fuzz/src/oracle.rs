//! Tri-oracle differential judge for generated cases.
//!
//! Each case is run through three independent oracles:
//!
//! 1. **restlint** — `rest_verify::verify_program` static must-trap
//!    verdicts (plus Error-severity discipline findings);
//! 2. **functional emulation** — all three [`ExecTier`]s (reference
//!    decode, decoded-uop cache, superblock traces), compared in full
//!    on stop reason, program output, and retired-instruction count;
//! 3. **the timing path** — `System::run`, compared against the
//!    functional result.
//!
//! The observed behaviour is then judged against the generator's
//! [`GroundTruth`], and every case lands in exactly one [`Class`].
//! A class is *explained* when the oracles agree with each other and
//! with ground truth (including REST's by-design fail-open misses);
//! everything else is an *unexplained* disagreement the campaign gates
//! on.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::gen::{lower, BugKind, Case, GroundTruth};
use rest_cpu::{Emulator, ExecEngine, ExecTier, SimConfig, StopReason, System};
use rest_runtime::RtConfig;
use rest_verify::{verify_program, Severity};

/// Final judgement for one case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Class {
    /// Clean ground truth; all oracles report a clean run.
    AgreeClean,
    /// Injected must-detect bug; runtime traps and restlint proves it.
    AgreeDetected,
    /// Padding-gap read: dynamically silent (reads zeroed padding),
    /// statically a warning — REST's documented fail-open gap.
    KnownMissPaddingGap,
    /// Uninitialized in-bounds read: REST zeroes fresh chunks, so the
    /// read silently returns 0 — fail-open by design.
    KnownMissUninitRead,
    /// Guest arm leaked at exit: runtime is clean, restlint flags the
    /// imbalance — blacklisted memory leaked, not a trap.
    KnownMissArmLeak,
    /// The three execution tiers disagreed among themselves.
    TierDivergence,
    /// The timing path disagreed with the functional result.
    TimingDivergence,
    /// restlint claimed a guaranteed trap but the run completed clean.
    StaticUnsound,
    /// restlint reported must-trap or Error findings on a case whose
    /// runtime behaviour (and ground truth) is clean.
    StaticFalsePositive,
    /// Runtime detected an injected bug restlint failed to prove.
    StaticMiss,
    /// An injected must-detect bug ran to completion undetected.
    MissedDetection,
    /// A clean program stopped with a violation.
    FalseDetection,
    /// A known-miss bug was unexpectedly detected at runtime.
    UnexpectedDetection,
    /// An oracle panicked; the harness itself failed on this case.
    HarnessError,
}

impl Class {
    /// Stable kebab-case name used in signatures and `fuzz.json`.
    pub fn name(self) -> &'static str {
        match self {
            Class::AgreeClean => "agree-clean",
            Class::AgreeDetected => "agree-detected",
            Class::KnownMissPaddingGap => "known-miss-padding-gap",
            Class::KnownMissUninitRead => "known-miss-uninit-read",
            Class::KnownMissArmLeak => "known-miss-arm-leak",
            Class::TierDivergence => "tier-divergence",
            Class::TimingDivergence => "timing-divergence",
            Class::StaticUnsound => "static-unsound",
            Class::StaticFalsePositive => "static-false-positive",
            Class::StaticMiss => "static-miss",
            Class::MissedDetection => "missed-detection",
            Class::FalseDetection => "false-detection",
            Class::UnexpectedDetection => "unexpected-detection",
            Class::HarnessError => "harness-error",
        }
    }

    /// Parses a [`Class::name`] string back (checkpoint round trips).
    pub fn from_name(name: &str) -> Option<Class> {
        Class::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// Whether the case is fully explained (oracles agree with ground
    /// truth); unexplained classes gate the campaign.
    pub fn is_explained(self) -> bool {
        matches!(
            self,
            Class::AgreeClean
                | Class::AgreeDetected
                | Class::KnownMissPaddingGap
                | Class::KnownMissUninitRead
                | Class::KnownMissArmLeak
        )
    }

    /// All classes, in report order.
    pub const ALL: [Class; 14] = [
        Class::AgreeClean,
        Class::AgreeDetected,
        Class::KnownMissPaddingGap,
        Class::KnownMissUninitRead,
        Class::KnownMissArmLeak,
        Class::TierDivergence,
        Class::TimingDivergence,
        Class::StaticUnsound,
        Class::StaticFalsePositive,
        Class::StaticMiss,
        Class::MissedDetection,
        Class::FalseDetection,
        Class::UnexpectedDetection,
        Class::HarnessError,
    ];
}

/// Everything the oracles observed about one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseRecord {
    /// The judgement.
    pub class: Class,
    /// Stop reason of the reference functional run (`exit-0`,
    /// `violation`, …).
    pub stop: String,
    /// Violation / divergence detail, empty for clean runs.
    pub detail: String,
    /// Whether the runtime oracle detected a violation.
    pub detected: bool,
    /// Whether restlint proved a guaranteed trap.
    pub musttrap: bool,
    /// restlint findings at Error severity or above.
    pub static_errors: u64,
    /// All restlint findings (warnings included).
    pub static_findings: u64,
    /// Program output bytes of the reference run.
    pub output: Vec<u8>,
    /// Macro instructions retired by the reference run.
    pub insts: u64,
    /// Timing-path cycles (0 if the run never reached the timing oracle).
    pub cycles: u64,
}

/// One functional run's comparable surface.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FnRun {
    stop: String,
    detail: String,
    detected: bool,
    output: Vec<u8>,
    insts: u64,
}

fn stop_label(stop: &StopReason) -> (String, String) {
    match stop {
        StopReason::Exit(0) => ("exit-0".to_string(), String::new()),
        StopReason::Exit(code) => (format!("exit-{code}"), String::new()),
        StopReason::Halted => ("halted".to_string(), String::new()),
        StopReason::Violation(v) => ("violation".to_string(), v.to_string()),
        StopReason::UopLimit => ("uop-limit".to_string(), String::new()),
        StopReason::CycleLimit => ("cycle-limit".to_string(), String::new()),
        StopReason::Fault(f) => ("guest-fault".to_string(), f.clone()),
    }
}

fn functional_run(case: &Case, rt: &RtConfig, tier: ExecTier) -> FnRun {
    let program = lower(case);
    let mut cfg = SimConfig::isca2018(rt.clone());
    cfg.tier = tier;
    let mut emu = Emulator::new(program, &cfg);
    emu.run_functional();
    let insts = emu.insts();
    let stop = emu.take_stop().expect("run_functional stops");
    let deferred = emu.take_deferred().is_some();
    let detected = matches!(stop, StopReason::Violation(_)) || deferred;
    let (stop, detail) = stop_label(&stop);
    FnRun {
        stop,
        detail,
        detected,
        output: emu.runtime().output().to_vec(),
        insts,
    }
}

/// Runs all three oracles on `case` and classifies the outcome.
///
/// Never panics: oracle panics are caught and classified as
/// [`Class::HarnessError`].
pub fn run_case(case: &Case, rt: &RtConfig) -> CaseRecord {
    match catch_unwind(AssertUnwindSafe(|| run_case_inner(case, rt))) {
        Ok(record) => record,
        Err(panic) => {
            let detail = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "opaque panic".to_string());
            CaseRecord {
                class: Class::HarnessError,
                stop: "panic".to_string(),
                detail,
                detected: false,
                musttrap: false,
                static_errors: 0,
                static_findings: 0,
                output: Vec::new(),
                insts: 0,
                cycles: 0,
            }
        }
    }
}

fn run_case_inner(case: &Case, rt: &RtConfig) -> CaseRecord {
    // Oracle 1: restlint.
    let program = lower(case);
    let lint = verify_program(&program);
    let musttrap = lint.has_must_trap();
    let static_errors = lint.at_least(Severity::Error).count() as u64;
    let static_findings = lint.findings.len() as u64;

    // Oracle 2: functional emulation at every tier.
    let tiers = [ExecTier::Reference, ExecTier::Fast, ExecTier::Trace];
    let runs: Vec<FnRun> = tiers.iter().map(|&t| functional_run(case, rt, t)).collect();
    let reference = runs[0].clone();
    let tier_divergence = runs.iter().enumerate().skip(1).find_map(|(i, run)| {
        (*run != reference).then(|| {
            format!(
                "{:?} vs Reference: stop {} vs {}, insts {} vs {}, output {} vs {} bytes",
                tiers[i], run.stop, reference.stop, run.insts, reference.insts,
                run.output.len(), reference.output.len(),
            )
        })
    });

    // Oracle 3: the timing path.
    let mut cfg = SimConfig::isca2018(rt.clone());
    cfg.tier = ExecTier::Fast;
    let timing = System::new(lower(case), cfg).run();
    let (timing_stop, _) = stop_label(&timing.stop);
    let timing_divergence = if timing_stop != reference.stop
        || timing.output != reference.output
        || timing.core.insts != reference.insts
    {
        Some(format!(
            "timing vs functional: stop {} vs {}, insts {} vs {}, output {} vs {} bytes",
            timing_stop, reference.stop, timing.core.insts, reference.insts,
            timing.output.len(), reference.output.len(),
        ))
    } else {
        None
    };

    let detected = reference.detected;
    let mut detail = reference.detail.clone();
    let class = if let Some(d) = tier_divergence {
        detail = d;
        Class::TierDivergence
    } else if let Some(d) = timing_divergence {
        detail = d;
        Class::TimingDivergence
    } else {
        classify(case.truth, detected, musttrap, static_errors)
    };

    CaseRecord {
        class,
        stop: reference.stop,
        detail,
        detected,
        musttrap,
        static_errors,
        static_findings,
        output: reference.output,
        insts: reference.insts,
        cycles: timing.core.cycles,
    }
}

/// Ground-truth-vs-oracle judgement once the execution oracles agree.
fn classify(truth: GroundTruth, detected: bool, musttrap: bool, static_errors: u64) -> Class {
    match truth {
        GroundTruth::Clean => {
            if detected {
                Class::FalseDetection
            } else if musttrap {
                Class::StaticUnsound
            } else if static_errors > 0 {
                Class::StaticFalsePositive
            } else {
                Class::AgreeClean
            }
        }
        GroundTruth::Detect(_) => {
            if !detected {
                Class::MissedDetection
            } else if !musttrap {
                Class::StaticMiss
            } else {
                Class::AgreeDetected
            }
        }
        GroundTruth::Miss(bug) => {
            if detected {
                Class::UnexpectedDetection
            } else if musttrap {
                Class::StaticUnsound
            } else if static_errors > 0 && bug != BugKind::ArmImbalance {
                // An arm leak is *supposed* to be statically flagged;
                // Error findings on other known-miss shapes are lint
                // false positives.
                Class::StaticFalsePositive
            } else {
                match bug {
                    BugKind::PaddingGap => Class::KnownMissPaddingGap,
                    BugKind::UninitRead => Class::KnownMissUninitRead,
                    _ => Class::KnownMissArmLeak,
                }
            }
        }
    }
}

/// The protection configuration campaigns run under: REST secure mode
/// with stack protection — the paper's full-protection design point.
pub fn campaign_rt() -> RtConfig {
    RtConfig::from_label("rest-secure-full").expect("rest-secure-full label")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{CaseStream, TraceOp};

    fn case(ops: Vec<TraceOp>, truth: GroundTruth) -> Case {
        Case { index: 0, ops, truth }
    }

    #[test]
    fn handcrafted_cases_hit_expected_classes() {
        let rt = campaign_rt();
        let m = |size| TraceOp::Malloc { slot: 3, size };

        let clean = case(
            vec![
                m(100),
                TraceOp::Store { slot: 3, off: 0, width: 8, val: 7 },
                TraceOp::Load { slot: 3, off: 0, width: 8, emit: true },
            ],
            GroundTruth::Clean,
        );
        assert_eq!(run_case(&clean, &rt).class, Class::AgreeClean);

        let oob = case(
            vec![m(100), TraceOp::Store { slot: 3, off: 128, width: 1, val: 1 }],
            GroundTruth::Detect(BugKind::OobWrite),
        );
        let rec = run_case(&oob, &rt);
        assert_eq!(rec.class, Class::AgreeDetected, "oob: {rec:?}");
        assert_eq!(rec.stop, "violation");

        let left_oob = case(
            vec![m(64), TraceOp::Load { slot: 3, off: -8, width: 8, emit: false }],
            GroundTruth::Detect(BugKind::OobRead),
        );
        assert_eq!(run_case(&left_oob, &rt).class, Class::AgreeDetected);

        let uaf = case(
            vec![m(64), TraceOp::Free { slot: 3 }, TraceOp::Load { slot: 3, off: 0, width: 8, emit: false }],
            GroundTruth::Detect(BugKind::UseAfterFree),
        );
        assert_eq!(run_case(&uaf, &rt).class, Class::AgreeDetected);

        let dfree = case(
            vec![m(64), TraceOp::Free { slot: 3 }, TraceOp::Free { slot: 3 }],
            GroundTruth::Detect(BugKind::DoubleFree),
        );
        assert_eq!(run_case(&dfree, &rt).class, Class::AgreeDetected);

        let gap = case(
            vec![m(100), TraceOp::Load { slot: 3, off: 110, width: 1, emit: true }],
            GroundTruth::Miss(BugKind::PaddingGap),
        );
        let rec = run_case(&gap, &rt);
        assert_eq!(rec.class, Class::KnownMissPaddingGap, "gap: {rec:?}");
        assert_eq!(rec.output, vec![0], "padding reads zero");

        let uninit = case(
            vec![m(100), TraceOp::Load { slot: 3, off: 16, width: 8, emit: true }],
            GroundTruth::Miss(BugKind::UninitRead),
        );
        assert_eq!(run_case(&uninit, &rt).class, Class::KnownMissUninitRead);

        let leak = case(
            vec![m(100), TraceOp::Arm { slot: 3 }],
            GroundTruth::Miss(BugKind::ArmImbalance),
        );
        let rec = run_case(&leak, &rt);
        assert_eq!(rec.class, Class::KnownMissArmLeak, "leak: {rec:?}");
        assert!(rec.static_findings > 0, "arm leak is statically flagged");
    }

    #[test]
    fn mislabeled_truth_is_flagged_not_explained() {
        let rt = campaign_rt();
        // A clean program labelled as a detectable bug -> missed detection.
        let fake = case(
            vec![TraceOp::Malloc { slot: 3, size: 64 }],
            GroundTruth::Detect(BugKind::OobRead),
        );
        assert_eq!(run_case(&fake, &rt).class, Class::MissedDetection);
        // A trapping program labelled clean -> false detection.
        let fake = case(
            vec![
                TraceOp::Malloc { slot: 3, size: 64 },
                TraceOp::Load { slot: 3, off: 64, width: 8, emit: false },
            ],
            GroundTruth::Clean,
        );
        assert_eq!(run_case(&fake, &rt).class, Class::FalseDetection);
    }

    #[test]
    fn class_names_round_trip() {
        for class in Class::ALL {
            assert_eq!(Class::from_name(class.name()), Some(class));
        }
        assert_eq!(Class::from_name("nope"), None);
    }

    #[test]
    fn generated_stream_is_fully_explained() {
        // The tri-oracle agreement property on a real slice of the
        // default stream; the campaign gate enforces this at 10k scale.
        let rt = campaign_rt();
        let mut stream = CaseStream::new(0xF0CC_5EED);
        for _ in 0..60 {
            let case = stream.next_case();
            let rec = run_case(&case, &rt);
            assert!(
                rec.class.is_explained(),
                "case {} truth {:?} class {:?}: {}",
                case.index,
                case.truth,
                rec.class,
                rec.detail
            );
        }
    }

    #[test]
    fn records_are_deterministic() {
        let rt = campaign_rt();
        let mut a = CaseStream::new(9);
        let mut b = CaseStream::new(9);
        for _ in 0..10 {
            assert_eq!(run_case(&a.next_case(), &rt), run_case(&b.next_case(), &rt));
        }
    }
}
