//! 1-minimal reproducer shrinking.
//!
//! Given a case whose oracle class is interesting (any class — the
//! campaign minimizes one exemplar per signature), the minimizer
//! deterministically shrinks the trace while preserving the class:
//! suffix truncation, single-op deletion, and constant shrinking, run
//! to a fixpoint. The result is 1-minimal with respect to op deletion:
//! removing any single remaining op changes the oracle class. Because
//! every pass is deterministic and the oracle is deterministic, the
//! same input always shrinks to the byte-identical reproducer, and
//! minimizing a minimized case is a no-op.

use crate::gen::{Case, TraceOp};
use crate::oracle::run_case;
use rest_runtime::RtConfig;

/// Candidate ladder for shrinking one numeric constant: try 1, half,
/// and decrement — strictly smaller values only.
fn shrink_ladder(v: u64) -> Vec<u64> {
    let mut out = Vec::new();
    for candidate in [1, v / 2, v.saturating_sub(1)] {
        if candidate < v && candidate >= 1 && !out.contains(&candidate) {
            out.push(candidate);
        }
    }
    out
}

/// Per-op constant-shrink candidates, smallest-first.
fn shrink_op(op: &TraceOp) -> Vec<TraceOp> {
    match *op {
        TraceOp::Malloc { slot, size } => shrink_ladder(size)
            .into_iter()
            .map(|size| TraceOp::Malloc { slot, size })
            .collect(),
        TraceOp::Store { slot, off, width, val } => {
            let mut out: Vec<TraceOp> = shrink_ladder(off.unsigned_abs())
                .into_iter()
                .map(|o| TraceOp::Store { slot, off: (o as i64) * off.signum(), width, val })
                .collect();
            if val > 0 {
                out.push(TraceOp::Store { slot, off, width, val: 0 });
            }
            out
        }
        TraceOp::Load { slot, off, width, emit } => shrink_ladder(off.unsigned_abs())
            .into_iter()
            .map(|o| TraceOp::Load { slot, off: (o as i64) * off.signum(), width, emit })
            .collect(),
        TraceOp::Hash { slot, len } => shrink_ladder(len)
            .into_iter()
            .map(|len| TraceOp::Hash { slot, len })
            .collect(),
        TraceOp::Free { .. } | TraceOp::Arm { .. } => Vec::new(),
    }
}

/// Shrinks `case` to a 1-minimal reproducer of its oracle class.
///
/// The returned case keeps the original index and ground-truth label
/// (provenance), but its op list is the smallest the deterministic
/// passes reach. The target class is the *current* class of `case`
/// under `rt`, so minimizing an already-minimal case is the identity.
pub fn minimize(case: &Case, rt: &RtConfig) -> Case {
    let target = run_case(case, rt).class;
    let mut best = case.clone();

    let keeps_class = |ops: &[TraceOp], base: &Case| {
        let candidate = Case {
            index: base.index,
            ops: ops.to_vec(),
            truth: base.truth,
        };
        (run_case(&candidate, rt).class == target).then_some(candidate)
    };

    loop {
        let before = best.ops.clone();

        // Pass 1: suffix truncation — largest cut first.
        let mut keep = 1;
        while keep < best.ops.len() {
            if let Some(smaller) = keeps_class(&best.ops[..keep], &best) {
                best = smaller;
                break;
            }
            keep += 1;
        }

        // Pass 2: single-op deletion, last-to-first (later ops are more
        // likely to be the trailing bug ops we must keep, but earlier
        // benign ops usually delete — reverse order keeps indices valid).
        let mut i = best.ops.len();
        while i > 0 {
            i -= 1;
            let mut ops = best.ops.clone();
            ops.remove(i);
            if let Some(smaller) = keeps_class(&ops, &best) {
                best = smaller;
            }
        }

        // Pass 3: constant shrinking, per op, smallest candidate first.
        for i in 0..best.ops.len() {
            for replacement in shrink_op(&best.ops[i]) {
                let mut ops = best.ops.clone();
                ops[i] = replacement;
                if let Some(smaller) = keeps_class(&ops, &best) {
                    best = smaller;
                    break;
                }
            }
        }

        if best.ops == before {
            return best;
        }
    }
}

/// True when removing any single op from `case` changes its class —
/// the 1-minimality property [`minimize`] guarantees.
pub fn is_one_minimal(case: &Case, rt: &RtConfig) -> bool {
    let target = run_case(case, rt).class;
    (0..case.ops.len()).all(|i| {
        let mut ops = case.ops.clone();
        ops.remove(i);
        let candidate = Case {
            index: case.index,
            ops,
            truth: case.truth,
        };
        run_case(&candidate, rt).class != target
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{BugKind, CaseStream, GroundTruth};
    use crate::oracle::{campaign_rt, Class};

    /// A synthetic disagreement: benign noise followed by a detectable
    /// OOB write the minimizer must isolate.
    fn noisy_oob() -> Case {
        Case {
            index: 17,
            ops: vec![
                TraceOp::Malloc { slot: 0, size: 200 },
                TraceOp::Store { slot: 0, off: 0, width: 8, val: 42 },
                TraceOp::Load { slot: 0, off: 0, width: 8, emit: true },
                TraceOp::Hash { slot: 0, len: 8 },
                TraceOp::Malloc { slot: 3, size: 100 },
                TraceOp::Store { slot: 3, off: 130, width: 2, val: 9 },
            ],
            truth: GroundTruth::Detect(BugKind::OobWrite),
        }
    }

    #[test]
    fn shrinks_to_one_minimal_reproducer() {
        let rt = campaign_rt();
        let case = noisy_oob();
        assert_eq!(run_case(&case, &rt).class, Class::AgreeDetected);
        let min = minimize(&case, &rt);
        assert_eq!(run_case(&min, &rt).class, Class::AgreeDetected);
        // The benign noise is gone: just the allocation and the bad store.
        assert_eq!(min.ops.len(), 2, "minimized ops: {:?}", min.ops);
        assert!(is_one_minimal(&min, &rt));
        // Provenance survives.
        assert_eq!(min.index, 17);
        assert_eq!(min.truth, GroundTruth::Detect(BugKind::OobWrite));
    }

    #[test]
    fn minimization_is_idempotent_and_deterministic() {
        let rt = campaign_rt();
        let case = noisy_oob();
        let once = minimize(&case, &rt);
        let twice = minimize(&once, &rt);
        assert_eq!(once, twice, "minimize(minimize(x)) == minimize(x)");
        let again = minimize(&case, &rt);
        assert_eq!(once, again, "same input, same reproducer");
    }

    #[test]
    fn minimizes_generated_bugs_without_losing_class() {
        let rt = campaign_rt();
        let mut stream = CaseStream::new(0xBEEF);
        let mut shrunk_any = false;
        let mut checked = 0;
        while checked < 6 {
            let case = stream.next_case();
            if case.truth == GroundTruth::Clean {
                continue;
            }
            checked += 1;
            let class = run_case(&case, &rt).class;
            let min = minimize(&case, &rt);
            assert_eq!(run_case(&min, &rt).class, class);
            assert!(min.ops.len() <= case.ops.len());
            assert!(is_one_minimal(&min, &rt));
            shrunk_any |= min.ops.len() < case.ops.len();
        }
        assert!(shrunk_any, "at least one generated case shrinks");
    }

    #[test]
    fn clean_cases_shrink_to_nothing_or_stay_clean() {
        let rt = campaign_rt();
        let case = Case {
            index: 0,
            ops: vec![
                TraceOp::Malloc { slot: 0, size: 64 },
                TraceOp::Store { slot: 0, off: 0, width: 1, val: 1 },
            ],
            truth: GroundTruth::Clean,
        };
        let min = minimize(&case, &rt);
        assert_eq!(run_case(&min, &rt).class, Class::AgreeClean);
        // An empty-op clean program is still clean, so everything deletes.
        assert!(min.ops.is_empty(), "minimized: {:?}", min.ops);
    }
}
