//! Restorable seeded random-number generator for fuzz campaigns.
//!
//! A ChaCha-style block generator: the key is expanded from a 64-bit
//! seed, and the stream position is a plain draw counter. Serialising
//! the state is therefore trivial — `"seed:drawn"` — and restoring is
//! O(1): recompute the block the counter sits in and continue. That is
//! what lets a campaign checkpoint mid-stream and resume with the exact
//! same program sequence (and lets tests prove it byte-for-byte).

/// Number of double rounds (ChaCha8 = 4 double rounds).
const DOUBLE_ROUNDS: usize = 4;

/// A restorable ChaCha8 random stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzRng {
    seed: u64,
    key: [u32; 8],
    /// Total u32 words drawn so far — the entire stream position.
    drawn: u64,
    /// Cached keystream block holding word `drawn` (when `buf_block ==
    /// drawn / 16`), regenerated lazily on block boundaries.
    buf: [u32; 16],
    buf_block: u64,
}

/// splitmix64 — the standard seed-expansion mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl FuzzRng {
    /// A fresh stream for `seed`, positioned at word 0.
    pub fn new(seed: u64) -> FuzzRng {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in 0..4 {
            let word = splitmix64(&mut sm);
            key[2 * pair] = word as u32;
            key[2 * pair + 1] = (word >> 32) as u32;
        }
        FuzzRng {
            seed,
            key,
            drawn: 0,
            buf: [0; 16],
            buf_block: u64::MAX,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Words drawn so far (the stream position).
    pub fn drawn(&self) -> u64 {
        self.drawn
    }

    /// Serialises the full stream state as `"0x<seed>:<drawn>"`.
    pub fn state(&self) -> String {
        format!("{:#x}:{}", self.seed, self.drawn)
    }

    /// Restores a stream from [`FuzzRng::state`] output. The restored
    /// stream continues exactly where the serialised one stood.
    pub fn restore(state: &str) -> Option<FuzzRng> {
        let (seed_text, drawn_text) = state.split_once(':')?;
        let seed = seed_text
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())?;
        let drawn = drawn_text.parse().ok()?;
        let mut rng = FuzzRng::new(seed);
        rng.drawn = drawn;
        Some(rng)
    }

    /// The ChaCha8 keystream block at block counter `counter`.
    fn block(&self, counter: u64) -> [u32; 16] {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut work = state;
        for _ in 0..DOUBLE_ROUNDS {
            quarter(&mut work, 0, 4, 8, 12);
            quarter(&mut work, 1, 5, 9, 13);
            quarter(&mut work, 2, 6, 10, 14);
            quarter(&mut work, 3, 7, 11, 15);
            quarter(&mut work, 0, 5, 10, 15);
            quarter(&mut work, 1, 6, 11, 12);
            quarter(&mut work, 2, 7, 8, 13);
            quarter(&mut work, 3, 4, 9, 14);
        }
        for (w, s) in work.iter_mut().zip(state.iter()) {
            *w = w.wrapping_add(*s);
        }
        work
    }

    /// Next 32 bits of the stream.
    pub fn next_u32(&mut self) -> u32 {
        let block = self.drawn / 16;
        if block != self.buf_block {
            self.buf = self.block(block);
            self.buf_block = block;
        }
        let word = self.buf[(self.drawn % 16) as usize];
        self.drawn += 1;
        word
    }

    /// Next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// A value in `lo..=hi`. (Modulo bias is irrelevant for corpus
    /// generation; determinism is what matters.)
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_u64() % (hi - lo + 1)
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }

    /// A uniformly chosen element of `items`.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(0, items.len() as u64 - 1) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FuzzRng::new(42);
        let mut b = FuzzRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = FuzzRng::new(43);
        let differs = (0..100).any(|_| a.next_u32() != c.next_u32());
        assert!(differs, "different seeds must diverge");
    }

    #[test]
    fn restore_continues_mid_block_and_cross_block() {
        let mut rng = FuzzRng::new(0xDEAD_BEEF);
        for k in [0usize, 1, 7, 15, 16, 17, 100] {
            let mut fresh = FuzzRng::new(0xDEAD_BEEF);
            for _ in 0..k {
                fresh.next_u32();
            }
            let restored = FuzzRng::restore(&fresh.state()).unwrap();
            let mut restored = restored;
            let mut reference = fresh.clone();
            for _ in 0..50 {
                assert_eq!(restored.next_u32(), reference.next_u32(), "at position {k}");
            }
        }
        // state() round-trips the textual form too.
        rng.next_u64();
        let s = rng.state();
        assert_eq!(FuzzRng::restore(&s).unwrap().state(), s);
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(FuzzRng::restore("").is_none());
        assert!(FuzzRng::restore("12:34").is_none(), "seed must be 0x-hex");
        assert!(FuzzRng::restore("0x12").is_none());
        assert!(FuzzRng::restore("0x12:x").is_none());
    }

    #[test]
    fn range_and_chance_stay_in_bounds() {
        let mut rng = FuzzRng::new(7);
        for _ in 0..500 {
            let v = rng.range(3, 9);
            assert!((3..=9).contains(&v));
            let _ = rng.chance(1, 4);
        }
        assert_eq!(rng.range(5, 5), 5);
    }

    #[test]
    fn stream_is_not_constant() {
        let mut rng = FuzzRng::new(1);
        let head: Vec<u32> = (0..8).map(|_| rng.next_u32()).collect();
        assert!(head.windows(2).any(|w| w[0] != w[1]));
    }
}
