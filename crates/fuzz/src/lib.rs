//! # rest-fuzz — adversarial corpus generation for the REST stack
//!
//! Mechanical scenario-coverage growth (ROADMAP item 4): a restorable
//! seeded generator emits randomized-but-well-formed guest programs
//! with ground-truth bug injection, a tri-oracle differential harness
//! judges each one (restlint static verdicts, functional emulation at
//! all three execution tiers, and the timing path), and a deterministic
//! minimizer shrinks every interesting case to a 1-minimal reproducer.
//!
//! | Module | Purpose |
//! |--------|---------|
//! | [`rng`] | ChaCha8 stream with O(1) serialise/restore |
//! | [`gen`] | Allocator-trace cases, bug taxonomy, lowering to guest asm |
//! | [`oracle`] | Tri-oracle run + disagreement classification |
//! | [`minimize`] | Deterministic 1-minimal shrinking |
//!
//! The campaign driver (checkpointing, rounds-until-dry, `fuzz.json`)
//! lives in `rest-bench`; this crate is the pure, deterministic core,
//! so every piece is unit-testable without filesystem access.

#![forbid(unsafe_code)]

pub mod gen;
pub mod minimize;
pub mod oracle;
pub mod rng;

pub use gen::{lower, BugKind, Case, CaseStream, GroundTruth, TraceOp, BUG_SLOT, GRANULE};
pub use minimize::{is_one_minimal, minimize};
pub use oracle::{campaign_rt, run_case, CaseRecord, Class};
pub use rng::FuzzRng;
