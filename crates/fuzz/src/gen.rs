//! Seeded generator of randomized-but-well-formed guest programs.
//!
//! Programs are generated as allocator traces ([`TraceOp`] lists) and
//! lowered to guest assembly afterwards; the trace is the unit the
//! minimizer shrinks and the regression corpus stores. Every case
//! carries a [`GroundTruth`] label: clean, a bug REST must detect, or a
//! bug REST is known to miss (padding-gap reads, uninitialized reads of
//! zeroed fresh chunks, arm leaks that never trap). The oracle layer
//! judges observed behaviour against this label.
//!
//! Generation is driven by a single [`FuzzRng`] stream, so the case
//! sequence for a seed is total-ordered and resumable: serialise the
//! stream cursor at case `k` and the restored stream reproduces cases
//! `k+1..` exactly.

use crate::rng::FuzzRng;
use rest_isa::{EcallNum, MemSize, Program, ProgramBuilder, Reg};

/// REST token granule in bytes; allocations are padded up to this and
/// flanked by armed redzones of the same granularity.
pub const GRANULE: u64 = 64;

/// Slot registers: generated programs keep at most four live heap
/// pointers, one per callee-saved register.
pub const SLOT_REGS: [Reg; 4] = [Reg::S2, Reg::S3, Reg::S4, Reg::S5];

/// Benign ops use slots 0..3; slot 3 is reserved for bug injection so
/// ground truth never depends on the random benign prefix.
pub const BUG_SLOT: usize = 3;

/// Largest generated allocation. Kept under 256 so the allocator's
/// size-scaled redzone formula always yields the minimum 64-byte
/// redzone, making injected out-of-bounds distances exact.
const MAX_SIZE: u64 = 240;

/// An injected bug class with known ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BugKind {
    /// Load from an armed redzone granule (left or right of a live chunk).
    OobRead,
    /// Store into an armed redzone granule.
    OobWrite,
    /// Load through a freed (quarantined, still-armed) chunk.
    UseAfterFree,
    /// Second `free` of the same chunk.
    DoubleFree,
    /// In-bounds load of bytes never written; REST's fresh chunks are
    /// zeroed, so the read silently returns 0.
    UninitRead,
    /// Guest arms a live chunk's first granule and never disarms or
    /// touches it again; statically flagged, dynamically silent.
    ArmImbalance,
    /// Read from the unarmed padding gap `[size, round_up(size, 64))`.
    PaddingGap,
}

impl BugKind {
    /// All injectable bug kinds, in a fixed order.
    pub const ALL: [BugKind; 7] = [
        BugKind::OobRead,
        BugKind::OobWrite,
        BugKind::UseAfterFree,
        BugKind::DoubleFree,
        BugKind::UninitRead,
        BugKind::ArmImbalance,
        BugKind::PaddingGap,
    ];

    /// Stable kebab-case name used in signatures and reports.
    pub fn name(self) -> &'static str {
        match self {
            BugKind::OobRead => "oob-read",
            BugKind::OobWrite => "oob-write",
            BugKind::UseAfterFree => "use-after-free",
            BugKind::DoubleFree => "double-free",
            BugKind::UninitRead => "uninit-read",
            BugKind::ArmImbalance => "arm-imbalance",
            BugKind::PaddingGap => "padding-gap",
        }
    }
}

/// What the generator knows the case contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroundTruth {
    /// No injected bug; every access is in bounds and initialized.
    Clean,
    /// Injected bug that rest-secure-full must detect at runtime.
    Detect(BugKind),
    /// Injected bug REST is known to miss at runtime (fail-open by
    /// design); the static verifier may still flag it.
    Miss(BugKind),
}

impl GroundTruth {
    /// The injected bug, if any.
    pub fn bug(self) -> Option<BugKind> {
        match self {
            GroundTruth::Clean => None,
            GroundTruth::Detect(b) | GroundTruth::Miss(b) => Some(b),
        }
    }

    /// Stable name: `clean`, or the bug name.
    pub fn name(self) -> &'static str {
        self.bug().map_or("clean", BugKind::name)
    }
}

/// One step of an allocator trace; the generated IR a case is made of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceOp {
    /// `slot = malloc(size)`.
    Malloc { slot: usize, size: u64 },
    /// `*(slot + off) = val` with an access of `width` bytes.
    Store { slot: usize, off: i64, width: u8, val: u8 },
    /// Load `width` bytes at `slot + off`; when `emit`, the low byte is
    /// appended to program output (makes silent wrong values visible).
    Load { slot: usize, off: i64, width: u8, emit: bool },
    /// Byte-sum the first `len` bytes of the slot and emit the low 7
    /// bits — a bounded loop, exercising derived-pointer accesses.
    Hash { slot: usize, len: u64 },
    /// `free(slot)`.
    Free { slot: usize },
    /// Guest-arm the granule at the slot's base pointer.
    Arm { slot: usize },
}

impl TraceOp {
    /// One-line textual form used in `.trace` sidecar files.
    pub fn line(&self) -> String {
        match *self {
            TraceOp::Malloc { slot, size } => format!("malloc slot={slot} size={size}"),
            TraceOp::Store { slot, off, width, val } => {
                format!("store slot={slot} off={off} width={width} val={val}")
            }
            TraceOp::Load { slot, off, width, emit } => {
                format!("load slot={slot} off={off} width={width} emit={}", emit as u8)
            }
            TraceOp::Hash { slot, len } => format!("hash slot={slot} len={len}"),
            TraceOp::Free { slot } => format!("free slot={slot}"),
            TraceOp::Arm { slot } => format!("arm slot={slot}"),
        }
    }

    /// The slot this op works on ([`BUG_SLOT`] iff the op belongs to an
    /// injected bug).
    pub fn slot(&self) -> usize {
        match *self {
            TraceOp::Malloc { slot, .. }
            | TraceOp::Store { slot, .. }
            | TraceOp::Load { slot, .. }
            | TraceOp::Hash { slot, .. }
            | TraceOp::Free { slot }
            | TraceOp::Arm { slot } => slot,
        }
    }
}

/// A generated case: trace ops plus the ground-truth label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Case {
    /// Position in the seed's case stream.
    pub index: u64,
    /// The allocator trace; lowered to assembly by [`lower`].
    pub ops: Vec<TraceOp>,
    /// What the generator injected.
    pub truth: GroundTruth,
}

fn round_up_granule(size: u64) -> u64 {
    size.div_ceil(GRANULE) * GRANULE
}

const WIDTHS: [u8; 4] = [1, 2, 4, 8];

fn mem_size(width: u8) -> MemSize {
    match width {
        1 => MemSize::B1,
        2 => MemSize::B2,
        4 => MemSize::B4,
        _ => MemSize::B8,
    }
}

/// Live benign slot state: allocation size and initialized prefix.
#[derive(Clone, Copy)]
struct Slot {
    size: u64,
    written: u64,
}

/// The resumable case stream for one seed.
///
/// All randomness comes from a single [`FuzzRng`]; [`CaseStream::cursor`]
/// captures the full state (`rng-state@next-index`), and
/// [`CaseStream::restore`] resumes the identical sequence.
#[derive(Debug, Clone)]
pub struct CaseStream {
    rng: FuzzRng,
    next_index: u64,
}

impl CaseStream {
    /// A fresh stream for `seed`, positioned before case 0.
    pub fn new(seed: u64) -> CaseStream {
        CaseStream {
            rng: FuzzRng::new(seed),
            next_index: 0,
        }
    }

    /// Index of the case the next [`CaseStream::next_case`] call yields.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Serialises the stream position as `"<rng-state>@<next-index>"`.
    pub fn cursor(&self) -> String {
        format!("{}@{}", self.rng.state(), self.next_index)
    }

    /// Restores a stream from [`CaseStream::cursor`] output.
    pub fn restore(cursor: &str) -> Option<CaseStream> {
        let (rng_state, index_text) = cursor.rsplit_once('@')?;
        Some(CaseStream {
            rng: FuzzRng::restore(rng_state)?,
            next_index: index_text.parse().ok()?,
        })
    }

    /// Generates the next case in the stream.
    pub fn next_case(&mut self) -> Case {
        let index = self.next_index;
        self.next_index += 1;
        let rng = &mut self.rng;
        let mut ops = Vec::new();
        let mut slots: [Option<Slot>; BUG_SLOT] = [None; BUG_SLOT];

        let benign = rng.range(3, 9);
        for _ in 0..benign {
            push_benign_op(rng, &mut ops, &mut slots);
        }

        let truth = if rng.chance(1, 4) {
            GroundTruth::Clean
        } else {
            inject_bug(rng, &mut ops)
        };
        Case { index, ops, truth }
    }
}

/// Appends one well-formed benign op, maintaining slot invariants
/// (loads/hashes only touch the initialized prefix, accesses stay in
/// bounds).
fn push_benign_op(rng: &mut FuzzRng, ops: &mut Vec<TraceOp>, slots: &mut [Option<Slot>; BUG_SLOT]) {
    // Weighted candidate kinds, filtered by current slot state.
    // 0 = malloc, 1 = store, 2 = load, 3 = hash, 4 = free.
    let any_free = slots.iter().any(|s| s.is_none());
    let any_live = slots.iter().any(|s| s.is_some());
    let any_written = slots.iter().flatten().any(|s| s.written > 0);
    let mut kinds: Vec<u8> = Vec::new();
    if any_free {
        kinds.extend([0, 0]);
    }
    if any_live {
        kinds.extend([1, 1, 1, 4]);
    }
    if any_written {
        kinds.extend([2, 2, 3]);
    }
    let kind = *rng.pick(&kinds);

    let pick_slot = |rng: &mut FuzzRng, want: fn(&Slot) -> bool, slots: &[Option<Slot>; BUG_SLOT]| {
        let live: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.map_or(false, |s| want(&s)))
            .map(|(i, _)| i)
            .collect();
        *rng.pick(&live)
    };

    match kind {
        0 => {
            let free: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_none())
                .map(|(i, _)| i)
                .collect();
            let slot = *rng.pick(&free);
            let size = rng.range(1, MAX_SIZE);
            slots[slot] = Some(Slot { size, written: 0 });
            ops.push(TraceOp::Malloc { slot, size });
        }
        1 => {
            let slot = pick_slot(rng, |_| true, slots);
            let s = slots[slot].as_mut().unwrap();
            let widths: Vec<u8> = WIDTHS.iter().copied().filter(|&w| u64::from(w) <= s.size).collect();
            let width = *rng.pick(&widths);
            let off = rng.range(0, s.written.min(s.size - u64::from(width)));
            let val = rng.range(0, 255) as u8;
            s.written = s.written.max(off + u64::from(width));
            ops.push(TraceOp::Store { slot, off: off as i64, width, val });
        }
        2 => {
            let slot = pick_slot(rng, |s| s.written > 0, slots);
            let s = slots[slot].unwrap();
            let widths: Vec<u8> = WIDTHS.iter().copied().filter(|&w| u64::from(w) <= s.written).collect();
            let width = *rng.pick(&widths);
            let off = rng.range(0, s.written - u64::from(width));
            let emit = rng.chance(1, 2);
            ops.push(TraceOp::Load { slot, off: off as i64, width, emit });
        }
        3 => {
            let slot = pick_slot(rng, |s| s.written > 0, slots);
            let s = slots[slot].unwrap();
            let len = rng.range(1, s.written);
            ops.push(TraceOp::Hash { slot, len });
        }
        _ => {
            let slot = pick_slot(rng, |_| true, slots);
            slots[slot] = None;
            ops.push(TraceOp::Free { slot });
        }
    }
}

/// Appends a bug of a random kind on the reserved bug slot and returns
/// the ground-truth label. The bug allocates its own chunk, so the
/// injected condition is independent of the benign prefix.
fn inject_bug(rng: &mut FuzzRng, ops: &mut Vec<TraceOp>) -> GroundTruth {
    let kind = *rng.pick(&BugKind::ALL);
    let slot = BUG_SLOT;
    match kind {
        BugKind::OobRead | BugKind::OobWrite => {
            let size = rng.range(1, MAX_SIZE);
            let user_pad = round_up_granule(size);
            let width = *rng.pick(&WIDTHS);
            let w = u64::from(width);
            // Whole access inside one armed redzone granule: the right
            // redzone [user_pad, user_pad+64) or the left [-64, 0).
            let off = if rng.chance(1, 2) {
                (user_pad + rng.range(0, GRANULE - w)) as i64
            } else {
                -(rng.range(w, GRANULE) as i64)
            };
            ops.push(TraceOp::Malloc { slot, size });
            if kind == BugKind::OobRead {
                ops.push(TraceOp::Load { slot, off, width, emit: false });
            } else {
                let val = rng.range(0, 255) as u8;
                ops.push(TraceOp::Store { slot, off, width, val });
            }
            GroundTruth::Detect(kind)
        }
        BugKind::UseAfterFree => {
            let size = rng.range(1, MAX_SIZE);
            let widths: Vec<u8> = WIDTHS.iter().copied().filter(|&w| u64::from(w) <= size).collect();
            let width = *rng.pick(&widths);
            let off = rng.range(0, size - u64::from(width)) as i64;
            ops.push(TraceOp::Malloc { slot, size });
            ops.push(TraceOp::Free { slot });
            ops.push(TraceOp::Load { slot, off, width, emit: false });
            GroundTruth::Detect(kind)
        }
        BugKind::DoubleFree => {
            let size = rng.range(1, MAX_SIZE);
            ops.push(TraceOp::Malloc { slot, size });
            ops.push(TraceOp::Free { slot });
            ops.push(TraceOp::Free { slot });
            GroundTruth::Detect(kind)
        }
        BugKind::UninitRead => {
            let size = rng.range(1, MAX_SIZE);
            let widths: Vec<u8> = WIDTHS.iter().copied().filter(|&w| u64::from(w) <= size).collect();
            let width = *rng.pick(&widths);
            let off = rng.range(0, size - u64::from(width)) as i64;
            ops.push(TraceOp::Malloc { slot, size });
            ops.push(TraceOp::Load { slot, off, width, emit: true });
            GroundTruth::Miss(kind)
        }
        BugKind::ArmImbalance => {
            let size = rng.range(1, MAX_SIZE);
            ops.push(TraceOp::Malloc { slot, size });
            ops.push(TraceOp::Arm { slot });
            GroundTruth::Miss(kind)
        }
        BugKind::PaddingGap => {
            // Need a nonempty padding gap [size, round_up(size, 64)).
            let mut size = rng.range(1, MAX_SIZE - 1);
            if size % GRANULE == 0 {
                size += 1;
            }
            let user_pad = round_up_granule(size);
            let off = rng.range(size, user_pad - 1) as i64;
            ops.push(TraceOp::Malloc { slot, size });
            ops.push(TraceOp::Load { slot, off, width: 1, emit: true });
            GroundTruth::Miss(kind)
        }
    }
}

/// Lowers a case to a guest program.
///
/// Each trace op becomes a short, fixed instruction idiom; the malloc
/// size is materialised as a constant into `a0` immediately before the
/// ecall so restlint's site analysis recovers exact chunk layouts.
pub fn lower(case: &Case) -> Program {
    let mut p = ProgramBuilder::new();
    p.symbol("main");
    for op in &case.ops {
        match *op {
            TraceOp::Malloc { slot, size } => {
                p.li(Reg::A0, size as i64);
                p.ecall(EcallNum::Malloc);
                p.mv(SLOT_REGS[slot], Reg::A0);
            }
            TraceOp::Store { slot, off, width, val } => {
                p.li(Reg::T0, i64::from(val));
                p.store(Reg::T0, SLOT_REGS[slot], off, mem_size(width));
            }
            TraceOp::Load { slot, off, width, emit } => {
                p.load(Reg::T0, SLOT_REGS[slot], off, mem_size(width));
                if emit {
                    p.mv(Reg::A0, Reg::T0);
                    p.ecall(EcallNum::PutChar);
                }
            }
            TraceOp::Hash { slot, len } => {
                // sum = 0; cur = base; end = base + len;
                // while cur != end { sum += *cur; cur += 1 } ; put(sum & 0x7f)
                p.li(Reg::T1, 0);
                p.mv(Reg::T2, SLOT_REGS[slot]);
                p.mv(Reg::T3, SLOT_REGS[slot]);
                p.addi(Reg::T3, Reg::T3, len as i64);
                let done = p.new_label();
                let head = p.label_here();
                p.beq(Reg::T2, Reg::T3, done);
                p.load(Reg::T0, Reg::T2, 0, MemSize::B1);
                p.add(Reg::T1, Reg::T1, Reg::T0);
                p.addi(Reg::T2, Reg::T2, 1);
                p.j(head);
                p.bind(done);
                p.andi(Reg::T0, Reg::T1, 0x7f);
                p.mv(Reg::A0, Reg::T0);
                p.ecall(EcallNum::PutChar);
            }
            TraceOp::Free { slot } => {
                p.mv(Reg::A0, SLOT_REGS[slot]);
                p.ecall(EcallNum::Free);
            }
            TraceOp::Arm { slot } => {
                p.arm(SLOT_REGS[slot]);
            }
        }
    }
    p.li(Reg::A0, 0);
    p.ecall(EcallNum::Exit);
    p.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(seed: u64, n: usize) -> Vec<Case> {
        let mut s = CaseStream::new(seed);
        (0..n).map(|_| s.next_case()).collect()
    }

    #[test]
    fn same_seed_identical_stream() {
        assert_eq!(collect(0xF0CC_5EED, 64), collect(0xF0CC_5EED, 64));
        let a = collect(1, 32);
        let b = collect(2, 32);
        assert_ne!(a, b, "different seeds must give different streams");
    }

    #[test]
    fn cursor_restore_reproduces_tail_exactly() {
        let mut stream = CaseStream::new(0xF0CC_5EED);
        for _ in 0..10 {
            stream.next_case();
        }
        let cursor = stream.cursor();
        let reference: Vec<Case> = (0..20).map(|_| stream.next_case()).collect();
        let mut restored = CaseStream::restore(&cursor).expect("cursor parses");
        assert_eq!(restored.next_index(), 10);
        let replayed: Vec<Case> = (0..20).map(|_| restored.next_case()).collect();
        assert_eq!(reference, replayed);
    }

    #[test]
    fn cursor_rejects_garbage() {
        assert!(CaseStream::restore("").is_none());
        assert!(CaseStream::restore("0x1:2").is_none());
        assert!(CaseStream::restore("0x1:2@x").is_none());
    }

    #[test]
    fn injected_bugs_are_well_formed() {
        let mut stream = CaseStream::new(0xABCD);
        let mut seen_kinds = std::collections::BTreeSet::new();
        let mut seen_clean = false;
        for _ in 0..500 {
            let case = stream.next_case();
            match case.truth {
                GroundTruth::Clean => seen_clean = true,
                truth => {
                    let kind = truth.bug().unwrap();
                    seen_kinds.insert(kind);
                    // The bug always works on a dedicated tail allocation.
                    let size = case
                        .ops
                        .iter()
                        .rev()
                        .find_map(|op| match *op {
                            TraceOp::Malloc { slot, size } if slot == 3 => Some(size),
                            _ => None,
                        })
                        .expect("bug slot allocated");
                    let user_pad = round_up_granule(size);
                    match (kind, case.ops.last().unwrap()) {
                        (BugKind::OobRead, &TraceOp::Load { off, width, .. })
                        | (BugKind::OobWrite, &TraceOp::Store { off, width, .. }) => {
                            let w = i64::from(width);
                            let in_right = off >= user_pad as i64
                                && off + w <= (user_pad + GRANULE) as i64;
                            let in_left = off >= -(GRANULE as i64) && off + w <= 0;
                            assert!(in_right || in_left, "oob off {off} w {w} size {size}");
                        }
                        (BugKind::UseAfterFree, &TraceOp::Load { off, width, .. })
                        | (BugKind::UninitRead, &TraceOp::Load { off, width, .. }) => {
                            assert!(off >= 0 && off as u64 + u64::from(width) <= size);
                        }
                        (BugKind::DoubleFree, &TraceOp::Free { slot }) => assert_eq!(slot, 3),
                        (BugKind::ArmImbalance, &TraceOp::Arm { slot }) => assert_eq!(slot, 3),
                        (BugKind::PaddingGap, &TraceOp::Load { off, width, emit, .. }) => {
                            assert_ne!(size % GRANULE, 0);
                            assert!(emit && width == 1);
                            assert!(off as u64 >= size && (off as u64) < user_pad);
                        }
                        (k, op) => panic!("unexpected tail op {op:?} for {k:?}"),
                    }
                }
            }
        }
        assert!(seen_clean, "clean cases must occur");
        assert_eq!(seen_kinds.len(), BugKind::ALL.len(), "all bug kinds occur in 500 cases");
    }

    #[test]
    fn lowering_builds_programs() {
        let mut stream = CaseStream::new(7);
        for _ in 0..100 {
            let case = stream.next_case();
            let program = lower(&case);
            assert!(program.len() >= 2);
            // Assembly round-trips through the parser (regression files
            // are stored as .s text).
            let text = program.to_asm();
            let reparsed = rest_isa::parse_asm(&text).expect("asm round-trip");
            assert_eq!(reparsed.len(), program.len());
        }
    }
}
