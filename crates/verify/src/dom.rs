//! Dominator trees over the recovered CFG.
//!
//! The check-elision pass needs domination to justify `Redundant`
//! verdicts: a check may be skipped only when the *generating* check
//! lies on every path from the function entry to the elided access. The
//! tree is built per recovered function with the Cooper–Harvey–Kennedy
//! iterative algorithm over a reverse postorder, which handles
//! irreducible control flow (loops with multiple entries) without
//! special cases — the fixpoint simply converges on the common
//! dominator.
//!
//! Edges mirror exactly what the dataflow analysis propagates along:
//! fall-through, jump, and taken-branch targets plus the return point of
//! a call (`Succ::CallReturn { ret, .. }`). `Ret`/`Exit`/`Indirect`/
//! `FallsOffEnd` terminate paths and contribute no edge.

use std::collections::BTreeMap;

use crate::cfg::{Cfg, Function, Succ};

/// Immediate-dominator tree for one recovered function. Blocks are
/// identified by their index into [`Cfg::blocks`].
#[derive(Debug, Clone)]
pub struct DomTree {
    /// The function's entry block index.
    pub entry: usize,
    /// `idom[b]` for every reachable member block except the entry.
    idom: BTreeMap<usize, usize>,
    /// Reverse-postorder number of every reachable member block (the
    /// entry is 0). Blocks outside the map are unreachable from entry.
    rpo: BTreeMap<usize, usize>,
}

impl DomTree {
    /// Builds the dominator tree of `func` over `cfg`.
    pub fn build(cfg: &Cfg, func: &Function) -> DomTree {
        let members: BTreeMap<usize, ()> = func.blocks.iter().map(|&b| (b, ())).collect();
        let Some(&entry) = cfg.index.get(&func.entry) else {
            return DomTree {
                entry: usize::MAX,
                idom: BTreeMap::new(),
                rpo: BTreeMap::new(),
            };
        };

        // Successors of a member block, restricted to member blocks.
        let succs = |bi: usize| -> Vec<usize> {
            let mut out = Vec::new();
            for s in &cfg.blocks[bi].succs {
                let target = match *s {
                    Succ::Fall(t) | Succ::Jump(t) | Succ::Taken(t) => Some(t),
                    Succ::CallReturn { ret, .. } => Some(ret),
                    Succ::Ret | Succ::Exit | Succ::Indirect | Succ::FallsOffEnd => None,
                };
                if let Some(t) = target {
                    if let Some(&ni) = cfg.index.get(&t) {
                        if members.contains_key(&ni) && !out.contains(&ni) {
                            out.push(ni);
                        }
                    }
                }
            }
            out
        };

        // Depth-first postorder from the entry (iterative, deterministic).
        let mut post: Vec<usize> = Vec::new();
        let mut seen: BTreeMap<usize, bool> = BTreeMap::new();
        let mut stack: Vec<(usize, Vec<usize>, usize)> = vec![(entry, succs(entry), 0)];
        seen.insert(entry, true);
        while let Some((bi, ss, cursor)) = stack.pop() {
            if cursor < ss.len() {
                let next = ss[cursor];
                stack.push((bi, ss, cursor + 1));
                if seen.insert(next, true).is_none() {
                    stack.push((next, succs(next), 0));
                }
            } else {
                post.push(bi);
            }
        }
        let rpo_order: Vec<usize> = post.into_iter().rev().collect();
        let rpo: BTreeMap<usize, usize> = rpo_order
            .iter()
            .enumerate()
            .map(|(n, &bi)| (bi, n))
            .collect();

        // Predecessors among reachable member blocks.
        let mut preds: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &bi in &rpo_order {
            for s in succs(bi) {
                if rpo.contains_key(&s) {
                    preds.entry(s).or_default().push(bi);
                }
            }
        }

        // Cooper–Harvey–Kennedy: iterate to fixpoint in RPO.
        let mut idom: BTreeMap<usize, usize> = BTreeMap::new();
        idom.insert(entry, entry);
        let intersect = |idom: &BTreeMap<usize, usize>, mut a: usize, mut b: usize| {
            while a != b {
                while rpo[&a] > rpo[&b] {
                    a = idom[&a];
                }
                while rpo[&b] > rpo[&a] {
                    b = idom[&b];
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &bi in rpo_order.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in preds.get(&bi).into_iter().flatten() {
                    if !idom.contains_key(&p) {
                        continue; // predecessor not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(n) = new_idom {
                    if idom.get(&bi) != Some(&n) {
                        idom.insert(bi, n);
                        changed = true;
                    }
                }
            }
        }
        idom.remove(&entry); // the entry has no immediate dominator
        DomTree { entry, idom, rpo }
    }

    /// The immediate dominator of `bi` (`None` for the entry and for
    /// blocks unreachable from the entry).
    pub fn idom(&self, bi: usize) -> Option<usize> {
        self.idom.get(&bi).copied()
    }

    /// Whether block `a` dominates block `b` (reflexive). Unreachable
    /// blocks dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if !self.rpo.contains_key(&a) || !self.rpo.contains_key(&b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(up) => cur = up,
                None => return false,
            }
        }
    }

    /// Whether `bi` is reachable from the function entry.
    pub fn reachable(&self, bi: usize) -> bool {
        self.rpo.contains_key(&bi)
    }
}

#[cfg(test)]
mod tests {
    use super::DomTree;
    use crate::cfg::Cfg;
    use rest_isa::{EcallNum, Program, ProgramBuilder, Reg, PC_STEP};

    fn block_at(cfg: &Cfg, inst_idx: u64) -> usize {
        cfg.index[&(Program::CODE_BASE + inst_idx * PC_STEP)]
    }

    /// Diamond: the join is dominated by the split, not by either arm.
    #[test]
    fn diamond_join_is_dominated_by_the_split_only() {
        let mut p = ProgramBuilder::new();
        let else_l = p.new_label();
        let join_l = p.new_label();
        p.beq(Reg::A1, Reg::ZERO, else_l); // 0: split
        p.li(Reg::T1, 1); // 1: then-arm
        p.j(join_l); // 2
        p.bind(else_l);
        p.li(Reg::T2, 2); // 3: else-arm
        p.bind(join_l);
        p.li(Reg::A0, 0); // 4: join
        p.ecall(EcallNum::Exit); // 5, 6
        p.li(Reg::T5, 9); // 7: unreachable
        let program = p.build();
        let cfg = Cfg::build(&program);
        let dom = DomTree::build(&cfg, &cfg.functions[0]);

        let split = block_at(&cfg, 0);
        let then_arm = block_at(&cfg, 1);
        let else_arm = block_at(&cfg, 3);
        let join = block_at(&cfg, 4);
        let dead = block_at(&cfg, 7);

        assert_eq!(dom.entry, split);
        assert_eq!(dom.idom(split), None);
        assert_eq!(dom.idom(then_arm), Some(split));
        assert_eq!(dom.idom(else_arm), Some(split));
        assert_eq!(dom.idom(join), Some(split));
        assert!(dom.dominates(split, join));
        assert!(dom.dominates(join, join), "domination is reflexive");
        assert!(!dom.dominates(then_arm, join));
        assert!(!dom.dominates(else_arm, join));
        assert!(!dom.reachable(dead));
        assert!(!dom.dominates(split, dead));
    }

    /// Irreducible loop: {B, C} entered at both B (fall-through from the
    /// split) and C (taken branch). Neither loop block dominates the
    /// other; the fixpoint converges on the split as common idom.
    #[test]
    fn irreducible_loop_blocks_share_the_split_as_idom() {
        let mut p = ProgramBuilder::new();
        let b_l = p.new_label();
        let c_l = p.new_label();
        p.beq(Reg::A1, Reg::ZERO, c_l); // 0: split -> C taken, B fall
        p.bind(b_l);
        p.li(Reg::T1, 1); // 1: B, falls into C
        p.bind(c_l);
        p.li(Reg::T2, 2); // 2: C
        p.beq(Reg::A2, Reg::ZERO, b_l); // 3: C -> B taken, exit fall
        p.li(Reg::A0, 0); // 4: exit block
        p.ecall(EcallNum::Exit); // 5, 6
        let program = p.build();
        let cfg = Cfg::build(&program);
        let dom = DomTree::build(&cfg, &cfg.functions[0]);

        let split = block_at(&cfg, 0);
        let b = block_at(&cfg, 1);
        let c = block_at(&cfg, 2);
        let exit = block_at(&cfg, 4);

        // Two entries into the loop: neither member dominates the other.
        assert_eq!(dom.idom(b), Some(split));
        assert_eq!(dom.idom(c), Some(split));
        assert!(!dom.dominates(b, c));
        assert!(!dom.dominates(c, b));
        // The exit is only reachable through C.
        assert_eq!(dom.idom(exit), Some(c));
        assert!(dom.dominates(c, exit));
        assert!(dom.dominates(split, exit));
        assert!(!dom.dominates(b, exit));
    }
}
