//! `restlint` — lint the in-tree guest-program corpus.
//!
//! Runs the static ARM/DISARM verifier over every workload row of the
//! paper's figures (12 benchmarks, gobmk expanded to its five inputs)
//! and every attack scenario, prints a verdict table, and writes a
//! deterministic JSON report.
//!
//! ```text
//! Usage: restlint [OPTIONS]
//!
//!   --json PATH       JSON report path (default: results/lint.json)
//!   --filter SUBSTR   keep only programs whose name contains SUBSTR
//!   --differential    cross-check must-trap verdicts on the emulator
//!   --help            show this help
//! ```
//!
//! Exit status is non-zero when a workload has any finding (the corpus
//! must lint clean), when an attack program has none (every attack must
//! be flagged), or when a differential cross-check fails.

use std::path::PathBuf;
use std::process::ExitCode;

use rest_core::{Mode, TokenWidth};
use rest_cpu::{Emulator, ExecEngine, SimConfig, StopReason};
use rest_runtime::{RtConfig, StackScheme};
use rest_verify::{report_json, verify_program, DiffOutcome, ProgramReport, Severity};
use rest_workloads::{Scale, Workload, WorkloadParams, GOBMK_INPUTS};

struct Cli {
    json: PathBuf,
    filter: Option<String>,
    differential: bool,
}

const USAGE: &str = "\
Usage: restlint [OPTIONS]

Statically verifies every workload and attack program.

  --json PATH       JSON report path (default: results/lint.json)
  --filter SUBSTR   keep only programs whose name contains SUBSTR
  --differential    cross-check must-trap verdicts on the emulator
  --help            show this help
";

impl Cli {
    fn from_args() -> Result<Cli, String> {
        let mut cli = Cli {
            json: PathBuf::from("results/lint.json"),
            filter: None,
            differential: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--json" => {
                    let v = it.next().ok_or("--json needs a path")?;
                    cli.json = PathBuf::from(v);
                }
                "--filter" => {
                    let v = it.next().ok_or("--filter needs a substring")?;
                    cli.filter = Some(v.to_lowercase());
                }
                "--differential" => cli.differential = true,
                "--help" | "-h" => return Err("help".into()),
                other => return Err(format!("unknown option '{other}'")),
            }
        }
        Ok(cli)
    }

    fn keeps(&self, name: &str) -> bool {
        self.filter
            .as_ref()
            .is_none_or(|f| name.to_lowercase().contains(f))
    }
}

/// The corpus: every figure row plus every attack, with the programs
/// built exactly as the benchmark and attack harnesses build them.
fn corpus(cli: &Cli) -> Vec<(String, &'static str, rest_isa::Program)> {
    let mut out = Vec::new();
    for w in Workload::ALL {
        let rows: Vec<(String, u64)> = if w == Workload::Gobmk {
            GOBMK_INPUTS
                .iter()
                .map(|&(n, s)| (n.to_string(), s))
                .collect()
        } else {
            vec![(w.name().to_string(), 0xC0FFEE)]
        };
        for (name, seed) in rows {
            if !cli.keeps(&name) {
                continue;
            }
            let params = WorkloadParams {
                scale: Scale::Test,
                stack_scheme: StackScheme::Rest,
                token_width: TokenWidth::B64,
                seed,
            };
            out.push((name, "workload", w.build(&params)));
        }
    }
    for a in rest_attacks::Attack::ALL {
        let name = a.name().to_string();
        if !cli.keeps(&name) {
            continue;
        }
        out.push((name, "attack", a.build(StackScheme::Rest)));
    }
    out
}

/// Replays `program` on the functional emulator under the full-REST
/// runtime and reports whether it raised a violation.
fn run_differential(name: &str, pc: u64, program: &rest_isa::Program) -> DiffOutcome {
    let rt = RtConfig::rest(Mode::Secure, true);
    let cfg = SimConfig::isca2018(rt);
    let mut emu = Emulator::new(program.clone(), &cfg);
    emu.run_functional();
    let stop = emu.take_stop().expect("run_functional stops");
    let (confirmed, outcome) = match &stop {
        StopReason::Violation(v) => (true, format!("violation: {v:?}")),
        other => (false, format!("{other:?}")),
    };
    DiffOutcome {
        name: name.to_string(),
        pc,
        confirmed,
        outcome,
    }
}

fn main() -> ExitCode {
    let cli = match Cli::from_args() {
        Ok(cli) => cli,
        Err(e) if e == "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("restlint: {e}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut reports = Vec::new();
    for (name, kind, program) in corpus(&cli) {
        let result = verify_program(&program);
        reports.push((
            ProgramReport {
                name,
                kind,
                result,
            },
            program,
        ));
    }

    // Verdict table.
    println!(
        "{:<22} {:<9} {:>6} {:>7} {:>9} {:>7}  verdict",
        "program", "kind", "insts", "blocks", "findings", "worst"
    );
    let mut failures = Vec::new();
    for (rep, _) in &reports {
        let worst = rep
            .max_severity()
            .map(|s| s.name())
            .unwrap_or("-")
            .to_string();
        let verdict = match rep.kind {
            "workload" => {
                if rep.is_clean() {
                    "clean"
                } else {
                    failures.push(format!("workload '{}' has findings", rep.name));
                    "DIRTY"
                }
            }
            _ => {
                if rep.result.findings.is_empty() {
                    failures.push(format!("attack '{}' produced no findings", rep.name));
                    "MISSED"
                } else {
                    "flagged"
                }
            }
        };
        println!(
            "{:<22} {:<9} {:>6} {:>7} {:>9} {:>7}  {verdict}",
            rep.name,
            rep.kind,
            rep.result.insts,
            rep.result.blocks,
            rep.result.findings.len(),
            worst
        );
        for f in &rep.result.findings {
            println!(
                "    [{:<9}] pc {:#x} {}: {}",
                f.severity.name(),
                f.pc,
                f.pass,
                f.message
            );
        }
    }

    // Differential cross-check: every must-trap verdict must reproduce
    // as a runtime violation under the full-REST configuration.
    let mut differential = None;
    if cli.differential {
        let mut outcomes = Vec::new();
        for (rep, program) in &reports {
            if rep.kind != "attack" {
                continue;
            }
            for f in &rep.result.findings {
                if f.severity != Severity::MustTrap {
                    continue;
                }
                let d = run_differential(&rep.name, f.pc, program);
                if !d.confirmed {
                    failures.push(format!(
                        "differential: '{}' must-trap at pc {:#x} did not reproduce ({})",
                        d.name, d.pc, d.outcome
                    ));
                }
                outcomes.push(d);
                break; // one representative verdict per program
            }
        }
        println!("\ndifferential cross-checks: {}", outcomes.len());
        for d in &outcomes {
            println!(
                "    {:<22} pc {:#x} {} ({})",
                d.name,
                d.pc,
                if d.confirmed { "confirmed" } else { "FAILED" },
                d.outcome
            );
        }
        differential = Some(outcomes);
    }

    // JSON report.
    let programs: Vec<ProgramReport> = reports.iter().map(|(r, _)| r.clone()).collect();
    let json = report_json(&programs, differential.as_deref());
    if let Some(dir) = cli.json.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("restlint: creating {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let mut text = json.to_string_pretty();
    text.push('\n');
    if let Err(e) = std::fs::write(&cli.json, text) {
        eprintln!("restlint: writing {}: {e}", cli.json.display());
        return ExitCode::FAILURE;
    }
    println!("\nwrote {}", cli.json.display());

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("\nrestlint: {} failure(s):", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        ExitCode::FAILURE
    }
}
