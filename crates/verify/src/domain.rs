//! Abstract domain of the verifier: strided intervals and the abstract
//! values tracked per register.
//!
//! The domain is tuned to the code the in-tree generators emit — masked
//! indices (`andi x, y, 2^k-1`), up-counting `blt` loops, down-counting
//! `bne` loops, and straight-line `addi sp/tp` frame arithmetic — so
//! those idioms stay *bounded* through the analysis. Everything the
//! domain cannot bound collapses to an unbounded interval or
//! [`AbsVal::Top`], and the lint passes only ever report findings on
//! bounded facts, keeping the suite free of false positives on the
//! workload corpus.

use std::fmt;

/// A strided interval `{lo, lo+stride, …, hi}`.
///
/// `None` bounds mean unbounded on that side. `stride == 0` iff the
/// interval is a singleton; unbounded intervals drop stride information
/// (`stride == 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SInt {
    /// Lower bound (`None` = −∞).
    pub lo: Option<i64>,
    /// Upper bound (`None` = +∞).
    pub hi: Option<i64>,
    /// Distance between member values (0 = singleton, 1 = dense).
    pub stride: u64,
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl SInt {
    /// The full interval (no information).
    pub fn top() -> SInt {
        SInt {
            lo: None,
            hi: None,
            stride: 1,
        }
    }

    /// The singleton `{c}`.
    pub fn val(c: i64) -> SInt {
        SInt {
            lo: Some(c),
            hi: Some(c),
            stride: 0,
        }
    }

    /// A dense interval `[lo, hi]`.
    pub fn range(lo: i64, hi: i64) -> SInt {
        SInt {
            lo: Some(lo),
            hi: Some(hi),
            stride: if lo == hi { 0 } else { 1 },
        }
    }

    fn normalized(mut self) -> SInt {
        match (self.lo, self.hi) {
            (Some(l), Some(h)) => {
                debug_assert!(l <= h);
                if l == h {
                    self.stride = 0;
                } else if self.stride == 0 {
                    self.stride = 1;
                }
            }
            // A known lower bound anchors the residue class, so the
            // stride stays meaningful on half-bounded intervals (the
            // shape widening gives an up-counting loop variable).
            (Some(_), None) => {
                if self.stride == 0 {
                    self.stride = 1;
                }
            }
            _ => self.stride = 1,
        }
        self
    }

    /// The single member value, if this is a singleton.
    pub fn singleton(&self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Some(l), Some(h)) if l == h => Some(l),
            _ => None,
        }
    }

    /// Both bounds known.
    pub fn is_bounded(&self) -> bool {
        self.lo.is_some() && self.hi.is_some()
    }

    /// Whether `v` may be a member.
    pub fn contains(&self, v: i64) -> bool {
        if self.lo.is_some_and(|l| v < l) || self.hi.is_some_and(|h| v > h) {
            return false;
        }
        match (self.lo, self.stride) {
            // i128 keeps the residue test exact when `v - l` would
            // overflow i64 (e.g. lo near i64::MIN, v near i64::MAX).
            (Some(l), s) if s > 1 => (v as i128 - l as i128) % s as i128 == 0,
            (Some(l), 0) => v == l,
            _ => true,
        }
    }

    /// Least upper bound of two intervals.
    pub fn join(&self, other: &SInt) -> SInt {
        let lo = match (self.lo, other.lo) {
            (Some(a), Some(b)) => Some(a.min(b)),
            _ => None,
        };
        let hi = match (self.hi, other.hi) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        };
        let stride = match (self.lo, other.lo) {
            (Some(a), Some(b)) => gcd(gcd(self.stride, other.stride), a.abs_diff(b)),
            _ => 1,
        };
        SInt { lo, hi, stride }.normalized()
    }

    /// Widening: bounds that grew since `prev` go to ±∞.
    pub fn widen_from(&self, prev: &SInt) -> SInt {
        let lo = match (prev.lo, self.lo) {
            (Some(p), Some(n)) if n >= p => Some(n),
            _ => None,
        };
        let hi = match (prev.hi, self.hi) {
            (Some(p), Some(n)) if n <= p => Some(n),
            _ => None,
        };
        SInt {
            lo,
            hi,
            stride: if lo.is_some() {
                gcd(self.stride, prev.stride)
            } else {
                1
            },
        }
        .normalized()
    }

    fn map2(&self, other: &SInt, f: impl Fn(i64, i64) -> Option<i64>) -> SInt {
        // Interval arithmetic over the bound pairs; any overflow → Top.
        let combos = |a: Option<i64>, b: Option<i64>| -> Option<i64> {
            match (a, b) {
                (Some(a), Some(b)) => f(a, b),
                _ => None,
            }
        };
        let c = [
            combos(self.lo, other.lo),
            combos(self.lo, other.hi),
            combos(self.hi, other.lo),
            combos(self.hi, other.hi),
        ];
        if self.is_bounded() && other.is_bounded() && c.iter().all(|v| v.is_some()) {
            let vals: Vec<i64> = c.iter().map(|v| v.unwrap()).collect();
            SInt {
                lo: vals.iter().min().copied(),
                hi: vals.iter().max().copied(),
                stride: 1,
            }
            .normalized()
        } else {
            SInt::top()
        }
    }

    /// Abstract addition.
    pub fn add(&self, other: &SInt) -> SInt {
        let lo = match (self.lo, other.lo) {
            (Some(a), Some(b)) => a.checked_add(b),
            _ => None,
        };
        let hi = match (self.hi, other.hi) {
            (Some(a), Some(b)) => a.checked_add(b),
            _ => None,
        };
        if (self.lo.is_some() && other.lo.is_some()) != lo.is_some()
            || (self.hi.is_some() && other.hi.is_some()) != hi.is_some()
        {
            return SInt::top(); // overflow
        }
        SInt {
            lo,
            hi,
            stride: if lo.is_some() {
                gcd(self.stride, other.stride)
            } else {
                1
            },
        }
        .normalized()
    }

    /// Abstract subtraction.
    pub fn sub(&self, other: &SInt) -> SInt {
        self.add(&other.neg())
    }

    /// Abstract negation.
    pub fn neg(&self) -> SInt {
        SInt {
            lo: self.hi.and_then(|h| h.checked_neg()),
            hi: self.lo.and_then(|l| l.checked_neg()),
            stride: self.stride,
        }
        .normalized()
    }

    /// Abstract multiplication (precise scaling by a constant; interval
    /// product otherwise).
    pub fn mul(&self, other: &SInt) -> SInt {
        if let Some(c) = other.singleton() {
            return self.scale(c);
        }
        if let Some(c) = self.singleton() {
            return other.scale(c);
        }
        self.map2(other, |a, b| a.checked_mul(b))
    }

    fn scale(&self, c: i64) -> SInt {
        if c == 0 {
            return SInt::val(0);
        }
        let a = self.lo.and_then(|l| l.checked_mul(c));
        let b = self.hi.and_then(|h| h.checked_mul(c));
        let (lo, hi) = if c > 0 { (a, b) } else { (b, a) };
        if (self.lo.is_some() != a.is_some()) || (self.hi.is_some() != b.is_some()) {
            return SInt::top();
        }
        SInt {
            lo,
            hi,
            stride: if lo.is_some() {
                self.stride.saturating_mul(c.unsigned_abs())
            } else {
                1
            },
        }
        .normalized()
    }

    /// Abstract left shift by a singleton amount.
    pub fn shl(&self, amount: &SInt) -> SInt {
        match amount.singleton() {
            Some(s) if (0..63).contains(&s) => self.scale(1i64 << s),
            _ => SInt::top(),
        }
    }

    /// Abstract logical right shift by a singleton amount
    /// (non-negative intervals only — the generators never shift
    /// negative values right).
    pub fn lshr(&self, amount: &SInt) -> SInt {
        let s = match amount.singleton() {
            Some(s) if (0..63).contains(&s) => s as u32,
            _ => return SInt::top(),
        };
        match (self.lo, self.hi) {
            (Some(l), Some(h)) if l >= 0 => {
                let stride = if self.stride.is_multiple_of(1u64 << s) {
                    self.stride >> s
                } else {
                    1
                };
                SInt {
                    lo: Some(l >> s),
                    hi: Some(h >> s),
                    stride,
                }
                .normalized()
            }
            _ => SInt::top(),
        }
    }

    /// Abstract bitwise AND with a singleton mask.
    ///
    /// * non-negative mask `m` (the index idiom `andi x, y, 2^k-1`):
    ///   the result lies in `[0, m]`,
    /// * negative mask `!(g-1)` with `g` a power of two (the align-down
    ///   idiom): non-negative inputs round down to a multiple of `g`.
    pub fn and_mask(&self, mask: i64) -> SInt {
        if mask >= 0 {
            if let Some(c) = self.singleton() {
                return SInt::val(c & mask);
            }
            // Result ⊆ [0, mask] regardless of the input.
            match (self.lo, self.hi) {
                // If already within [0, mask], the AND is the identity.
                (Some(l), Some(h)) if l >= 0 && h <= mask => *self,
                // A power-of-two mask is a modulo: when the stride
                // divides the modulus, the residue class survives the
                // AND, so a known lower bound pins the phase and the
                // stride carries over (e.g. a byte cursor advancing by
                // 8 stays a multiple of 8 after `& (SIZE-1)`).
                (Some(l), _)
                    if self.stride > 1
                        && (mask as u64 + 1).is_power_of_two()
                        && (mask as u64 + 1).is_multiple_of(self.stride) =>
                {
                    let s = self.stride as i64;
                    let r = l.rem_euclid(s);
                    SInt {
                        lo: Some(r),
                        hi: Some(r + (mask - r) / s * s),
                        stride: self.stride,
                    }
                    .normalized()
                }
                _ => SInt::range(0, mask),
            }
        } else {
            let g = mask.wrapping_neg() as u64; // !(g-1) == -g
            if !g.is_power_of_two() {
                return SInt::top();
            }
            match (self.lo, self.hi) {
                // mask == i64::MIN gives g == 2^63, which doesn't fit
                // i64 — but every non-negative i64 is < 2^63, so the
                // align-down collapses to zero exactly.
                (Some(l), Some(_)) if l >= 0 && g > i64::MAX as u64 => SInt::val(0),
                (Some(l), Some(h)) if l >= 0 => {
                    let gi = g as i64;
                    SInt {
                        lo: Some(l / gi * gi),
                        hi: Some(h / gi * gi),
                        stride: g,
                    }
                    .normalized()
                }
                _ => SInt::top(),
            }
        }
    }

    /// Intersects with `[min, max]` (either side optional), snapping the
    /// new bounds onto the stride lattice anchored at the old `lo`.
    /// Returns `None` when the refinement is empty (infeasible edge).
    pub fn clamp(&self, min: Option<i64>, max: Option<i64>) -> Option<SInt> {
        let mut lo = match (self.lo, min) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let mut hi = match (self.hi, max) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        // Snap onto the stride lattice (values ≡ old lo mod stride).
        // All snap arithmetic runs in i128: `l - anchor` overflows i64
        // when the bounds straddle the extremes, and the snapped bound
        // itself can land outside i64 — in which case no member of the
        // residue class exists on that side and the edge is infeasible.
        if let (Some(anchor), s) = (self.lo, self.stride) {
            if s > 1 {
                let s = s as i128;
                if let Some(l) = lo {
                    let rem = (l as i128 - anchor as i128).rem_euclid(s);
                    if rem != 0 {
                        match i64::try_from(l as i128 + (s - rem)) {
                            Ok(snapped) => lo = Some(snapped),
                            Err(_) => return None,
                        }
                    }
                }
                if let Some(h) = hi {
                    let rem = (h as i128 - anchor as i128).rem_euclid(s);
                    match i64::try_from(h as i128 - rem) {
                        Ok(snapped) => hi = Some(snapped),
                        Err(_) => return None,
                    }
                }
            }
        }
        if let (Some(l), Some(h)) = (lo, hi) {
            if l > h {
                return None;
            }
        }
        Some(
            SInt {
                lo,
                hi,
                stride: self.stride.max(if self.is_bounded() { 0 } else { 1 }),
            }
            .normalized(),
        )
    }
}

impl fmt::Display for SInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(c) = self.singleton() {
            return write!(f, "{c}");
        }
        match self.lo {
            Some(l) => write!(f, "[{l}, ")?,
            None => write!(f, "[-inf, ")?,
        }
        match self.hi {
            Some(h) => write!(f, "{h}]")?,
            None => write!(f, "+inf]")?,
        }
        if self.stride > 1 {
            write!(f, "/{}", self.stride)?;
        }
        Ok(())
    }
}

/// Identifier of a static allocation site (one per `ecall` PC that
/// allocates).
pub type SiteId = usize;

/// Abstract value of one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Never written on any path (program-entry registers only).
    Undef,
    /// A number; `delta` taints differences of pointers into distinct
    /// allocations (the §V-C "jump over the redzone" stride idiom).
    Num {
        /// Value interval.
        val: SInt,
        /// Cross-allocation pointer-difference taint.
        delta: bool,
    },
    /// A pointer into allocation `site` at byte offset `off`.
    Ptr {
        /// The allocation site the pointer derives from.
        site: SiteId,
        /// Byte-offset interval from the allocation base.
        off: SInt,
        /// Offset was derived from a cross-allocation difference.
        delta: bool,
    },
    /// Function-entry `sp` plus a byte offset.
    SpRel {
        /// Byte-offset interval from the frame anchor.
        off: SInt,
    },
    /// No information.
    Top,
}

impl AbsVal {
    /// A plain (untainted) numeric value.
    pub fn num(val: SInt) -> AbsVal {
        AbsVal::Num { val, delta: false }
    }

    /// The singleton number `c`.
    pub fn val(c: i64) -> AbsVal {
        AbsVal::num(SInt::val(c))
    }

    /// Whether this value carries the cross-allocation taint.
    pub fn is_delta(&self) -> bool {
        matches!(
            self,
            AbsVal::Num { delta: true, .. } | AbsVal::Ptr { delta: true, .. }
        )
    }

    /// Least upper bound.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        use AbsVal::*;
        match (self, other) {
            (a, b) if a == b => *a,
            (Undef, Undef) => Undef,
            // Undef joined with anything defined: the register may be
            // read uninitialised — keep Undef so the lint sees it.
            (Undef, _) | (_, Undef) => Undef,
            (Num { val: a, delta: d1 }, Num { val: b, delta: d2 }) => Num {
                val: a.join(b),
                delta: *d1 || *d2,
            },
            (
                Ptr {
                    site: s1,
                    off: o1,
                    delta: d1,
                },
                Ptr {
                    site: s2,
                    off: o2,
                    delta: d2,
                },
            ) if s1 == s2 => Ptr {
                site: *s1,
                off: o1.join(o2),
                delta: *d1 || *d2,
            },
            (SpRel { off: a }, SpRel { off: b }) => SpRel { off: a.join(b) },
            _ => Top,
        }
    }

    /// Widening against the previous fixpoint iterate.
    pub fn widen_from(&self, prev: &AbsVal) -> AbsVal {
        use AbsVal::*;
        match (self, prev) {
            (Num { val: n, delta }, Num { val: p, .. }) => Num {
                val: n.widen_from(p),
                delta: *delta,
            },
            (
                Ptr {
                    site, off: n, delta, ..
                },
                Ptr {
                    site: ps, off: p, ..
                },
            ) if site == ps => Ptr {
                site: *site,
                off: n.widen_from(p),
                delta: *delta,
            },
            (SpRel { off: n }, SpRel { off: p }) => SpRel {
                off: n.widen_from(p),
            },
            _ => *self,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_tracks_strides() {
        // The heap-sweep idiom: {0} ⊔ [8, 504]/8 = [0, 504]/8.
        let head = SInt::val(0).join(&SInt {
            lo: Some(8),
            hi: Some(504),
            stride: 8,
        });
        assert_eq!(head.lo, Some(0));
        assert_eq!(head.hi, Some(504));
        assert_eq!(head.stride, 8);
        assert!(head.contains(64));
        assert!(!head.contains(65));
    }

    #[test]
    fn widening_drops_growing_bounds() {
        let prev = SInt::range(0, 10);
        let grown = SInt::range(0, 20);
        let w = grown.widen_from(&prev);
        assert_eq!(w.lo, Some(0));
        assert_eq!(w.hi, None);
        // Stable bounds survive widening.
        let same = SInt::range(0, 10).widen_from(&prev);
        assert_eq!(same, SInt::range(0, 10));
    }

    #[test]
    fn and_mask_bounds_indices() {
        // andi x, y, 8191 on an unknown value → [0, 8191].
        let masked = SInt::top().and_mask(8191);
        assert_eq!(masked, SInt::range(0, 8191));
        // Align-down of [0, 1023] by 64 → [0, 960]/64.
        let aligned = SInt::range(0, 1023).and_mask(!63);
        assert_eq!(aligned.lo, Some(0));
        assert_eq!(aligned.hi, Some(960));
        assert_eq!(aligned.stride, 64);
        // Singleton align-up tail: 63 & !63 == 0.
        assert_eq!(SInt::val(63).and_mask(!63), SInt::val(0));
    }

    #[test]
    fn clamp_refines_and_detects_infeasible_edges() {
        // blt t0, 512 taken on [-inf, +inf] → [-inf, 511].
        let taken = SInt::top().clamp(None, Some(511)).unwrap();
        assert_eq!(taken.hi, Some(511));
        // Stride-snapping: [0, 504]/8 clamped to ≥ 3 starts at 8.
        let s = SInt::val(0).join(&SInt {
            lo: Some(8),
            hi: Some(504),
            stride: 8,
        });
        let c = s.clamp(Some(3), None).unwrap();
        assert_eq!(c.lo, Some(8));
        // Infeasible: {5} clamped to ≤ 4.
        assert!(SInt::val(5).clamp(None, Some(4)).is_none());
    }

    #[test]
    fn arithmetic_scales_strides() {
        let idx = SInt::range(0, 2047); // row*8 + k
        let byte = idx.shl(&SInt::val(3));
        assert_eq!(byte.lo, Some(0));
        assert_eq!(byte.hi, Some(16376));
        assert_eq!(byte.stride, 8);
        let sum = byte.add(&SInt::val(16));
        assert_eq!(sum.lo, Some(16));
        assert_eq!(sum.hi, Some(16392));
    }

    #[test]
    fn clamp_survives_the_i64_extremes() {
        // Bounds straddling the extremes: `l - anchor` would overflow
        // i64 inside the stride snap.
        let wide = SInt {
            lo: Some(i64::MIN),
            hi: Some(i64::MAX),
            stride: 8,
        };
        // Members are ≡ i64::MIN ≡ 0 (mod 8); the next one at or above
        // i64::MAX - 10 is i64::MAX - 7.
        let c = wide.clamp(Some(i64::MAX - 10), None).unwrap();
        assert_eq!(c.lo, Some(i64::MAX - 7));
        // And above i64::MAX - 3 no member exists at all: the snapped
        // bound would pass i64::MAX, so the edge is infeasible.
        assert!(wide.clamp(Some(i64::MAX - 3), None).is_none());
        // Snapping the lower bound up past i64::MAX: no member exists.
        let high = SInt {
            lo: Some(i64::MAX - 9),
            hi: Some(i64::MAX),
            stride: 16,
        };
        assert!(high.clamp(Some(i64::MAX - 5), None).is_none());
        // Snapping the upper bound down past i64::MIN: no member either.
        let low = SInt {
            lo: Some(i64::MIN + 7),
            hi: Some(i64::MIN + 7),
            stride: 0,
        };
        assert!(low.clamp(None, Some(i64::MIN + 3)).is_none());
    }

    #[test]
    fn contains_is_exact_across_the_full_range() {
        let wide = SInt {
            lo: Some(i64::MIN),
            hi: Some(i64::MAX),
            stride: 2,
        };
        // i64::MIN is even and i64::MAX is odd: membership must not
        // wrap. (A raw `v - l` here overflows and flips the answer.)
        assert!(wide.contains(i64::MIN));
        assert!(!wide.contains(i64::MAX));
        assert!(wide.contains(0));
    }

    #[test]
    fn and_mask_handles_the_sign_bit_mask() {
        // mask == i64::MIN is align-down by 2^63: every non-negative
        // value collapses to 0.
        let v = SInt::range(0, 123_456);
        assert_eq!(v.and_mask(i64::MIN), SInt::val(0));
        // Negative inputs stay Top (the idiom only covers align-down of
        // non-negative cursors).
        assert_eq!(SInt::range(-5, 5).and_mask(i64::MIN), SInt::top());
    }

    #[test]
    fn arithmetic_saturates_to_top_at_the_extremes() {
        let max = SInt::val(i64::MAX);
        assert_eq!(max.add(&SInt::val(1)), SInt::top());
        // Negating i64::MIN has no i64 representation: the bound is
        // dropped rather than wrapped.
        let min = SInt {
            lo: Some(i64::MIN),
            hi: Some(0),
            stride: 1,
        };
        let n = min.neg();
        assert_eq!(n.lo, Some(0));
        assert_eq!(n.hi, None);
        assert_eq!(SInt::val(i64::MIN).mul(&SInt::val(-1)), SInt::top());
    }

    #[test]
    fn joins_of_values_respect_sites_and_taint() {
        let p1 = AbsVal::Ptr {
            site: 0,
            off: SInt::val(0),
            delta: false,
        };
        let p2 = AbsVal::Ptr {
            site: 0,
            off: SInt::val(8),
            delta: true,
        };
        match p1.join(&p2) {
            AbsVal::Ptr { site, off, delta } => {
                assert_eq!(site, 0);
                assert!(delta);
                assert_eq!(off.lo, Some(0));
                assert_eq!(off.hi, Some(8));
            }
            other => panic!("{other:?}"),
        }
        let p3 = AbsVal::Ptr {
            site: 1,
            off: SInt::val(0),
            delta: false,
        };
        assert_eq!(p1.join(&p3), AbsVal::Top);
        assert_eq!(p1.join(&AbsVal::Undef), AbsVal::Undef);
    }
}
