//! Control-flow graph over a [`Program`]: basic blocks, typed successor
//! edges, and a per-function partition.
//!
//! Functions are recovered syntactically: the program entry plus every
//! `jal` link target (`call f`) starts a function; `jalr zero, 0(ra)`
//! (`ret`) ends one. Calls are *intraprocedural* edges to the return
//! point — the dataflow analysis treats callees as opaque, which keeps
//! the verifier modular and lets it handle recursion (`sjeng`'s move
//! search) without unrolling.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rest_isa::{Inst, Program, Reg, PC_STEP};

/// One successor edge of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Succ {
    /// Fallthrough to the next block.
    Fall(u64),
    /// Conditional branch taken.
    Taken(u64),
    /// Unconditional jump (`j` / `jal zero`).
    Jump(u64),
    /// Call: control continues at `ret` after the callee returns.
    CallReturn {
        /// Callee entry PC.
        callee: u64,
        /// Return point (the instruction after the call).
        ret: u64,
    },
    /// Function return (`jalr zero, 0(ra)`).
    Ret,
    /// Program exit (`halt` or `ecall exit`).
    Exit,
    /// Indirect jump the verifier cannot resolve (`jalr` through a
    /// computed register).
    Indirect,
    /// Execution runs past the last instruction of the code segment.
    FallsOffEnd,
}

/// A maximal straight-line instruction sequence.
#[derive(Debug, Clone)]
pub struct Block {
    /// PC of the first instruction.
    pub start: u64,
    /// PC one past the last instruction.
    pub end: u64,
    /// Typed successors.
    pub succs: Vec<Succ>,
}

impl Block {
    /// PCs of the block's instructions.
    pub fn pcs(&self) -> impl Iterator<Item = u64> {
        (self.start..self.end).step_by(PC_STEP as usize)
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        ((self.end - self.start) / PC_STEP) as usize
    }

    /// Whether the block holds no instructions (never true for built
    /// CFGs; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A recovered function: an entry block plus every block reachable from
/// it along intraprocedural edges.
#[derive(Debug, Clone)]
pub struct Function {
    /// Entry PC (program entry or a `call` target).
    pub entry: u64,
    /// Member block indices, in ascending start-PC order.
    pub blocks: Vec<usize>,
}

/// The control-flow graph of one program.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in ascending start-PC order.
    pub blocks: Vec<Block>,
    /// Start PC → block index.
    pub index: BTreeMap<u64, usize>,
    /// Recovered functions; the first is always the program entry.
    pub functions: Vec<Function>,
    /// All `call` target PCs.
    pub call_targets: BTreeSet<u64>,
}

impl Cfg {
    /// Builds the CFG of `program`.
    pub fn build(program: &Program) -> Cfg {
        let base = Program::CODE_BASE;
        let end = base + program.len() as u64 * PC_STEP;
        let insts = program.instructions();

        // Pass 1: leaders and call targets.
        let mut leaders: BTreeSet<u64> = BTreeSet::new();
        let mut call_targets = BTreeSet::new();
        if !insts.is_empty() {
            leaders.insert(program.entry());
        }
        for (i, inst) in insts.iter().enumerate() {
            let pc = base + i as u64 * PC_STEP;
            let next = pc + PC_STEP;
            match *inst {
                Inst::Branch { target, .. } => {
                    let t = program.label_pc(target);
                    if t < end {
                        leaders.insert(t);
                    }
                    if next < end {
                        leaders.insert(next);
                    }
                }
                Inst::Jal { dst, target } => {
                    let t = program.label_pc(target);
                    if t < end {
                        leaders.insert(t);
                    }
                    if dst != Reg::ZERO && t < end {
                        call_targets.insert(t);
                    }
                    if next < end {
                        leaders.insert(next);
                    }
                }
                // After a jalr/halt/ecall a new block starts: `ecall
                // exit` terminates, other ecalls fall through, but
                // splitting after every ecall keeps service-number
                // resolution block-local.
                Inst::Jalr { .. } | Inst::Halt | Inst::Ecall if next < end => {
                    leaders.insert(next);
                }
                _ => {}
            }
        }

        // Pass 2: blocks and successors.
        let leaders: Vec<u64> = leaders.into_iter().collect();
        let mut blocks = Vec::new();
        let mut index = BTreeMap::new();
        for (bi, &start) in leaders.iter().enumerate() {
            let stop = leaders.get(bi + 1).copied().unwrap_or(end);
            let last_pc = stop - PC_STEP;
            let last = program.fetch(last_pc).expect("pc in range");
            let jump_to = |t: u64| if t < end { t } else { end };
            let succs = match last {
                Inst::Branch { target, .. } => {
                    let t = program.label_pc(target);
                    let mut s = vec![Succ::Taken(jump_to(t))];
                    if stop < end {
                        s.push(Succ::Fall(stop));
                    } else {
                        s.push(Succ::FallsOffEnd);
                    }
                    s
                }
                Inst::Jal { dst, target } => {
                    let t = jump_to(program.label_pc(target));
                    if dst == Reg::ZERO {
                        vec![Succ::Jump(t)]
                    } else if stop < end {
                        vec![Succ::CallReturn { callee: t, ret: stop }]
                    } else {
                        vec![Succ::FallsOffEnd]
                    }
                }
                Inst::Jalr { dst, base: b, offset } => {
                    if dst == Reg::ZERO && b == Reg::RA && offset == 0 {
                        vec![Succ::Ret]
                    } else {
                        vec![Succ::Indirect]
                    }
                }
                Inst::Halt => vec![Succ::Exit],
                Inst::Ecall => {
                    if resolve_a7(program, last_pc) == Some(rest_isa::EcallNum::Exit as i64) {
                        vec![Succ::Exit]
                    } else if stop < end {
                        vec![Succ::Fall(stop)]
                    } else {
                        vec![Succ::FallsOffEnd]
                    }
                }
                _ => {
                    if stop < end {
                        vec![Succ::Fall(stop)]
                    } else {
                        vec![Succ::FallsOffEnd]
                    }
                }
            };
            index.insert(start, blocks.len());
            blocks.push(Block {
                start,
                end: stop,
                succs,
            });
        }

        // Jump targets at `end` (past the last instruction) appear as
        // Jump(end)/Taken(end); map them to FallsOffEnd.
        for b in &mut blocks {
            for s in &mut b.succs {
                match *s {
                    Succ::Jump(t) | Succ::Taken(t) if t >= end && end > base => {
                        *s = Succ::FallsOffEnd;
                    }
                    _ => {}
                }
            }
        }

        // Pass 3: function partition (BFS along intraprocedural edges).
        let mut functions = Vec::new();
        if !insts.is_empty() {
            let mut entries: Vec<u64> = vec![program.entry()];
            entries.extend(call_targets.iter().copied().filter(|t| *t != program.entry()));
            for entry in entries {
                let mut member = BTreeSet::new();
                let mut queue = VecDeque::new();
                if let Some(&bi) = index.get(&entry) {
                    queue.push_back(bi);
                }
                while let Some(bi) = queue.pop_front() {
                    if !member.insert(bi) {
                        continue;
                    }
                    for s in &blocks[bi].succs {
                        let next = match *s {
                            Succ::Fall(t) | Succ::Taken(t) | Succ::Jump(t) => Some(t),
                            Succ::CallReturn { ret, .. } => Some(ret),
                            _ => None,
                        };
                        if let Some(t) = next {
                            if let Some(&ni) = index.get(&t) {
                                if !member.contains(&ni) {
                                    queue.push_back(ni);
                                }
                            }
                        }
                    }
                }
                functions.push(Function {
                    entry,
                    blocks: member.into_iter().collect(),
                });
            }
        }

        Cfg {
            blocks,
            index,
            functions,
            call_targets,
        }
    }

    /// Block indices never reached from any function entry.
    pub fn unreachable_blocks(&self) -> Vec<usize> {
        let mut reached: BTreeSet<usize> = BTreeSet::new();
        for f in &self.functions {
            reached.extend(f.blocks.iter().copied());
        }
        (0..self.blocks.len()).filter(|i| !reached.contains(i)).collect()
    }
}

/// Resolves the `a7` service number at an `ecall` PC by scanning
/// backwards over the straight-line prefix (`ProgramBuilder::ecall`
/// always emits `li a7, n` immediately before the `ecall`).
pub fn resolve_a7(program: &Program, ecall_pc: u64) -> Option<i64> {
    let mut pc = ecall_pc;
    while pc > Program::CODE_BASE {
        pc -= PC_STEP;
        match program.fetch(pc)? {
            Inst::Li { dst, imm } if dst == Reg::A7 => return Some(imm),
            // Any other write to a7, or any control transfer, ends the
            // scan inconclusively.
            Inst::Alu { dst, .. } | Inst::AluImm { dst, .. } | Inst::Load { dst, .. }
                if dst == Reg::A7 =>
            {
                return None;
            }
            Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Halt
            | Inst::Ecall => return None,
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rest_isa::{EcallNum, ProgramBuilder};

    fn block_starting(cfg: &Cfg, pc: u64) -> &Block {
        &cfg.blocks[cfg.index[&pc]]
    }

    #[test]
    fn branch_makes_taken_and_fallthrough_edges() {
        let mut p = ProgramBuilder::new();
        let top = p.label_here();
        p.addi(Reg::T0, Reg::T0, -1); // 0x10000
        p.bne(Reg::T0, Reg::ZERO, top); // 0x10004
        p.halt(); // 0x10008
        let prog = p.build();
        let cfg = Cfg::build(&prog);
        assert_eq!(cfg.blocks.len(), 2);
        let b0 = block_starting(&cfg, 0x1_0000);
        assert_eq!(b0.len(), 2);
        assert_eq!(
            b0.succs,
            vec![Succ::Taken(0x1_0000), Succ::Fall(0x1_0008)]
        );
        assert_eq!(block_starting(&cfg, 0x1_0008).succs, vec![Succ::Exit]);
    }

    #[test]
    fn call_edge_returns_to_the_next_instruction() {
        let mut p = ProgramBuilder::new();
        let f = p.new_label();
        let done = p.new_label();
        p.call(f); // 0x10000
        p.j(done); // 0x10004
        p.bind(f);
        p.ret(); // 0x10008
        p.bind(done);
        p.halt(); // 0x1000c
        let prog = p.build();
        let cfg = Cfg::build(&prog);
        assert_eq!(
            block_starting(&cfg, 0x1_0000).succs,
            vec![Succ::CallReturn {
                callee: 0x1_0008,
                ret: 0x1_0004
            }]
        );
        assert_eq!(block_starting(&cfg, 0x1_0008).succs, vec![Succ::Ret]);
        assert!(cfg.call_targets.contains(&0x1_0008));
        // Two functions: main (entry) and f.
        assert_eq!(cfg.functions.len(), 2);
        assert_eq!(cfg.functions[0].entry, prog.entry());
        assert_eq!(cfg.functions[1].entry, 0x1_0008);
        // f's body is exactly the ret block.
        assert_eq!(cfg.functions[1].blocks, vec![cfg.index[&0x1_0008]]);
    }

    #[test]
    fn single_instruction_blocks() {
        let mut p = ProgramBuilder::new();
        let skip = p.new_label();
        p.beq(Reg::T0, Reg::ZERO, skip); // block 1: one branch
        p.nop(); // block 2: one nop (fallthrough)
        p.bind(skip);
        p.halt(); // block 3: one halt
        let prog = p.build();
        let cfg = Cfg::build(&prog);
        assert_eq!(cfg.blocks.len(), 3);
        assert!(cfg.blocks.iter().all(|b| b.len() == 1 && !b.is_empty()));
    }

    #[test]
    fn non_terminator_ending_falls_off_the_end() {
        let mut p = ProgramBuilder::new();
        p.nop();
        p.addi(Reg::T0, Reg::T0, 1);
        let prog = p.build();
        let cfg = Cfg::build(&prog);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].succs, vec![Succ::FallsOffEnd]);
    }

    #[test]
    fn ecall_exit_terminates_but_other_ecalls_fall_through() {
        let mut p = ProgramBuilder::new();
        p.li(Reg::A0, 64);
        p.ecall(EcallNum::Malloc);
        p.li(Reg::A0, 0);
        p.ecall(EcallNum::Exit);
        let prog = p.build();
        let cfg = Cfg::build(&prog);
        let first = &cfg.blocks[0];
        assert!(matches!(first.succs[..], [Succ::Fall(_)]));
        let last = cfg.blocks.last().unwrap();
        assert_eq!(last.succs, vec![Succ::Exit]);
        // The a7 resolver sees through the li/ecall pairs.
        let exit_pc = last.end - PC_STEP;
        assert_eq!(resolve_a7(&prog, exit_pc), Some(EcallNum::Exit as i64));
    }

    #[test]
    fn unreachable_blocks_are_reported() {
        let mut p = ProgramBuilder::new();
        let done = p.new_label();
        p.j(done);
        p.nop(); // dead
        p.nop(); // dead
        p.bind(done);
        p.halt();
        let prog = p.build();
        let cfg = Cfg::build(&prog);
        let dead = cfg.unreachable_blocks();
        assert_eq!(dead.len(), 1);
        assert_eq!(cfg.blocks[dead[0]].start, 0x1_0004);
    }

    #[test]
    fn jump_to_code_end_is_falls_off_end() {
        let mut p = ProgramBuilder::new();
        let end = p.new_label();
        p.j(end);
        p.bind(end);
        let prog = p.build();
        let cfg = Cfg::build(&prog);
        assert_eq!(cfg.blocks[0].succs, vec![Succ::FallsOffEnd]);
    }
}
