//! Deterministic JSON reports for `restlint`.
//!
//! The schema mirrors the observability conventions from `rest-obs`:
//! insertion-ordered objects, stable sort orders, no floats, so that two
//! runs over the same corpus produce byte-identical `results/lint.json`
//! files (CI diffs them).

use rest_obs::Json;

use crate::analysis::{Finding, Severity, VerifyResult};

/// Schema version of the lint report; bump on breaking changes.
pub const REPORT_SCHEMA: u32 = 1;

/// The verdict for one linted program.
#[derive(Debug, Clone)]
pub struct ProgramReport {
    /// Program name (workload row label or attack name).
    pub name: String,
    /// `"workload"` or `"attack"`.
    pub kind: &'static str,
    /// The verification result.
    pub result: VerifyResult,
}

impl ProgramReport {
    /// Highest severity present, if any finding exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.result.findings.iter().map(|f| f.severity).max()
    }

    /// A workload is clean when it has no findings at all.
    pub fn is_clean(&self) -> bool {
        self.result.findings.is_empty()
    }
}

fn finding_json(f: &Finding) -> Json {
    Json::obj(vec![
        ("pc", Json::UInt(f.pc)),
        ("pass", Json::Str(f.pass.to_string())),
        ("severity", Json::Str(f.severity.name().to_string())),
        ("message", Json::Str(f.message.clone())),
    ])
}

fn program_json(p: &ProgramReport) -> Json {
    Json::obj(vec![
        ("name", Json::Str(p.name.clone())),
        ("kind", Json::Str(p.kind.to_string())),
        ("insts", Json::UInt(p.result.insts as u64)),
        ("blocks", Json::UInt(p.result.blocks as u64)),
        ("functions", Json::UInt(p.result.functions as u64)),
        ("alloc_sites", Json::UInt(p.result.sites as u64)),
        (
            "findings",
            Json::Arr(p.result.findings.iter().map(finding_json).collect()),
        ),
    ])
}

/// Builds the full lint report. `differential` carries the outcome of
/// the emulator cross-check when it ran (`None` = not requested).
pub fn report_json(programs: &[ProgramReport], differential: Option<&[DiffOutcome]>) -> Json {
    let total: usize = programs.iter().map(|p| p.result.findings.len()).sum();
    let must_trap: usize = programs
        .iter()
        .flat_map(|p| p.result.findings.iter())
        .filter(|f| f.severity == Severity::MustTrap)
        .count();
    let mut members = vec![
        ("schema", Json::UInt(REPORT_SCHEMA as u64)),
        ("tool", Json::Str("restlint".to_string())),
        (
            "summary",
            Json::obj(vec![
                ("programs", Json::UInt(programs.len() as u64)),
                ("findings", Json::UInt(total as u64)),
                ("must_trap", Json::UInt(must_trap as u64)),
            ]),
        ),
        (
            "programs",
            Json::Arr(programs.iter().map(program_json).collect()),
        ),
    ];
    if let Some(outcomes) = differential {
        members.push((
            "differential",
            Json::Arr(
                outcomes
                    .iter()
                    .map(|d| {
                        Json::obj(vec![
                            ("name", Json::Str(d.name.clone())),
                            ("pc", Json::UInt(d.pc)),
                            ("confirmed", Json::Bool(d.confirmed)),
                            ("outcome", Json::Str(d.outcome.clone())),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    Json::obj(members)
}

/// One emulator cross-check of a static must-trap verdict.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// Program the verdict came from.
    pub name: String,
    /// PC of the must-trap finding.
    pub pc: u64,
    /// Whether the run confirmed the verdict (a REST violation, or for
    /// attack programs any detected policy violation, was raised).
    pub confirmed: bool,
    /// Short description of what the emulator actually did.
    pub outcome: String,
}
