//! Sound static check elision.
//!
//! REST (and ASan) pay a per-access cost for every checked load and
//! store. Many of those checks can never fire: the access provably stays
//! inside a live, never-freed allocation on every path, or an identical
//! covering check already executed at a dominating PC with nothing in
//! between that could have armed the memory. This pass proves such
//! facts on top of the `analysis` fixpoint and emits a
//! [`rest_core::ElisionMap`] the emulator consumes to skip the check
//! machinery at those PCs.
//!
//! # Soundness model
//!
//! A skipped check is sound iff the access can never touch token-filled
//! (armed) memory. Tokens enter the address space through exactly four
//! channels the static model tracks:
//!
//! 1. **guest `arm` instructions** — collected flow-insensitively into
//!    global arm sets (absolute addresses, per-site heap offsets,
//!    per-function frame offsets). One unresolvable `arm` anywhere
//!    disables elision for the whole program.
//! 2. **allocator redzones** — placed around every `malloc`-family
//!    chunk; staying strictly inside `[0, usable_size)` avoids them and
//!    the §V-C alignment padding.
//! 3. **quarantined frees** — freed chunks are token-filled. The pass
//!    uses the *monotone* may-freed set (a site ever freed anywhere is
//!    permanently suspect), not the flow-sensitive freed map, because a
//!    stale alias can dangle into a site that was freed and reallocated.
//! 4. **frame redzones** — armed at `sp`-relative offsets; an access
//!    whose whole extent stays inside the function's own frame and
//!    clear of its own frame arms cannot reach them (an ancestor's arms
//!    sit at strictly higher addresses, and a callee leaking an armed
//!    frame to its return is an `arm-balance` error that trips the
//!    global precondition).
//!
//! Two effects are *assumed* away and documented in `DESIGN.md`: a
//! guest store whose data happens to equal the runtime-seeded token
//! arms a line behind the model's back (probability ≈ 2⁻⁵¹²), and the
//! simulated stack never grows down into the heap arena (the emulator
//! layout keeps them > 700 MiB apart).
//!
//! Any finding at `Severity::Error` or above disables elision outright:
//! programs that already violate the ARM/DISARM contract (every in-tree
//! attack with a detectable bug) get an **empty** map, which is what the
//! attack-coverage differential gate machine-checks.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rest_core::{ElideClass, ElisionMap};
use rest_isa::{Inst, Program, Reg};
use rest_obs::json::Json;
use rest_runtime::{HEAP_BASE, HEAP_SPAN, SHADOW_BASE, STACK_TOP, STATIC_BASE};

use crate::analysis::{AllocKind, Analyzer, Loc, Severity, State, VerifyResult, GRANULE};
use crate::dom::DomTree;
use crate::domain::AbsVal;

/// Artifact schema identifier for serialized elision maps.
pub const ELIDE_SCHEMA: &str = "rest-elide/v1";

/// Largest `sp`-relative magnitude the frame-safety argument accepts.
/// Frames beyond 1 MiB would undermine the stack-region reasoning, so
/// any arm or access outside this window disables stack elision.
const FRAME_SANE: i64 = 1 << 20;

/// Which runtime checking scheme the elision map is produced for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElideScheme {
    /// REST token checks (content-detected on cache fill).
    Rest,
    /// ASan shadow-memory checks.
    Asan,
}

impl ElideScheme {
    /// Stable serialization name.
    pub fn name(self) -> &'static str {
        match self {
            ElideScheme::Rest => "rest",
            ElideScheme::Asan => "asan",
        }
    }
}

/// Everything the elision pass proved about one program.
#[derive(Debug, Clone)]
pub struct ElisionReport {
    /// PC → class for every elidable access.
    pub map: ElisionMap,
    /// Total load/store PCs in the program (the elision universe).
    pub access_pcs: usize,
    /// Accesses proven in-bounds of live memory on every path.
    pub must_be_safe: usize,
    /// Accesses covered by a dominating identical check.
    pub redundant: usize,
    /// Accesses that keep their runtime check.
    pub may_fault: usize,
    /// Whether the global preconditions held; `false` forces an empty
    /// map (the verifier found an error, or an arm was unresolvable).
    pub preconditions_ok: bool,
    /// Findings at `Severity::Error`+ that vetoed elision.
    pub blocking_findings: usize,
    /// The scheme the map targets.
    pub scheme: ElideScheme,
}

impl ElisionReport {
    /// Fraction of checks statically elided, in percent.
    pub fn elide_pct(&self) -> f64 {
        if self.access_pcs == 0 {
            0.0
        } else {
            100.0 * self.map.len() as f64 / self.access_pcs as f64
        }
    }

    /// Renders the `rest-elide/v1` artifact document.
    pub fn to_json(&self, program: &str) -> Json {
        let entries: Vec<Json> = self
            .map
            .iter()
            .map(|(pc, class)| {
                Json::obj(vec![
                    ("pc", Json::UInt(pc)),
                    ("class", Json::Str(class.name().to_string())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::Str(ELIDE_SCHEMA.to_string())),
            ("program", Json::Str(program.to_string())),
            ("scheme", Json::Str(self.scheme.name().to_string())),
            ("preconditions_ok", Json::Bool(self.preconditions_ok)),
            ("access_pcs", Json::UInt(self.access_pcs as u64)),
            ("elided", Json::UInt(self.map.len() as u64)),
            ("must_be_safe", Json::UInt(self.must_be_safe as u64)),
            ("redundant", Json::UInt(self.redundant as u64)),
            ("may_fault", Json::UInt(self.may_fault as u64)),
            ("entries", Json::Arr(entries)),
        ])
    }
}

/// Runs the verifier, then proves per-PC elision verdicts for `program`
/// under `scheme`. The returned map is empty whenever the soundness
/// preconditions fail.
pub fn elide_program(program: &Program, scheme: ElideScheme) -> ElisionReport {
    let mut an = Analyzer::new(program);
    an.keep_states = true;
    let result = an.execute();
    elide_with(&mut an, &result, scheme)
}

/// As [`elide_program`], reusing an analyzer that already ran with
/// `keep_states` set (avoids re-running the fixpoint when the caller
/// also wants the lint findings).
pub(crate) fn elide_with(
    an: &mut Analyzer<'_>,
    result: &VerifyResult,
    scheme: ElideScheme,
) -> ElisionReport {
    let access_pcs = an
        .program
        .instructions()
        .iter()
        .filter(|i| matches!(i, Inst::Load { .. } | Inst::Store { .. }))
        .count();
    let blocking = result
        .findings
        .iter()
        .filter(|f| f.severity >= Severity::Error)
        .count();

    let globals = Globals::collect(an, scheme);
    let preconditions_ok = blocking == 0 && !an.unknown_arm && globals.arms_sane;

    let mut report = ElisionReport {
        map: ElisionMap::new(),
        access_pcs,
        must_be_safe: 0,
        redundant: 0,
        may_fault: access_pcs,
        preconditions_ok,
        blocking_findings: blocking,
        scheme,
    };
    if !preconditions_ok {
        return report;
    }

    // Per-PC verdicts, merged across every function whose fixpoint can
    // reach the PC (blocks can be shared between recovered functions; a
    // PC is elided only if *every* owning context proves it, and takes
    // the weaker class when they disagree).
    let mut verdicts: BTreeMap<u64, Option<ElideClass>> = BTreeMap::new();
    for fi in an.saved_states.keys().copied().collect::<Vec<_>>() {
        classify_function(an, fi, scheme, &globals, &mut verdicts);
    }

    for (pc, verdict) in verdicts {
        if let Some(class) = verdict {
            report.map.insert(pc, class);
        }
    }
    report.must_be_safe = report.map.count_of(ElideClass::MustBeSafe);
    report.redundant = report.map.count_of(ElideClass::Redundant);
    report.may_fault = access_pcs - report.map.len();
    report
}

// ---------------------------------------------------------------------
// Global token geography
// ---------------------------------------------------------------------

/// Flow-insensitive facts about where tokens can live, derived from the
/// analyzer's whole-program arm/free collections.
struct Globals {
    /// Some absolute-address arm's granule intersects the heap arena.
    abs_arm_in_heap: bool,
    /// Some absolute-address arm's granule intersects `[0, HEAP_BASE)`.
    abs_arm_below_heap: bool,
    /// Some `sbrk` site has a guest arm (its concrete static address is
    /// unknown, poisoning the whole sub-heap region).
    sbrk_guest_arm: bool,
    /// Any function arms a frame offset anywhere (blocks absolute
    /// stack-region elision: non-main frame addresses are unknown).
    any_sp_arm: bool,
    /// Every arm offset stayed inside its chunk / a sane frame window;
    /// a wild arm could land anywhere, so it disables elision globally.
    arms_sane: bool,
}

impl Globals {
    fn collect(an: &Analyzer<'_>, _scheme: ElideScheme) -> Globals {
        let heap_lo = HEAP_BASE as i64;
        let heap_hi = (HEAP_BASE + HEAP_SPAN) as i64;
        let g = GRANULE as i64;
        let abs_arm_in_heap = an
            .abs_arms
            .iter()
            .any(|&a| (a as i64) < heap_hi && a as i64 + g > heap_lo);
        let abs_arm_below_heap = an.abs_arms.iter().any(|&a| (a as i64) < heap_lo);
        let sbrk_guest_arm = an
            .heap_arm_sites
            .iter()
            .any(|&s| an.sites[s].kind == AllocKind::Sbrk);
        let any_sp_arm = an.sp_arms.values().any(|offs| !offs.is_empty());

        // Sanity: every frame arm within the 1 MiB window, and every
        // heap arm inside its own chunk's padded extent (a wild offset
        // could place a token in any region).
        let sp_sane = an
            .sp_arms
            .values()
            .flatten()
            .all(|&o| o.abs() < FRAME_SANE);
        let heap_sane = an
            .arm_records
            .iter()
            .filter_map(|&(_, loc, _)| match loc {
                Loc::Heap(site, o) => Some((site, o)),
                _ => None,
            })
            .all(|(site, o)| match an.sites[site].padded_size() {
                Some(p) => o >= 0 && o + g <= p as i64,
                None => false,
            });
        Globals {
            abs_arm_in_heap,
            abs_arm_below_heap,
            sbrk_guest_arm,
            any_sp_arm,
            arms_sane: sp_sane && heap_sane,
        }
    }
}

// ---------------------------------------------------------------------
// Per-function classification
// ---------------------------------------------------------------------

/// One available-check fact: bytes `[reg + lo, reg + hi_w)` were proven
/// token-free by the check at `gen` (PC, block), the base register has
/// not been redefined since, and nothing in between could have armed
/// memory. `gen` is `None` when paths disagree on the generating check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fact {
    lo: i64,
    hi_w: i64,
    gen: Option<(u64, usize)>,
}

type Facts = BTreeMap<usize, Fact>;

/// Optional per-access reporting callback for pass 3: receives each
/// non-`MustBeSafe` access PC and the generating check that covers it.
type CoverSink<'a> = Option<&'a mut dyn FnMut(u64, Option<(u64, usize)>)>;

/// Must-intersection of two fact maps (the availability meet).
fn meet(a: &Facts, b: &Facts) -> Facts {
    let mut out = Facts::new();
    for (reg, fa) in a {
        let Some(fb) = b.get(reg) else { continue };
        let lo = fa.lo.max(fb.lo);
        let hi_w = fa.hi_w.min(fb.hi_w);
        if lo >= hi_w {
            continue;
        }
        let gen = if fa.gen == fb.gen { fa.gen } else { None };
        out.insert(*reg, Fact { lo, hi_w, gen });
    }
    out
}

fn classify_function(
    an: &mut Analyzer<'_>,
    fi: usize,
    scheme: ElideScheme,
    globals: &Globals,
    verdicts: &mut BTreeMap<u64, Option<ElideClass>>,
) {
    let func = an.cfg.functions[fi].clone();
    let states = an.saved_states.get(&fi).cloned().unwrap_or_default();
    let Some(&entry_bi) = an.cfg.index.get(&func.entry) else {
        return;
    };
    if !states.contains_key(&entry_bi) {
        return;
    }
    let is_main = fi == 0;
    let dom = DomTree::build(&an.cfg, &func);
    let sp_arms: BTreeSet<i64> = an.sp_arms.get(&fi).cloned().unwrap_or_default();

    // Pass 1: per-PC MustBeSafe verdicts from the abstract states.
    let mut must_safe: BTreeMap<u64, bool> = BTreeMap::new();
    for (&bi, in_state) in &states {
        let block = an.cfg.blocks[bi].clone();
        let mut st = in_state.clone();
        for pc in block.pcs() {
            let inst = an.program.fetch(pc).expect("pc in range");
            if let Some((base, offset, width)) = access_of(&inst) {
                let safe = access_must_be_safe(
                    an,
                    scheme,
                    globals,
                    is_main,
                    &sp_arms,
                    &st.get(base),
                    offset,
                    width,
                );
                must_safe.insert(pc, safe);
            }
            an.transfer_inst(pc, &inst, &mut st, is_main, false);
        }
    }

    // Pass 2: forward must-availability of checks over the same blocks.
    // Facts survive a join only when present (with a compatible range)
    // on every path, so a surviving generator necessarily lies on every
    // entry→access path; the dominator check below is the structural
    // counterpart of that argument.
    let mut in_facts: BTreeMap<usize, Facts> = BTreeMap::new();
    in_facts.insert(entry_bi, Facts::new());
    let mut work: VecDeque<usize> = VecDeque::new();
    work.push_back(entry_bi);
    while let Some(bi) = work.pop_front() {
        let facts = in_facts[&bi].clone();
        for (succ_bi, out) in walk_block(an, bi, &states, facts, scheme, &must_safe, is_main, None)
        {
            if !states.contains_key(&succ_bi) {
                continue; // statically unreachable in this context
            }
            let updated = match in_facts.get(&succ_bi) {
                None => out,
                Some(prev) => {
                    let met = meet(prev, &out);
                    if &met == prev {
                        continue;
                    }
                    met
                }
            };
            in_facts.insert(succ_bi, updated);
            if !work.contains(&succ_bi) {
                work.push_back(succ_bi);
            }
        }
    }

    // Pass 3: final verdicts from the stabilized facts.
    let mut redundant: BTreeMap<u64, bool> = BTreeMap::new();
    for (&bi, facts) in &in_facts.clone() {
        let mut sink = |pc: u64, covered_by: Option<(u64, usize)>| {
            let ok = covered_by.is_some_and(|(_, gbi)| dom.dominates(gbi, bi));
            redundant.insert(pc, ok);
        };
        walk_block(
            an,
            bi,
            &states,
            facts.clone(),
            scheme,
            &must_safe,
            is_main,
            Some(&mut sink),
        );
    }

    for (&pc, &safe) in &must_safe {
        let verdict = if safe {
            Some(ElideClass::MustBeSafe)
        } else if redundant.get(&pc) == Some(&true) {
            Some(ElideClass::Redundant)
        } else {
            None
        };
        verdicts
            .entry(pc)
            .and_modify(|v| {
                *v = match (*v, verdict) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                }
            })
            .or_insert(verdict);
    }
}

/// The `(base, offset, width)` of a load/store, if `inst` is one.
fn access_of(inst: &Inst) -> Option<(Reg, i64, u64)> {
    match *inst {
        Inst::Load {
            base, offset, size, ..
        } => Some((base, offset, size.bytes())),
        Inst::Store {
            base, offset, size, ..
        } => Some((base, offset, size.bytes())),
        _ => None,
    }
}

/// Walks one block: replays the abstract state from its saved in-state
/// while tracking check availability. Returns the per-successor fact
/// maps. When `sink` is given, each non-MustBeSafe access reports the
/// generating check that covers it (or `None`).
#[allow(clippy::too_many_arguments)]
fn walk_block(
    an: &mut Analyzer<'_>,
    bi: usize,
    states: &BTreeMap<usize, State>,
    mut facts: Facts,
    scheme: ElideScheme,
    must_safe: &BTreeMap<u64, bool>,
    is_main: bool,
    mut sink: CoverSink<'_>,
) -> Vec<(usize, Facts)> {
    let block = an.cfg.blocks[bi].clone();
    let mut st = states[&bi].clone();
    for pc in block.pcs() {
        let inst = an.program.fetch(pc).expect("pc in range");
        match inst {
            Inst::Load {
                dst, base, offset, size, ..
            } => {
                step_access(&mut facts, must_safe, pc, bi, base, offset, size.bytes(), &mut sink);
                facts.remove(&dst.index());
            }
            Inst::Store {
                base, offset, size, ..
            } => {
                step_access(&mut facts, must_safe, pc, bi, base, offset, size.bytes(), &mut sink);
                // Under ASan a store that might land in shadow memory can
                // re-poison bytes a previous check proved clean.
                if scheme == ElideScheme::Asan
                    && !store_clear_of_shadow(&st.get(base), offset, size.bytes())
                {
                    facts.clear();
                }
            }
            Inst::Li { dst, .. }
            | Inst::Alu { dst, .. }
            | Inst::AluImm { dst, .. }
            | Inst::Jal { dst, .. }
            | Inst::Jalr { dst, .. } => {
                facts.remove(&dst.index());
            }
            // An arm/disarm mutates token state; an ecall can allocate,
            // free (quarantine-fill), or bulk-copy — all can arm bytes.
            Inst::Arm { .. } | Inst::Disarm { .. } | Inst::Ecall => facts.clear(),
            Inst::Branch { .. } | Inst::Halt | Inst::Nop => {}
        }
        an.transfer_inst(pc, &inst, &mut st, is_main, false);
    }

    let mut outs = Vec::new();
    for succ in &block.succs {
        match *succ {
            crate::cfg::Succ::Fall(t) | crate::cfg::Succ::Jump(t) | crate::cfg::Succ::Taken(t) => {
                if let Some(&ni) = an.cfg.index.get(&t) {
                    outs.push((ni, facts.clone()));
                }
            }
            // A callee may arm, free, or check arbitrarily: no fact
            // survives a call.
            crate::cfg::Succ::CallReturn { ret, .. } => {
                if let Some(&ni) = an.cfg.index.get(&ret) {
                    outs.push((ni, Facts::new()));
                }
            }
            _ => {}
        }
    }
    outs
}

/// Fact transfer for one access: consume a covering fact (reporting it
/// to `sink`) or become the new generator for its base register.
#[allow(clippy::too_many_arguments)]
fn step_access(
    facts: &mut Facts,
    must_safe: &BTreeMap<u64, bool>,
    pc: u64,
    bi: usize,
    base: Reg,
    offset: i64,
    width: u64,
    sink: &mut CoverSink<'_>,
) {
    if must_safe.get(&pc) == Some(&true) {
        // The check is elided outright: it neither consumes nor
        // generates availability.
        return;
    }
    let key = base.index();
    let Some(end) = offset.checked_add(width as i64) else {
        facts.remove(&key);
        return;
    };
    let covered = facts
        .get(&key)
        .filter(|f| f.gen.is_some() && f.lo <= offset && end <= f.hi_w)
        .and_then(|f| f.gen);
    if let Some(s) = sink.as_mut() {
        s(pc, covered);
    }
    if covered.is_none() {
        // This check executes at runtime; it becomes the generator.
        facts.insert(
            key,
            Fact {
                lo: offset,
                hi_w: end,
                gen: Some((pc, bi)),
            },
        );
    }
}

/// Whether a store through `base + offset` provably cannot touch the
/// ASan shadow region (conservatively `false` for anything unbounded).
fn store_clear_of_shadow(base: &AbsVal, offset: i64, width: u64) -> bool {
    let shadow = SHADOW_BASE as i64;
    match base {
        AbsVal::Num { val, .. } => match (val.lo, val.hi) {
            (Some(lo), Some(hi)) => {
                let (Some(lo), Some(end)) = (
                    lo.checked_add(offset),
                    hi.checked_add(offset).and_then(|h| h.checked_add(width as i64)),
                ) else {
                    return false;
                };
                lo >= 0 && end <= shadow
            }
            _ => false,
        },
        AbsVal::Ptr { off, .. } => match (off.lo, off.hi) {
            // Chunk base + bounded offset stays far below the 4 GiB
            // shadow base (the arena tops out at 1.25 GiB).
            (Some(lo), Some(hi)) => {
                lo.saturating_add(offset) > -(HEAP_BASE as i64)
                    && hi.saturating_add(offset).saturating_add(width as i64)
                        < shadow - (HEAP_BASE + HEAP_SPAN) as i64
            }
            _ => false,
        },
        AbsVal::SpRel { off } => match (off.lo, off.hi) {
            (Some(lo), Some(hi)) => {
                lo.saturating_add(offset) > -FRAME_SANE
                    && hi.saturating_add(offset).saturating_add(width as i64) < FRAME_SANE
            }
            _ => false,
        },
        AbsVal::Top | AbsVal::Undef => false,
    }
}

// ---------------------------------------------------------------------
// MustBeSafe gates
// ---------------------------------------------------------------------

/// Whether an access of `width` bytes at `base + offset` can be proven
/// to never touch armed/tokened memory on any path, given the global
/// token geography.
#[allow(clippy::too_many_arguments)]
fn access_must_be_safe(
    an: &Analyzer<'_>,
    scheme: ElideScheme,
    globals: &Globals,
    _is_main: bool,
    sp_arms: &BTreeSet<i64>,
    base: &AbsVal,
    offset: i64,
    width: u64,
) -> bool {
    let g = GRANULE as i64;
    match base {
        AbsVal::Ptr { site, off, delta } => {
            if *delta {
                return false; // cross-allocation stride (§V-C)
            }
            let site = *site;
            let info = &an.sites[site];
            let Some(usable) = info.usable_size() else {
                return false;
            };
            let off = off.add(&crate::domain::SInt::val(offset));
            let (Some(lo), Some(hi)) = (off.lo, off.hi) else {
                return false;
            };
            let Some(end) = hi.checked_add(width as i64) else {
                return false;
            };
            // Strictly inside the user area: clear of both redzones and
            // of the §V-C alignment padding.
            if lo < 0 || end > usable as i64 {
                return false;
            }
            // The site must never be freed anywhere (monotone set), no
            // guest arm may target it, and no wildcard free may exist.
            if an.may_freed.contains(&site) || an.unknown_free {
                return false;
            }
            if an.heap_arm_sites.contains(&site) {
                return false;
            }
            match info.kind {
                AllocKind::Malloc | AllocKind::Calloc | AllocKind::Realloc => {
                    // Live chunk bytes in the arena; only an absolute arm
                    // landing inside the arena could overlap them.
                    !globals.abs_arm_in_heap
                }
                AllocKind::Sbrk => {
                    // Static-region growth: no redzones exist, but an
                    // absolute arm below the heap or an arm on any sbrk
                    // chunk (unknown concrete address) could alias.
                    !globals.abs_arm_below_heap && !globals.sbrk_guest_arm
                }
            }
        }
        AbsVal::SpRel { off } => {
            if scheme == ElideScheme::Asan {
                // ASan stack redzones are shadow pokes the arm model
                // cannot see; never elide stack accesses statically.
                return false;
            }
            let off = off.add(&crate::domain::SInt::val(offset));
            let (Some(lo), Some(hi)) = (off.lo, off.hi) else {
                return false;
            };
            let Some(end) = hi.checked_add(width as i64) else {
                return false;
            };
            // Own frame only (at or below the entry sp), within the sane
            // frame window, clear of this function's own frame arms.
            if end > 0 || lo <= -FRAME_SANE {
                return false;
            }
            sp_arms.iter().all(|&o| !(lo < o + g && end > o))
        }
        AbsVal::Num { val, delta } => {
            if *delta {
                return false;
            }
            let val = val.add(&crate::domain::SInt::val(offset));
            let (Some(lo), Some(hi)) = (val.lo, val.hi) else {
                return false;
            };
            let Some(end) = hi.checked_add(width as i64) else {
                return false;
            };
            let abs_arm_overlap = an
                .abs_arms
                .iter()
                .any(|&a| (a as i64) < end && a as i64 + g > lo);
            if abs_arm_overlap {
                return false;
            }
            let below_heap = lo >= 0 && end <= HEAP_BASE as i64;
            let in_stack =
                lo > (HEAP_BASE + HEAP_SPAN) as i64 && end <= STACK_TOP as i64;
            if below_heap {
                // Code + static region: tokens only via absolute arms
                // (checked above) or guest arms on sbrk chunks, whose
                // concrete addresses are unknown.
                let _ = STATIC_BASE; // region bound documented in DESIGN.md
                !globals.sbrk_guest_arm
            } else if in_stack && scheme == ElideScheme::Rest {
                // Absolute stack addresses (main's frame): frame arms of
                // other functions live at unknown absolute addresses, so
                // any sp-relative arm anywhere blocks this.
                !globals.any_sp_arm
            } else {
                false
            }
        }
        AbsVal::Top | AbsVal::Undef => false,
    }
}
