//! The dataflow analysis and the REST lint passes.
//!
//! A forward worklist analysis runs over every recovered function of the
//! [`Cfg`], interpreting instructions over the [`domain`](crate::domain)
//! of strided intervals, allocation-site pointers, and frame-relative
//! addresses. On top of the fixpoint, the passes report:
//!
//! * **arm/disarm balance** — a path from an `arm` to a function return
//!   or program exit that never executes the matching `disarm` leaks
//!   blacklisted memory (the §IV-B stack-instrumentation hazard),
//! * **guaranteed violations** — accesses that *must* alias a still-armed
//!   or freed (token-filled) region and would trap at runtime
//!   (`severity: must-trap`; the differential harness cross-checks these
//!   against the emulator),
//! * general lints: reads of never-written registers, unreachable
//!   blocks, stores into the code segment, unresolvable `ecall` service
//!   numbers, stack-pointer discipline, padding-gap overreads (§V-C
//!   false negative), cross-allocation pointer arithmetic (§V-C
//!   predictability), and reads of never-written heap chunks.
//!
//! Every report is anchored on a *bounded* fact — unbounded intervals
//! and `Top` values never produce findings — which is what keeps the
//! workload corpus clean while every attack program is flagged.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rest_isa::{AluOp, BranchCond, EcallNum, Inst, Program, Reg, PC_STEP};

use crate::cfg::{Cfg, Succ};
use crate::domain::{AbsVal, SInt, SiteId};

/// The REST token granule the lint assumes (the paper's evaluated
/// default; `arm`/`disarm` and the allocator redzones operate on 64-byte
/// granules).
pub const GRANULE: u64 = 64;

/// Analysis budget: total block visits across all functions. Far above
/// anything the in-tree corpus needs; a backstop against pathological
/// inputs.
const MAX_VISITS: usize = 50_000;
/// Widening threshold: joins at a block before bounds are widened.
const WIDEN_AFTER: usize = 4;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: suspicious but not provably wrong.
    Warning,
    /// A real defect (leak, discipline violation), though the run may
    /// still complete.
    Error,
    /// The access is statically guaranteed to raise a REST violation at
    /// runtime (checked by the differential harness).
    MustTrap,
}

impl Severity {
    /// Stable serialization name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
            Severity::MustTrap => "must-trap",
        }
    }
}

/// One lint finding, anchored at a PC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The pass that produced the finding (stable kebab-case name).
    pub pass: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Anchoring program counter.
    pub pc: u64,
    /// Human-readable description.
    pub message: String,
}

/// Everything the verifier learned about one program.
#[derive(Debug, Clone)]
pub struct VerifyResult {
    /// Findings, sorted by (pc, pass).
    pub findings: Vec<Finding>,
    /// Instruction count.
    pub insts: usize,
    /// Basic-block count.
    pub blocks: usize,
    /// Recovered-function count.
    pub functions: usize,
    /// Static allocation sites discovered.
    pub sites: usize,
}

impl VerifyResult {
    /// Findings at or above `min`.
    pub fn at_least(&self, min: Severity) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.severity >= min)
    }

    /// Whether any finding is a guaranteed runtime violation.
    pub fn has_must_trap(&self) -> bool {
        self.at_least(Severity::MustTrap).next().is_some()
    }
}

/// Statically verifies `program`, running every pass.
pub fn verify_program(program: &Program) -> VerifyResult {
    Analyzer::new(program).execute()
}

// ---------------------------------------------------------------------
// Allocation sites
// ---------------------------------------------------------------------

/// Which service created an allocation site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AllocKind {
    Malloc,
    Calloc,
    Realloc,
    Sbrk,
}

#[derive(Debug, Clone)]
pub(crate) struct SiteInfo {
    pub(crate) pc: u64,
    pub(crate) kind: AllocKind,
    /// User size when every visit saw the same constant.
    pub(crate) size: Option<u64>,
    pub(crate) size_conflict: bool,
}

impl SiteInfo {
    pub(crate) fn usable_size(&self) -> Option<u64> {
        if self.size_conflict {
            None
        } else {
            self.size
        }
    }

    /// User area rounded up to the token granule (the allocator pads the
    /// user area so the trailing redzone is granule-aligned).
    pub(crate) fn padded_size(&self) -> Option<u64> {
        self.usable_size()
            .map(|s| s.max(1).div_ceil(GRANULE) * GRANULE)
    }

    /// Allocator redzone length on each side of a heap chunk (mirrors
    /// `rest-runtime`'s `redzone_for`).
    pub(crate) fn redzone_len(&self) -> Option<u64> {
        self.usable_size()
            .map(|s| (s / 4).clamp(GRANULE, 2048).div_ceil(GRANULE) * GRANULE)
    }

    /// Whether the allocator arms redzones around this site's chunks.
    pub(crate) fn has_allocator_redzones(&self) -> bool {
        !matches!(self.kind, AllocKind::Sbrk)
    }
}

// ---------------------------------------------------------------------
// Abstract state
// ---------------------------------------------------------------------

/// An armable location, resolved to a singleton address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Loc {
    /// Absolute address (main-frame or static arithmetic).
    Abs(u64),
    /// Function-entry `sp` + offset.
    Sp(i64),
    /// Allocation site + byte offset.
    Heap(SiteId, i64),
}

impl Loc {
    fn describe(&self) -> String {
        match self {
            Loc::Abs(a) => format!("address {a:#x}"),
            Loc::Sp(o) => format!("sp{o:+}"),
            Loc::Heap(s, o) => format!("alloc#{s}+{o}"),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ArmInfo {
    /// Armed on every path (false = only on some).
    pub(crate) must: bool,
    /// PC of the arming instruction.
    pub(crate) arm_pc: u64,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct State {
    pub(crate) regs: [AbsVal; Reg::COUNT],
    pub(crate) armed: BTreeMap<Loc, ArmInfo>,
    /// Freed allocation sites (true = freed on every path).
    pub(crate) freed: BTreeMap<SiteId, bool>,
    /// An `arm` executed at an address the analysis could not resolve;
    /// suppresses disarm-of-unarmed must-trap claims downstream.
    pub(crate) armed_unknown: bool,
}

impl State {
    pub(crate) fn entry(is_main: bool) -> State {
        let mut regs = [if is_main { AbsVal::Undef } else { AbsVal::Top }; Reg::COUNT];
        regs[Reg::ZERO.index()] = AbsVal::val(0);
        if !is_main {
            regs[Reg::SP.index()] = AbsVal::SpRel { off: SInt::val(0) };
        }
        State {
            regs,
            armed: BTreeMap::new(),
            freed: BTreeMap::new(),
            armed_unknown: false,
        }
    }

    pub(crate) fn get(&self, r: Reg) -> AbsVal {
        self.regs[r.index()]
    }

    pub(crate) fn set(&mut self, r: Reg, v: AbsVal) {
        if r != Reg::ZERO {
            self.regs[r.index()] = v;
        }
    }

    fn join(&self, other: &State) -> State {
        let mut regs = self.regs;
        for (i, r) in regs.iter_mut().enumerate() {
            *r = r.join(&other.regs[i]);
        }
        let mut armed = BTreeMap::new();
        for (loc, a) in self.armed.iter().chain(other.armed.iter()) {
            armed
                .entry(*loc)
                .and_modify(|e: &mut ArmInfo| {
                    e.must = e.must && a.must;
                    e.arm_pc = e.arm_pc.min(a.arm_pc);
                })
                .or_insert(ArmInfo {
                    // Present on one side only → armed on some paths.
                    must: a.must
                        && self.armed.contains_key(loc)
                        && other.armed.contains_key(loc),
                    ..*a
                });
        }
        let mut freed = BTreeMap::new();
        for (site, must) in self.freed.iter().chain(other.freed.iter()) {
            freed
                .entry(*site)
                .and_modify(|e: &mut bool| *e = *e && *must)
                .or_insert(*must && self.freed.contains_key(site) && other.freed.contains_key(site));
        }
        State {
            regs,
            armed,
            freed,
            armed_unknown: self.armed_unknown || other.armed_unknown,
        }
    }

    fn widen_from(&self, prev: &State) -> State {
        let mut out = self.clone();
        for (i, r) in out.regs.iter_mut().enumerate() {
            *r = r.widen_from(&prev.regs[i]);
        }
        out
    }
}

// ---------------------------------------------------------------------
// The analyzer
// ---------------------------------------------------------------------

pub(crate) struct Analyzer<'p> {
    pub(crate) program: &'p Program,
    pub(crate) cfg: Cfg,
    code_end: u64,
    pub(crate) sites: Vec<SiteInfo>,
    site_by_pc: BTreeMap<u64, SiteId>,
    /// Every static `sbrk` request is a granule multiple, so every sbrk
    /// result is granule-aligned (the break starts aligned).
    sbrk_aligned: bool,
    findings: BTreeMap<(u64, &'static str), Finding>,
    /// Sites possibly written (stores, memcpy/memset destinations,
    /// zeroing allocators).
    stored_sites: BTreeSet<SiteId>,
    /// A store through an unresolvable pointer havocs the written-set.
    unknown_store: bool,
    /// Site → first PC that loads from it.
    loaded_sites: BTreeMap<SiteId, u64>,
    /// Function currently being analyzed (index into `cfg.functions`).
    cur_fn: usize,
    /// Retain per-function fixpoint in-states in `saved_states` (the
    /// elision pass re-walks blocks from them; `verify_program` skips
    /// the cost).
    pub(crate) keep_states: bool,
    /// Function index → block index → in-state at the narrowed fixpoint.
    pub(crate) saved_states: BTreeMap<usize, BTreeMap<usize, State>>,
    /// Absolute addresses with a guest `arm` anywhere in the program.
    pub(crate) abs_arms: BTreeSet<u64>,
    /// Allocation sites with a guest `arm` somewhere inside the chunk.
    pub(crate) heap_arm_sites: BTreeSet<SiteId>,
    /// Function index → entry-sp offsets armed within that function.
    pub(crate) sp_arms: BTreeMap<usize, BTreeSet<i64>>,
    /// Every resolved arm: (function, location, arm PC).
    pub(crate) arm_records: BTreeSet<(usize, Loc, u64)>,
    /// An `arm` at an unresolvable address anywhere in the program.
    pub(crate) unknown_arm: bool,
    /// Sites freed — must or may — anywhere in the program. Unlike the
    /// flow-sensitive `State::freed` (which reallocation clears), this
    /// set is monotone: stale aliases into a site that is *ever* freed
    /// can dangle into token-filled quarantine, so elision must treat
    /// the site as freed on every path.
    pub(crate) may_freed: BTreeSet<SiteId>,
    /// A `free`/`realloc` whose argument is not a resolvable allocation
    /// base: any heap chunk may be quarantined.
    pub(crate) unknown_free: bool,
    /// Functions containing at least one sp-relative memory access.
    fns_with_sp_access: BTreeSet<usize>,
    /// Any memory access through an absolute (numeric) address.
    has_abs_access: bool,
    /// Any memory access through an unresolvable (`Top`/`Undef`) base.
    unknown_access: bool,
}

impl<'p> Analyzer<'p> {
    pub(crate) fn new(program: &'p Program) -> Analyzer<'p> {
        let cfg = Cfg::build(program);
        let code_end = Program::CODE_BASE + program.len() as u64 * PC_STEP;
        Analyzer {
            program,
            cfg,
            code_end,
            sites: Vec::new(),
            site_by_pc: BTreeMap::new(),
            sbrk_aligned: true,
            findings: BTreeMap::new(),
            stored_sites: BTreeSet::new(),
            unknown_store: false,
            loaded_sites: BTreeMap::new(),
            cur_fn: 0,
            keep_states: false,
            saved_states: BTreeMap::new(),
            abs_arms: BTreeSet::new(),
            heap_arm_sites: BTreeSet::new(),
            sp_arms: BTreeMap::new(),
            arm_records: BTreeSet::new(),
            unknown_arm: false,
            may_freed: BTreeSet::new(),
            unknown_free: false,
            fns_with_sp_access: BTreeSet::new(),
            has_abs_access: false,
            unknown_access: false,
        }
    }

    fn report(&mut self, pass: &'static str, severity: Severity, pc: u64, message: String) {
        let entry = self
            .findings
            .entry((pc, pass))
            .or_insert_with(|| Finding {
                pass,
                severity,
                pc,
                message: message.clone(),
            });
        if severity > entry.severity {
            entry.severity = severity;
            entry.message = message;
        }
    }

    pub(crate) fn execute(&mut self) -> VerifyResult {
        // Structural lints first.
        for bi in self.cfg.unreachable_blocks() {
            let b = &self.cfg.blocks[bi];
            let (start, end) = (b.start, b.end - PC_STEP);
            self.report(
                "unreachable",
                Severity::Warning,
                start,
                format!("block {start:#x}..={end:#x} is unreachable from every function entry"),
            );
        }

        // One dataflow fixpoint per function, then a collection pass.
        for fi in 0..self.cfg.functions.len() {
            self.analyze_function(fi);
        }

        // Flow-insensitive pass: heap chunks read but never written.
        let loads: Vec<(SiteId, u64)> = self
            .loaded_sites
            .iter()
            .map(|(s, pc)| (*s, *pc))
            .collect();
        for (site, pc) in loads {
            let info = &self.sites[site];
            if info.kind == AllocKind::Malloc
                && !self.unknown_store
                && !self.stored_sites.contains(&site)
            {
                let at = info.pc;
                self.report(
                    "uninit-heap-read",
                    Severity::Warning,
                    pc,
                    format!(
                        "read from allocation at pc {at:#x} that no path ever writes \
                         (uninitialised-data leak; REST's zeroed pool masks it)"
                    ),
                );
            }
        }

        // Flow-insensitive pass: arms whose guarded location no access in
        // the whole program can reach — the ARM/DISARM pair burns cycles
        // and arms a token nothing can trip over. Any unresolvable access
        // (a `Top`/`Undef` base) could touch anything, so it suppresses
        // the pass entirely.
        if !self.unknown_access {
            for (fi, loc, pc) in self.arm_records.clone() {
                let dead = match loc {
                    Loc::Sp(_) => !self.fns_with_sp_access.contains(&fi),
                    Loc::Heap(site, _) => {
                        !self.stored_sites.contains(&site)
                            && !self.loaded_sites.contains_key(&site)
                    }
                    Loc::Abs(_) => !self.has_abs_access,
                };
                if dead {
                    self.report(
                        "dead-arm",
                        Severity::Warning,
                        pc,
                        format!(
                            "{} is armed but no reachable access can touch the guarded \
                             region; the arm/disarm pair is dead instrumentation",
                            loc.describe()
                        ),
                    );
                }
            }
        }

        let mut findings: Vec<Finding> = std::mem::take(&mut self.findings).into_values().collect();
        findings.sort_by(|a, b| (a.pc, a.pass).cmp(&(b.pc, b.pass)));
        VerifyResult {
            findings,
            insts: self.program.len(),
            blocks: self.cfg.blocks.len(),
            functions: self.cfg.functions.len(),
            sites: self.sites.len(),
        }
    }

    fn analyze_function(&mut self, fi: usize) {
        let func = self.cfg.functions[fi].clone();
        self.cur_fn = fi;
        let is_main = fi == 0;
        let members: BTreeSet<usize> = func.blocks.iter().copied().collect();
        let Some(&entry_bi) = self.cfg.index.get(&func.entry) else {
            return;
        };

        let mut in_states: BTreeMap<usize, State> = BTreeMap::new();
        in_states.insert(entry_bi, State::entry(is_main));
        let mut visits: BTreeMap<usize, usize> = BTreeMap::new();
        let mut work: VecDeque<usize> = VecDeque::new();
        work.push_back(entry_bi);
        let mut budget = MAX_VISITS;

        while let Some(bi) = work.pop_front() {
            if budget == 0 {
                self.report(
                    "analysis-budget",
                    Severity::Warning,
                    func.entry,
                    "analysis budget exceeded; results for this function are partial".into(),
                );
                break;
            }
            budget -= 1;
            let state = in_states[&bi].clone();
            let outs = self.transfer_block(bi, state, is_main, false);
            for (succ_bi, out) in outs {
                if !members.contains(&succ_bi) {
                    continue;
                }
                let visit = visits.entry(succ_bi).or_insert(0);
                let updated = match in_states.get(&succ_bi) {
                    None => out,
                    Some(prev) => {
                        let joined = prev.join(&out);
                        if &joined == prev {
                            continue;
                        }
                        *visit += 1;
                        if *visit > WIDEN_AFTER {
                            joined.widen_from(prev)
                        } else {
                            joined
                        }
                    }
                };
                in_states.insert(succ_bi, updated);
                if !work.contains(&succ_bi) {
                    work.push_back(succ_bi);
                }
            }
        }

        // Narrowing: widening over-approximates loop variables to
        // unbounded intervals, which the branch-guard refinements on the
        // back edges can win back. A fixed number of descending
        // iterations recomputes every in-state purely from its
        // predecessors' (refined) out-edges; each step shrinks or keeps
        // states, so this stays sound.
        for _ in 0..2 {
            let mut next: BTreeMap<usize, State> = BTreeMap::new();
            next.insert(entry_bi, State::entry(is_main));
            for (&bi, state) in &in_states {
                for (succ_bi, out) in self.transfer_block(bi, state.clone(), is_main, false) {
                    if !members.contains(&succ_bi) {
                        continue;
                    }
                    next.entry(succ_bi)
                        .and_modify(|e| *e = e.join(&out))
                        .or_insert(out);
                }
            }
            if next == in_states {
                break;
            }
            in_states = next;
        }

        // Collection pass over the fixpoint states.
        for (&bi, state) in &in_states.clone() {
            self.transfer_block(bi, state.clone(), is_main, true);
        }

        if self.keep_states {
            self.saved_states.insert(fi, in_states);
        }
    }

    /// Interprets one block from `state`; returns successor in-states.
    /// With `collect`, findings are recorded (used once at fixpoint).
    fn transfer_block(
        &mut self,
        bi: usize,
        mut state: State,
        is_main: bool,
        collect: bool,
    ) -> Vec<(usize, State)> {
        let block = self.cfg.blocks[bi].clone();
        for pc in block.pcs() {
            let inst = self.program.fetch(pc).expect("pc in range");
            self.transfer_inst(pc, &inst, &mut state, is_main, collect);
        }
        let last_pc = block.end - PC_STEP;
        let last = self.program.fetch(last_pc).expect("pc in range");

        let mut outs = Vec::new();
        for succ in &block.succs {
            match *succ {
                Succ::Fall(t) | Succ::Jump(t) => {
                    if let Some(&ni) = self.cfg.index.get(&t) {
                        outs.push((ni, state.clone()));
                    }
                }
                Succ::Taken(t) => {
                    if let Some(refined) = self.refine_branch(&last, &state, true) {
                        if let Some(&ni) = self.cfg.index.get(&t) {
                            outs.push((ni, refined));
                        }
                    }
                }
                Succ::CallReturn { ret, .. } => {
                    let mut after = state.clone();
                    after_call(&mut after);
                    if let Some(&ni) = self.cfg.index.get(&ret) {
                        outs.push((ni, after));
                    }
                }
                Succ::Ret => {
                    if collect {
                        self.check_return(last_pc, &state);
                    }
                }
                Succ::Exit => {
                    if collect {
                        self.check_exit(last_pc, &state);
                    }
                }
                Succ::Indirect => {
                    if collect {
                        self.report(
                            "indirect-jump",
                            Severity::Error,
                            last_pc,
                            "indirect jump through a computed register cannot be verified"
                                .into(),
                        );
                    }
                }
                Succ::FallsOffEnd => {
                    if collect {
                        self.report(
                            "falls-off-end",
                            Severity::Error,
                            last_pc,
                            "execution can run past the end of the code segment".into(),
                        );
                    }
                }
            }
        }
        // The fallthrough of a conditional branch is its not-taken edge.
        if let Inst::Branch { .. } = last {
            outs = outs
                .into_iter()
                .filter_map(|(ni, s)| {
                    if Some(ni) == self.fall_index(&block) {
                        self.refine_branch(&last, &s, false).map(|r| (ni, r))
                    } else {
                        Some((ni, s))
                    }
                })
                .collect();
        }
        outs
    }

    fn fall_index(&self, block: &crate::cfg::Block) -> Option<usize> {
        block.succs.iter().find_map(|s| match s {
            Succ::Fall(t) => self.cfg.index.get(t).copied(),
            _ => None,
        })
    }

    // -- instruction transfer -----------------------------------------

    fn read(
        &mut self,
        r: Reg,
        state: &State,
        pc: u64,
        is_main: bool,
        collect: bool,
    ) -> AbsVal {
        let v = state.get(r);
        if matches!(v, AbsVal::Undef) {
            if collect && is_main {
                self.report(
                    "undef-register-read",
                    Severity::Error,
                    pc,
                    format!("register {r} is read but never written on some path"),
                );
            }
            return AbsVal::Top;
        }
        v
    }

    pub(crate) fn transfer_inst(
        &mut self,
        pc: u64,
        inst: &Inst,
        state: &mut State,
        is_main: bool,
        collect: bool,
    ) {
        match *inst {
            Inst::Li { dst, imm } => state.set(dst, AbsVal::val(imm)),
            Inst::Alu { op, dst, src1, src2 } => {
                let a = self.read(src1, state, pc, is_main, collect);
                let b = self.read(src2, state, pc, is_main, collect);
                state.set(dst, eval_alu(op, &a, &b));
            }
            Inst::AluImm { op, dst, src, imm } => {
                let a = self.read(src, state, pc, is_main, collect);
                state.set(dst, eval_alu(op, &a, &AbsVal::val(imm)));
            }
            Inst::Load {
                dst,
                base,
                offset,
                size,
                ..
            } => {
                let b = self.read(base, state, pc, is_main, collect);
                self.check_access(pc, &b, offset, size.bytes(), false, state, collect);
                state.set(dst, AbsVal::Top);
            }
            Inst::Store {
                src,
                base,
                offset,
                size,
            } => {
                let _ = self.read(src, state, pc, is_main, collect);
                let b = self.read(base, state, pc, is_main, collect);
                self.check_access(pc, &b, offset, size.bytes(), true, state, collect);
            }
            Inst::Branch { src1, src2, .. } => {
                let _ = self.read(src1, state, pc, is_main, collect);
                let _ = self.read(src2, state, pc, is_main, collect);
            }
            Inst::Jal { dst, .. } => {
                state.set(dst, AbsVal::num(SInt::val((pc + PC_STEP) as i64)));
            }
            Inst::Jalr { dst, base, .. } => {
                let _ = self.read(base, state, pc, is_main, collect);
                state.set(dst, AbsVal::Top);
            }
            Inst::Arm { addr } => {
                let v = self.read(addr, state, pc, is_main, collect);
                self.do_arm(pc, &v, state, collect);
            }
            Inst::Disarm { addr } => {
                let v = self.read(addr, state, pc, is_main, collect);
                self.do_disarm(pc, &v, state, collect);
            }
            Inst::Ecall => self.do_ecall(pc, state, is_main, collect),
            Inst::Halt | Inst::Nop => {}
        }
    }

    // -- arm / disarm --------------------------------------------------

    fn resolve_loc(&self, v: &AbsVal) -> Option<Loc> {
        match v {
            AbsVal::Num { val, .. } => val.singleton().map(|c| Loc::Abs(c as u64)),
            AbsVal::SpRel { off } => off.singleton().map(Loc::Sp),
            AbsVal::Ptr { site, off, .. } => off.singleton().map(|o| Loc::Heap(*site, o)),
            _ => None,
        }
    }

    fn do_arm(&mut self, pc: u64, v: &AbsVal, state: &mut State, collect: bool) {
        match self.resolve_loc(v) {
            Some(loc) => {
                if collect {
                    self.arm_records.insert((self.cur_fn, loc, pc));
                    match loc {
                        Loc::Abs(a) => {
                            self.abs_arms.insert(a);
                        }
                        Loc::Sp(o) => {
                            self.sp_arms.entry(self.cur_fn).or_default().insert(o);
                        }
                        Loc::Heap(site, _) => {
                            self.heap_arm_sites.insert(site);
                        }
                    }
                    if let Some(prev) = state.armed.get(&loc) {
                        if prev.must {
                            let at = prev.arm_pc;
                            self.report(
                                "rearm-redundant",
                                Severity::Warning,
                                pc,
                                format!(
                                    "{} is re-armed while already armed (first at pc {at:#x}); \
                                     the second arm re-fills an already-token-filled granule",
                                    loc.describe()
                                ),
                            );
                        }
                    }
                    if let Loc::Heap(site, off) = loc {
                        if self.site_aligned(site) && off.rem_euclid(GRANULE as i64) != 0 {
                            self.report(
                                "arm-alignment",
                                Severity::Warning,
                                pc,
                                format!(
                                    "arm at {} is not {GRANULE}-byte aligned",
                                    loc.describe()
                                ),
                            );
                        }
                    }
                }
                state.armed.insert(loc, ArmInfo { must: true, arm_pc: pc });
            }
            None => {
                state.armed_unknown = true;
                if collect {
                    self.unknown_arm = true;
                    self.report(
                        "arm-balance",
                        Severity::Warning,
                        pc,
                        "arm at an address the analysis cannot resolve; balance checking \
                         is suppressed downstream"
                            .into(),
                    );
                }
            }
        }
    }

    fn do_disarm(&mut self, pc: u64, v: &AbsVal, state: &mut State, collect: bool) {
        let Some(loc) = self.resolve_loc(v) else {
            // A disarm over a *range* of offsets into one allocation:
            // when no offset the range can reach is ever armed on any
            // path, every concrete execution disarms an unarmed
            // location, which raises a REST exception.
            if let AbsVal::Ptr { site, off, .. } = v {
                if !state.armed_unknown && self.range_never_armed(*site, off, state) {
                    if collect {
                        self.report(
                            "disarm-unarmed",
                            Severity::MustTrap,
                            pc,
                            format!(
                                "disarm sweep over alloc#{site}+{off}: no reachable offset \
                                 is ever armed, so the first disarm raises a REST exception"
                            ),
                        );
                    }
                    return;
                }
            }
            // Unknown address: could disarm anything armed on this path.
            for a in state.armed.values_mut() {
                a.must = false;
            }
            return;
        };
        if let Some(info) = state.armed.remove(&loc) {
            if collect && !info.must {
                self.report(
                    "disarm-unarmed",
                    Severity::Warning,
                    pc,
                    format!(
                        "{} is disarmed but only armed on some paths (unarmed paths trap)",
                        loc.describe()
                    ),
                );
            }
            return;
        }
        if state.armed_unknown {
            return;
        }
        // Not guest-armed: allocator-armed regions are fine to identify.
        if let Loc::Heap(site, off) = loc {
            let info = &self.sites[site];
            if info.has_allocator_redzones() {
                if let (Some(padded), Some(rz)) = (info.padded_size(), info.redzone_len()) {
                    let (p, r) = (padded as i64, rz as i64);
                    if (-r..0).contains(&off) || (p..p + r).contains(&off) {
                        if collect {
                            self.report(
                                "disarm-unarmed",
                                Severity::Warning,
                                pc,
                                format!(
                                    "guest code disarms an allocator redzone token at {}",
                                    loc.describe()
                                ),
                            );
                        }
                        return;
                    }
                } else {
                    return; // unknown geometry: stay silent
                }
            }
            if state.freed.contains_key(&site) {
                if collect {
                    self.report(
                        "disarm-unarmed",
                        Severity::Warning,
                        pc,
                        format!("disarm of token-filled freed memory at {}", loc.describe()),
                    );
                }
                return;
            }
        }
        if collect {
            self.report(
                "disarm-unarmed",
                Severity::MustTrap,
                pc,
                format!(
                    "{} is never armed on any path: this disarm raises a REST exception",
                    loc.describe()
                ),
            );
        }
    }

    /// Whether no offset in `off`'s range (each disarm touching one
    /// granule) can alias a location that is armed — by the guest or by
    /// the allocator — on any path. Requires a known lower bound;
    /// unknown chunk geometry counts as possibly armed.
    fn range_never_armed(&self, site: SiteId, off: &SInt, state: &State) -> bool {
        let Some(lo) = off.lo else {
            return false;
        };
        let end = off.hi.map(|h| h + GRANULE as i64);
        let overlaps = |alo: i64, aend: i64| alo < end.unwrap_or(i64::MAX) && aend > lo;
        for loc in state.armed.keys() {
            if let Loc::Heap(s, o) = loc {
                if *s == site && overlaps(*o, *o + GRANULE as i64) {
                    return false;
                }
            }
        }
        let info = &self.sites[site];
        if info.has_allocator_redzones() {
            let (Some(padded), Some(rz)) = (info.padded_size(), info.redzone_len()) else {
                return false;
            };
            let (p, r) = (padded as i64, rz as i64);
            if overlaps(-r, 0) || overlaps(p, p + r) {
                return false;
            }
        }
        // Freed chunks are token-filled: a disarm there "succeeds" in
        // clearing a token, so it is not an unarmed disarm.
        if state.freed.contains_key(&site) {
            return false;
        }
        true
    }

    fn site_aligned(&self, site: SiteId) -> bool {
        match self.sites[site].kind {
            AllocKind::Sbrk => self.sbrk_aligned,
            _ => true, // the allocator token-aligns user areas
        }
    }

    // -- ecalls --------------------------------------------------------

    fn site_for(&mut self, pc: u64, kind: AllocKind, size: Option<u64>) -> SiteId {
        if let Some(&s) = self.site_by_pc.get(&pc) {
            let info = &mut self.sites[s];
            if info.size != size {
                info.size_conflict = true;
            }
            return s;
        }
        let s = self.sites.len();
        self.sites.push(SiteInfo {
            pc,
            kind,
            size,
            size_conflict: false,
        });
        self.site_by_pc.insert(pc, s);
        s
    }

    fn do_ecall(&mut self, pc: u64, state: &mut State, is_main: bool, collect: bool) {
        let num = match state.get(Reg::A7) {
            AbsVal::Num { val, .. } => val.singleton().and_then(|n| {
                if n >= 0 {
                    EcallNum::from_u64(n as u64)
                } else {
                    None
                }
            }),
            _ => None,
        };
        let Some(num) = num else {
            if collect {
                self.report(
                    "ecall-abi",
                    Severity::Error,
                    pc,
                    "ecall with an unresolvable or invalid service number in a7".into(),
                );
            }
            // Unknown service: clobber a0, assume no other effect.
            state.set(Reg::A0, AbsVal::Top);
            return;
        };
        let arg = |state: &State, r: Reg| state.get(r);
        let size_of = |v: &AbsVal| match v {
            AbsVal::Num { val, .. } => val.singleton().filter(|s| *s >= 0).map(|s| s as u64),
            _ => None,
        };
        match num {
            EcallNum::Malloc => {
                let size = size_of(&arg(state, Reg::A0));
                if collect && matches!(arg(state, Reg::A0), AbsVal::Undef) {
                    self.report(
                        "ecall-abi",
                        Severity::Error,
                        pc,
                        "malloc size argument a0 is never written".into(),
                    );
                }
                let site = self.site_for(pc, AllocKind::Malloc, size);
                state.freed.remove(&site);
                state.set(
                    Reg::A0,
                    AbsVal::Ptr {
                        site,
                        off: SInt::val(0),
                        delta: false,
                    },
                );
            }
            EcallNum::Calloc => {
                let size = match (size_of(&arg(state, Reg::A0)), size_of(&arg(state, Reg::A1))) {
                    (Some(n), Some(sz)) => n.checked_mul(sz),
                    _ => None,
                };
                let site = self.site_for(pc, AllocKind::Calloc, size);
                self.stored_sites.insert(site); // zeroed
                state.freed.remove(&site);
                state.set(
                    Reg::A0,
                    AbsVal::Ptr {
                        site,
                        off: SInt::val(0),
                        delta: false,
                    },
                );
            }
            EcallNum::Realloc => {
                // The runtime allocates anew, copies, and frees the old
                // chunk.
                match arg(state, Reg::A0) {
                    AbsVal::Ptr { site, off, .. } => {
                        if collect {
                            self.may_freed.insert(site);
                        }
                        if off.singleton() == Some(0) {
                            self.note_free(pc, site, state, collect);
                        }
                    }
                    // realloc(NULL, n) behaves as malloc: nothing freed.
                    AbsVal::Num { val, .. } if val.singleton() == Some(0) => {}
                    _ => {
                        if collect {
                            self.unknown_free = true;
                        }
                    }
                }
                let size = size_of(&arg(state, Reg::A1));
                let site = self.site_for(pc, AllocKind::Realloc, size);
                self.stored_sites.insert(site); // holds copied contents
                state.freed.remove(&site);
                state.set(
                    Reg::A0,
                    AbsVal::Ptr {
                        site,
                        off: SInt::val(0),
                        delta: false,
                    },
                );
            }
            EcallNum::Sbrk => {
                let size = size_of(&arg(state, Reg::A0));
                if size.is_none_or(|s| s % GRANULE != 0) {
                    self.sbrk_aligned = false;
                }
                let site = self.site_for(pc, AllocKind::Sbrk, size);
                self.stored_sites.insert(site); // fresh zero pages
                state.set(
                    Reg::A0,
                    AbsVal::Ptr {
                        site,
                        off: SInt::val(0),
                        delta: false,
                    },
                );
            }
            EcallNum::Free => {
                match arg(state, Reg::A0) {
                    AbsVal::Ptr { site, off, .. } => {
                        if collect {
                            self.may_freed.insert(site);
                        }
                        match off.singleton() {
                            Some(0) => self.note_free(pc, site, state, collect),
                            Some(o) => {
                                if collect {
                                    self.report(
                                        "ecall-abi",
                                        Severity::Error,
                                        pc,
                                        format!(
                                            "free of an interior pointer (allocation base {o:+} \
                                             bytes); the allocator rejects non-base pointers"
                                        ),
                                    );
                                }
                            }
                            None => {
                                // May free: every prior must-freed stays must;
                                // this site becomes may-freed.
                                state.freed.entry(site).or_insert(false);
                            }
                        }
                    }
                    AbsVal::Undef => {
                        let _ = self.read(Reg::A0, state, pc, is_main, collect);
                        if collect {
                            self.unknown_free = true;
                        }
                    }
                    // free(NULL) is a no-op.
                    AbsVal::Num { val, .. } if val.singleton() == Some(0) => {}
                    _ => {
                        if collect {
                            self.unknown_free = true;
                        }
                    }
                }
                state.set(Reg::A0, AbsVal::val(0));
            }
            EcallNum::Memcpy => {
                let dst = arg(state, Reg::A0);
                let src = arg(state, Reg::A1);
                if let Some(len) = size_of(&arg(state, Reg::A2)).filter(|l| *l > 0) {
                    self.check_span(pc, &src, len, false, state, collect);
                    self.check_span(pc, &dst, len, true, state, collect);
                } else {
                    if let AbsVal::Ptr { site, .. } = dst {
                        self.stored_sites.insert(site);
                    } else if !matches!(dst, AbsVal::Num { .. } | AbsVal::SpRel { .. }) {
                        self.unknown_store = true;
                    }
                }
                // a0 (the destination) is returned unchanged.
            }
            EcallNum::Memset => {
                let dst = arg(state, Reg::A0);
                if let Some(len) = size_of(&arg(state, Reg::A2)).filter(|l| *l > 0) {
                    self.check_span(pc, &dst, len, true, state, collect);
                } else if let AbsVal::Ptr { site, .. } = dst {
                    self.stored_sites.insert(site);
                } else if !matches!(dst, AbsVal::Num { .. } | AbsVal::SpRel { .. }) {
                    self.unknown_store = true;
                }
            }
            EcallNum::PutChar => {
                let _ = self.read(Reg::A0, state, pc, is_main, collect);
                state.set(Reg::A0, AbsVal::val(0));
            }
            EcallNum::Exit => {
                let _ = self.read(Reg::A0, state, pc, is_main, collect);
            }
        }
    }

    fn note_free(&mut self, pc: u64, site: SiteId, state: &mut State, collect: bool) {
        if collect && state.freed.get(&site) == Some(&true) {
            let at = self.sites[site].pc;
            self.report(
                "double-free",
                Severity::MustTrap,
                pc,
                format!(
                    "allocation from pc {at:#x} is freed twice on this path; the freed \
                     chunk is token-filled, so the second free raises"
                ),
            );
        }
        state.freed.insert(site, true);
    }

    // -- memory accesses ----------------------------------------------

    /// A contiguous `len`-byte span starting at `base` (memcpy/memset).
    fn check_span(
        &mut self,
        pc: u64,
        base: &AbsVal,
        len: u64,
        store: bool,
        state: &State,
        collect: bool,
    ) {
        self.check_access(pc, base, 0, len, store, state, collect);
    }

    /// Checks one access of `width` bytes at `base + offset`.
    #[allow(clippy::too_many_arguments)]
    fn check_access(
        &mut self,
        pc: u64,
        base: &AbsVal,
        offset: i64,
        width: u64,
        store: bool,
        state: &State,
        collect: bool,
    ) {
        let what = if store { "store" } else { "load" };
        match base {
            AbsVal::Ptr { site, off, delta } => {
                let site = *site;
                if store {
                    self.stored_sites.insert(site);
                } else {
                    self.loaded_sites.entry(site).or_insert(pc);
                }
                if collect && *delta {
                    self.report(
                        "cross-alloc",
                        Severity::Warning,
                        pc,
                        format!(
                            "{what} through pointer arithmetic spanning distinct allocations \
                             (redzone-jumping stride; REST detects it only with decoy-token \
                             sprinkling)"
                        ),
                    );
                }
                if !collect {
                    return;
                }
                let off = off.add(&SInt::val(offset));
                let (Some(lo), Some(hi)) = (off.lo, off.hi) else {
                    return; // unbounded: never report
                };
                let end = hi + width as i64;
                let contiguous = off.stride <= width; // the accesses tile [lo, end)
                let info = self.sites[site].clone();
                // Freed chunks are token-filled over their whole extent.
                if let Some(&must) = state.freed.get(&site) {
                    let at = info.pc;
                    let (sev, detail) = if must {
                        (Severity::MustTrap, "freed on every path")
                    } else {
                        (Severity::Warning, "freed on some paths")
                    };
                    self.report(
                        "use-after-free",
                        sev,
                        pc,
                        format!(
                            "{what} through a dangling pointer into the allocation from pc \
                             {at:#x} ({detail}); freed chunks are token-filled"
                        ),
                    );
                    return;
                }
                // Armed byte ranges for this site: guest arms + the
                // allocator's redzones.
                let mut armed_ranges: Vec<(i64, i64, bool)> = state
                    .armed
                    .iter()
                    .filter_map(|(loc, a)| match loc {
                        Loc::Heap(s, o) if *s == site => {
                            Some((*o, *o + GRANULE as i64, a.must))
                        }
                        _ => None,
                    })
                    .collect();
                if info.has_allocator_redzones() {
                    if let (Some(padded), Some(rz)) = (info.padded_size(), info.redzone_len()) {
                        let (p, r) = (padded as i64, rz as i64);
                        armed_ranges.push((-r, 0, true));
                        armed_ranges.push((p, p + r, true));
                    }
                }
                for (alo, aend, must) in armed_ranges {
                    if lo < aend && end > alo {
                        let sev = if must && contiguous {
                            Severity::MustTrap
                        } else {
                            Severity::Warning
                        };
                        let at = info.pc;
                        self.report(
                            "armed-access",
                            sev,
                            pc,
                            format!(
                                "{what} at offsets {off}+{width} of the allocation from pc \
                                 {at:#x} overlaps the armed region [{alo}, {aend}) and raises \
                                 a REST exception"
                            ),
                        );
                        return;
                    }
                }
                // In the token-alignment padding: the §V-C false
                // negative. Only meaningful for allocator chunks — sbrk
                // regions are contiguous data-segment growth with no
                // padding contract.
                if let (true, Some(size), Some(padded)) = (
                    info.has_allocator_redzones(),
                    info.usable_size(),
                    info.padded_size(),
                ) {
                    if end > size as i64 && lo < padded as i64 {
                        let at = info.pc;
                        self.report(
                            "padding-gap",
                            Severity::Warning,
                            pc,
                            format!(
                                "{what} at offsets {off}+{width} runs past the {size}-byte \
                                 allocation from pc {at:#x} but stays inside its token-alignment \
                                 padding — undetectable by {GRANULE} B tokens (§V-C)"
                            ),
                        );
                    }
                }
            }
            AbsVal::SpRel { off } => {
                self.fns_with_sp_access.insert(self.cur_fn);
                if !collect {
                    return;
                }
                let off = off.add(&SInt::val(offset));
                let (Some(lo), Some(hi)) = (off.lo, off.hi) else {
                    return;
                };
                let end = hi + width as i64;
                let contiguous = off.stride <= width;
                for (loc, a) in &state.armed {
                    if let Loc::Sp(o) = loc {
                        if lo < *o + GRANULE as i64 && end > *o {
                            let sev = if a.must && contiguous {
                                Severity::MustTrap
                            } else {
                                Severity::Warning
                            };
                            let at = a.arm_pc;
                            self.report(
                                "armed-access",
                                sev,
                                pc,
                                format!(
                                    "{what} at sp offsets {off}+{width} overlaps the frame \
                                     redzone armed at pc {at:#x} and raises a REST exception"
                                ),
                            );
                            return;
                        }
                    }
                }
            }
            AbsVal::Num { val, .. } => {
                self.has_abs_access = true;
                if !collect {
                    return;
                }
                let off = val.add(&SInt::val(offset));
                let (Some(lo), Some(hi)) = (off.lo, off.hi) else {
                    return;
                };
                let end = hi + width as i64;
                if store && lo < self.code_end as i64 && end > Program::CODE_BASE as i64 {
                    self.report(
                        "store-to-code",
                        Severity::Error,
                        pc,
                        format!("store at {off} overlaps the code segment"),
                    );
                    return;
                }
                let contiguous = off.stride <= width;
                for (loc, a) in &state.armed {
                    if let Loc::Abs(addr) = loc {
                        let (alo, aend) = (*addr as i64, *addr as i64 + GRANULE as i64);
                        if lo < aend && end > alo {
                            let sev = if a.must && contiguous {
                                Severity::MustTrap
                            } else {
                                Severity::Warning
                            };
                            let at = a.arm_pc;
                            self.report(
                                "armed-access",
                                sev,
                                pc,
                                format!(
                                    "{what} at {off}+{width} overlaps the region armed at pc \
                                     {at:#x} and raises a REST exception"
                                ),
                            );
                            return;
                        }
                    }
                }
            }
            AbsVal::Top | AbsVal::Undef => {
                self.unknown_access = true;
                if store {
                    self.unknown_store = true;
                }
            }
        }
    }

    // -- function / program exits -------------------------------------

    fn check_return(&mut self, pc: u64, state: &State) {
        match state.get(Reg::SP) {
            AbsVal::SpRel { off } if off.singleton() == Some(0) => {}
            AbsVal::SpRel { off } => {
                self.report(
                    "stack-discipline",
                    Severity::Error,
                    pc,
                    format!("sp is off by {off} at function return"),
                );
            }
            _ => {
                self.report(
                    "stack-discipline",
                    Severity::Error,
                    pc,
                    "sp does not derive from the entry sp at function return".into(),
                );
            }
        }
        for (loc, a) in &state.armed {
            if matches!(loc, Loc::Sp(_)) {
                let at = a.arm_pc;
                let path = if a.must { "every path" } else { "a path" };
                self.report(
                    "arm-balance",
                    Severity::Error,
                    pc,
                    format!(
                        "frame token at {} armed at pc {at:#x} is still armed on {path} \
                         reaching this return: the frame leaks blacklisted stack memory",
                        loc.describe()
                    ),
                );
            }
        }
    }

    fn check_exit(&mut self, pc: u64, state: &State) {
        for (loc, a) in &state.armed {
            let at = a.arm_pc;
            match loc {
                Loc::Sp(_) | Loc::Abs(_) => {
                    self.report(
                        "arm-balance",
                        Severity::Error,
                        pc,
                        format!(
                            "stack token at {} armed at pc {at:#x} is still armed at program \
                             exit (leaked blacklisted memory)",
                            loc.describe()
                        ),
                    );
                }
                Loc::Heap(..) => {
                    self.report(
                        "arm-balance",
                        Severity::Warning,
                        pc,
                        format!(
                            "heap token at {} armed at pc {at:#x} is never disarmed before \
                             program exit",
                            loc.describe()
                        ),
                    );
                }
            }
        }
    }

    // -- branch refinement --------------------------------------------

    /// Refines `state` along the `taken`/not-taken edge of `branch`;
    /// `None` means the edge is infeasible.
    pub(crate) fn refine_branch(&self, branch: &Inst, state: &State, taken: bool) -> Option<State> {
        let Inst::Branch {
            cond, src1, src2, ..
        } = *branch
        else {
            return Some(state.clone());
        };
        let mut out = state.clone();
        let v1 = state.get(src1);
        let v2 = state.get(src2);
        if let (AbsVal::Num { val: a, delta }, Some(c)) = (v1, num_singleton(&v2)) {
            let refined = refine_int(&a, cond, c, taken, true)?;
            out.set(src1, AbsVal::Num { val: refined, delta });
        }
        if let (Some(c), AbsVal::Num { val: b, delta }) = (num_singleton(&v1), v2) {
            let refined = refine_int(&b, cond, c, taken, false)?;
            out.set(src2, AbsVal::Num { val: refined, delta });
        }
        Some(out)
    }
}

fn num_singleton(v: &AbsVal) -> Option<i64> {
    match v {
        AbsVal::Num { val, .. } => val.singleton(),
        _ => None,
    }
}

/// Refines interval `a` under `a <cond> c` (when `a_is_lhs`) or
/// `c <cond> a`, on the taken or fall-through edge.
fn refine_int(a: &SInt, cond: BranchCond, c: i64, taken: bool, a_is_lhs: bool) -> Option<SInt> {
    match rel_kind(cond, a_is_lhs, taken) {
        RefKind::Eq => {
            if a.contains(c) {
                Some(SInt::val(c))
            } else {
                None
            }
        }
        RefKind::Ne => {
            if a.singleton() == Some(c) {
                return None;
            }
            let mut out = *a;
            if out.lo == Some(c) {
                // c == i64::MAX leaves no value above it: infeasible.
                out = out.clamp(Some(c.checked_add(1)?), None)?;
            }
            if out.hi == Some(c) {
                out = out.clamp(None, Some(c.checked_sub(1)?))?;
            }
            Some(out)
        }
        RefKind::Lt => a.clamp(None, Some(c.checked_sub(1)?)),
        RefKind::Le => a.clamp(None, Some(c)),
        RefKind::Gt => a.clamp(Some(c.checked_add(1)?), None),
        RefKind::Ge => a.clamp(Some(c), None),
        RefKind::LtuNonNeg => {
            // a <u c with c ≥ 0 pins a into [0, c-1] regardless of the
            // prior signed bounds (the high bit must be clear).
            if c == 0 {
                return None;
            }
            a.clamp(Some(0), Some(c - 1))
        }
        RefKind::GeuNonNeg => {
            // a ≥u c: only usable when a is already known non-negative.
            if a.lo.is_some_and(|l| l >= 0) {
                a.clamp(Some(c), None)
            } else {
                Some(*a)
            }
        }
        RefKind::None => Some(*a),
    }
}

enum RefKind {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LtuNonNeg,
    GeuNonNeg,
    None,
}

fn rel_kind(cond: BranchCond, a_is_lhs: bool, taken: bool) -> RefKind {
    use BranchCond::*;
    match (cond, a_is_lhs, taken) {
        (Eq, _, true) | (Ne, _, false) => RefKind::Eq,
        (Eq, _, false) | (Ne, _, true) => RefKind::Ne,
        (Lt, true, true) | (Ge, true, false) => RefKind::Lt,
        (Lt, true, false) | (Ge, true, true) => RefKind::Ge,
        (Lt, false, true) | (Ge, false, false) => RefKind::Gt,
        (Lt, false, false) | (Ge, false, true) => RefKind::Le,
        (Ltu, true, true) | (Geu, true, false) => RefKind::LtuNonNeg,
        (Ltu, true, false) | (Geu, true, true) => RefKind::GeuNonNeg,
        (Ltu, false, _) | (Geu, false, _) => RefKind::None,
    }
}

/// Register effects of a call on the caller's state: the standard
/// calling convention clobbers `ra`, `tp`, `t0–t6`, and `a0–a7`,
/// preserves `sp`/`gp`/`s0–s11`. Must-freed facts are demoted to may —
/// a callee can recycle a site's static allocation.
fn after_call(state: &mut State) {
    for r in Reg::all() {
        let i = r.index();
        let caller_saved = matches!(i, 1 | 4..=7 | 10..=17 | 28..=31);
        if caller_saved {
            state.regs[i] = AbsVal::Top;
        }
    }
    for must in state.freed.values_mut() {
        *must = false;
    }
}

fn eval_alu(op: AluOp, a: &AbsVal, b: &AbsVal) -> AbsVal {
    use AbsVal::*;
    let delta = a.is_delta() || b.is_delta();
    match op {
        AluOp::Add => match (a, b) {
            (Num { val: x, .. }, Num { val: y, .. }) => Num {
                val: x.add(y),
                delta,
            },
            (Ptr { site, off, .. }, Num { val, .. })
            | (Num { val, .. }, Ptr { site, off, .. }) => Ptr {
                site: *site,
                off: off.add(val),
                delta,
            },
            (SpRel { off }, Num { val, .. }) | (Num { val, .. }, SpRel { off }) => SpRel {
                off: off.add(val),
            },
            _ => Top,
        },
        AluOp::Sub => match (a, b) {
            (Num { val: x, .. }, Num { val: y, .. }) => Num {
                val: x.sub(y),
                delta,
            },
            (Ptr { site, off, .. }, Num { val, .. }) => Ptr {
                site: *site,
                off: off.sub(val),
                delta,
            },
            (SpRel { off }, Num { val, .. }) => SpRel { off: off.sub(val) },
            (
                Ptr {
                    site: s1, off: o1, ..
                },
                Ptr {
                    site: s2, off: o2, ..
                },
            ) => {
                if s1 == s2 {
                    Num {
                        val: o1.sub(o2),
                        delta,
                    }
                } else {
                    // Distance between distinct allocations: the §V-C
                    // redzone-jumping stride. Numerically unknown.
                    Num {
                        val: SInt::top(),
                        delta: true,
                    }
                }
            }
            _ => Top,
        },
        AluOp::Mul => match (a, b) {
            (Num { val: x, .. }, Num { val: y, .. }) => Num {
                val: x.mul(y),
                delta,
            },
            _ => Top,
        },
        AluOp::And => match (a, b) {
            (Num { val: x, .. }, Num { val: y, .. }) => {
                let v = if let Some(m) = y.singleton() {
                    x.and_mask(m)
                } else if let Some(m) = x.singleton() {
                    y.and_mask(m)
                } else {
                    SInt::top()
                };
                Num { val: v, delta }
            }
            // Pointer align-down: sound when the base is granule-aligned.
            (Ptr { site, off, .. }, Num { val, .. })
            | (Num { val, .. }, Ptr { site, off, .. }) => match val.singleton() {
                Some(m) if m < 0 && (m.wrapping_neg() as u64).is_power_of_two() => {
                    let g = m.wrapping_neg() as u64;
                    if g <= GRANULE {
                        Ptr {
                            site: *site,
                            off: off.and_mask(m),
                            delta,
                        }
                    } else {
                        Top
                    }
                }
                _ => Top,
            },
            _ => Top,
        },
        AluOp::Or | AluOp::Xor => match (a, b) {
            (Num { val: x, .. }, Num { val: y, .. }) => {
                match (x.singleton(), y.singleton()) {
                    (Some(p), Some(q)) => Num {
                        val: SInt::val(if op == AluOp::Or { p | q } else { p ^ q }),
                        delta,
                    },
                    _ => Num {
                        val: SInt::top(),
                        delta,
                    },
                }
            }
            _ => Top,
        },
        AluOp::Div | AluOp::Rem => match (a, b) {
            (Num { val: x, .. }, Num { val: y, .. }) => {
                match (x.singleton(), y.singleton()) {
                    (Some(p), Some(q)) if q != 0 => Num {
                        val: SInt::val(if op == AluOp::Div { p / q } else { p % q }),
                        delta,
                    },
                    _ => Num {
                        val: SInt::top(),
                        delta,
                    },
                }
            }
            _ => Top,
        },
        AluOp::Sll => match (a, b) {
            (Num { val: x, .. }, Num { val: y, .. }) => Num {
                val: x.shl(y),
                delta,
            },
            _ => Top,
        },
        AluOp::Srl | AluOp::Sra => match (a, b) {
            (Num { val: x, .. }, Num { val: y, .. }) => Num {
                val: x.lshr(y),
                delta,
            },
            _ => Top,
        },
        AluOp::Slt | AluOp::Sltu => match (a, b) {
            (Num { .. }, Num { .. }) => Num {
                val: SInt::range(0, 1),
                delta,
            },
            _ => Num {
                val: SInt::range(0, 1),
                delta: false,
            },
        },
        // Any op the mini-ISA grows later defaults to no information.
        #[allow(unreachable_patterns)]
        _ => Top,
    }
}
