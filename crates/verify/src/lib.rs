//! # rest-verify — static ARM/DISARM dataflow verifier
//!
//! REST (ISCA 2018) detects spatial and temporal memory-safety
//! violations at runtime by blacklisting memory with stored tokens. The
//! paper's §IV leaves a contract to the *software*: compiler-inserted
//! stack instrumentation and the hardened allocator must keep `arm` and
//! `disarm` balanced, and guest code must never touch a region that is
//! still armed. This crate checks that contract *statically*, before a
//! single simulated cycle runs:
//!
//! * [`cfg`] recovers basic blocks, intra-procedural edges, call
//!   targets, and function extents from a built [`rest_isa::Program`];
//! * [`domain`] provides the abstract domain — strided intervals for
//!   integers, allocation-site pointers, frame-relative addresses, and a
//!   taint bit for cross-allocation pointer arithmetic (the paper's
//!   §V-C redzone-jumping attack);
//! * [`analysis`] runs a forward worklist fixpoint per function and
//!   reports arm/disarm imbalance, statically guaranteed REST
//!   violations (`must-trap`), and a suite of general lints;
//! * [`dom`] builds per-function dominator trees over the recovered
//!   CFG (Cooper–Harvey–Kennedy, irreducible-safe);
//! * [`elide`] proves per-access-PC check-elision verdicts
//!   (`MustBeSafe` / `Redundant`) on top of the fixpoint and emits
//!   `rest-elide/v1` maps the emulator consumes to skip checks;
//! * [`report`] renders deterministic JSON for `results/lint.json`.
//!
//! The `restlint` binary lints the whole in-tree corpus: every workload
//! generator must verify clean, and every attack program must produce at
//! least one true finding. Must-trap verdicts can be cross-checked
//! against the functional emulator with `restlint --differential`.
//!
//! ```
//! use rest_isa::{EcallNum, MemSize, ProgramBuilder, Reg};
//! use rest_verify::{verify_program, Severity};
//!
//! // A store into a region that is still armed: guaranteed violation.
//! let mut p = ProgramBuilder::new();
//! p.li(Reg::T0, 0x5000);
//! p.arm(Reg::T0);
//! p.li(Reg::T1, 7);
//! p.store(Reg::T1, Reg::T0, 8, MemSize::B8);
//! p.li(Reg::A0, 0);
//! p.ecall(EcallNum::Exit);
//! let result = verify_program(&p.build());
//! assert!(result.has_must_trap());
//! assert_eq!(result.findings.iter().filter(|f| f.severity == Severity::MustTrap).count(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod cfg;
pub mod dom;
pub mod domain;
pub mod elide;
pub mod report;

pub use analysis::{verify_program, Finding, Severity, VerifyResult};
pub use cfg::{Block, Cfg, Function, Succ};
pub use dom::DomTree;
pub use domain::{AbsVal, SInt, SiteId};
pub use elide::{elide_program, ElideScheme, ElisionReport, ELIDE_SCHEMA};
pub use report::{report_json, DiffOutcome, ProgramReport, REPORT_SCHEMA};
