//! Integration: the static check-elision pass over hand-built programs
//! and the real corpus.
//!
//! Soundness here is machine-checked from two directions: attacks (which
//! carry Error+ findings) must always get an *empty* map, and workload
//! coverage must come exclusively from accesses the gates can actually
//! justify. The end-to-end differential (emulator behaviour identical
//! with elision on and off) lives in the repo-level test suite; these
//! tests pin the static semantics.

use rest_isa::{EcallNum, MemSize, Program, ProgramBuilder, Reg};
use rest_verify::elide::{elide_program, ElideScheme};
use rest_verify::{verify_program, Severity};
use rest_workloads::{Scale, Workload, WorkloadParams, GOBMK_INPUTS};
use rest_core::ElideClass;
use rest_runtime::StackScheme;
use rest_core::TokenWidth;

fn rows() -> Vec<(String, Program)> {
    let mut rows = Vec::new();
    for w in Workload::ALL {
        let seeds: Vec<(String, u64)> = if w == Workload::Gobmk {
            GOBMK_INPUTS
                .iter()
                .map(|&(n, s)| (n.to_string(), s))
                .collect()
        } else {
            vec![(w.name().to_string(), 0xC0FFEE)]
        };
        for (name, seed) in seeds {
            let params = WorkloadParams {
                scale: Scale::Test,
                stack_scheme: StackScheme::Rest,
                token_width: TokenWidth::B64,
                seed,
            };
            rows.push((name, w.build(&params)));
        }
    }
    rows
}

#[test]
fn workload_rows_elide_a_substantial_fraction_of_checks() {
    let mut hits = 0;
    for (name, program) in rows() {
        let report = elide_program(&program, ElideScheme::Rest);
        assert!(
            report.preconditions_ok,
            "workload '{name}' lints clean, so elision preconditions must hold"
        );
        let pct = report.elide_pct();
        println!(
            "{name}: {}/{} elided ({pct:.1}%), {} must-safe, {} redundant",
            report.map.len(),
            report.access_pcs,
            report.must_be_safe,
            report.redundant
        );
        if pct >= 20.0 {
            hits += 1;
        }
    }
    assert!(
        hits >= 4,
        "at least 4 of 16 rows must elide >= 20% of checks, got {hits}"
    );
}

#[test]
fn attack_programs_with_errors_get_empty_maps() {
    use rest_attacks::Attack;
    for attack in Attack::ALL {
        let program = attack.build(StackScheme::Rest);
        let result = verify_program(&program);
        let has_error = result
            .findings
            .iter()
            .any(|f| f.severity >= Severity::Error);
        let report = elide_program(&program, ElideScheme::Rest);
        if has_error {
            assert!(
                !report.preconditions_ok && report.map.is_empty(),
                "attack '{}' has Error+ findings; its elision map must be empty",
                attack.name()
            );
        }
    }
}

/// A diamond whose false arm frees the chunk: the rejoin access may not
/// be `MustBeSafe` (the site is may-freed), and no check above the split
/// can make it `Redundant` across the free either (ecalls clear facts).
#[test]
fn diamond_with_free_on_one_arm_blocks_elision_at_the_join() {
    let mut p = ProgramBuilder::new();
    p.li(Reg::A0, 64);
    p.ecall(EcallNum::Malloc);
    p.mv(Reg::S0, Reg::A0);
    // Both arms and the join store through s0.
    let else_l = p.new_label();
    let join_l = p.new_label();
    p.beq(Reg::A1, Reg::ZERO, else_l);
    p.store(Reg::A1, Reg::S0, 0, MemSize::B8); // then-arm: in-bounds
    p.j(join_l);
    p.bind(else_l);
    p.mv(Reg::A0, Reg::S0);
    p.ecall(EcallNum::Free); // else-arm frees the chunk
    p.bind(join_l);
    p.store(Reg::A2, Reg::S0, 8, MemSize::B8); // UAF on the else path
    p.li(Reg::A0, 0);
    p.ecall(EcallNum::Exit);
    let program = p.build();
    let report = elide_program(&program, ElideScheme::Rest);
    if !report.preconditions_ok {
        // The verifier may flag the potential UAF as an error — which is
        // itself a sound reason to elide nothing.
        assert!(report.map.is_empty());
        return;
    }
    // The join store must keep its check: its site is may-freed.
    let join_pc = program
        .instructions()
        .iter()
        .enumerate()
        .filter(|(_, i)| matches!(i, rest_isa::Inst::Store { offset: 8, .. }))
        .map(|(idx, _)| Program::CODE_BASE + idx as u64 * rest_isa::PC_STEP)
        .next()
        .expect("join store exists");
    assert_eq!(report.map.class_at(join_pc), None);
}

/// Straight-line double access through an unproven base: the first check
/// dominates and covers the second, so the second is `Redundant`.
#[test]
fn dominating_identical_check_makes_the_second_access_redundant() {
    let mut p = ProgramBuilder::new();
    // An unknown base (read from memory) that no gate can prove safe.
    p.li(Reg::T0, 0x10_0000);
    p.load(Reg::S0, Reg::T0, 0, MemSize::B8);
    p.load(Reg::T1, Reg::S0, 0, MemSize::B8); // generator
    p.load(Reg::T2, Reg::S0, 0, MemSize::B8); // redundant
    p.li(Reg::A0, 0);
    p.ecall(EcallNum::Exit);
    let program = p.build();
    let report = elide_program(&program, ElideScheme::Rest);
    assert!(report.preconditions_ok);
    let pc = |idx: u64| Program::CODE_BASE + idx * rest_isa::PC_STEP;
    // The generator keeps its check; the repeat is covered by it.
    assert_eq!(report.map.class_at(pc(2)), None);
    assert_eq!(report.map.class_at(pc(3)), Some(ElideClass::Redundant));
}

/// A free between two identical checks kills availability: the second
/// access is not redundant (quarantine may have armed the bytes).
#[test]
fn an_intervening_ecall_kills_check_availability() {
    let mut p = ProgramBuilder::new();
    p.li(Reg::T0, 0x10_0000);
    p.load(Reg::S0, Reg::T0, 0, MemSize::B8);
    p.load(Reg::T1, Reg::S0, 0, MemSize::B8);
    p.li(Reg::A0, 7);
    p.ecall(EcallNum::PutChar); // any ecall clears facts
    p.load(Reg::T2, Reg::S0, 0, MemSize::B8);
    p.li(Reg::A0, 0);
    p.ecall(EcallNum::Exit);
    let program = p.build();
    let report = elide_program(&program, ElideScheme::Rest);
    assert!(report.preconditions_ok);
    // `ecall(num)` emits `li a7, num` + `ecall`, so the second load sits
    // at instruction index 6.
    let pc = |idx: u64| Program::CODE_BASE + idx * rest_isa::PC_STEP;
    assert_eq!(report.map.class_at(pc(6)), None);
}

/// Redefining the base register between two checks kills availability.
#[test]
fn base_redefinition_kills_check_availability() {
    let mut p = ProgramBuilder::new();
    p.li(Reg::T0, 0x10_0000);
    p.load(Reg::S0, Reg::T0, 0, MemSize::B8);
    p.load(Reg::T1, Reg::S0, 0, MemSize::B8);
    p.load(Reg::S0, Reg::T0, 0, MemSize::B8); // s0 redefined
    p.load(Reg::T2, Reg::S0, 0, MemSize::B8);
    p.li(Reg::A0, 0);
    p.ecall(EcallNum::Exit);
    let program = p.build();
    let report = elide_program(&program, ElideScheme::Rest);
    assert!(report.preconditions_ok);
    let pc = |idx: u64| Program::CODE_BASE + idx * rest_isa::PC_STEP;
    assert_eq!(report.map.class_at(pc(4)), None);
}

/// In-bounds accesses to a never-freed heap chunk are `MustBeSafe`; the
/// serialized report counts stay mutually consistent.
#[test]
fn in_bounds_heap_accesses_are_must_be_safe() {
    let mut p = ProgramBuilder::new();
    p.li(Reg::A0, 64);
    p.ecall(EcallNum::Malloc);
    p.li(Reg::T1, 42);
    p.store(Reg::T1, Reg::A0, 0, MemSize::B8);
    p.store(Reg::T1, Reg::A0, 56, MemSize::B8);
    p.load(Reg::T2, Reg::A0, 0, MemSize::B8);
    p.li(Reg::A0, 0);
    p.ecall(EcallNum::Exit);
    let program = p.build();
    let report = elide_program(&program, ElideScheme::Rest);
    assert!(report.preconditions_ok);
    // `ecall(num)` emits two instructions, so the accesses sit at 4..=6.
    let pc = |idx: u64| Program::CODE_BASE + idx * rest_isa::PC_STEP;
    assert_eq!(report.map.class_at(pc(4)), Some(ElideClass::MustBeSafe));
    assert_eq!(report.map.class_at(pc(5)), Some(ElideClass::MustBeSafe));
    assert_eq!(report.map.class_at(pc(6)), Some(ElideClass::MustBeSafe));
    assert_eq!(report.must_be_safe + report.redundant, report.map.len());
    assert_eq!(report.access_pcs, report.map.len() + report.may_fault);
    // The JSON artifact round-trips through the schema validator.
    let doc = report.to_json("unit");
    rest_obs::elide::validate_elide(&doc).expect("artifact validates");
}

/// An out-of-bounds constant offset is never `MustBeSafe` (it would
/// land in the redzone), even though the chunk is live.
#[test]
fn out_of_bounds_offsets_keep_their_checks() {
    let mut p = ProgramBuilder::new();
    p.li(Reg::A0, 64);
    p.ecall(EcallNum::Malloc);
    p.li(Reg::T1, 42);
    p.store(Reg::T1, Reg::A0, 64, MemSize::B8); // one past the end
    p.li(Reg::A0, 0);
    p.ecall(EcallNum::Exit);
    let program = p.build();
    let report = elide_program(&program, ElideScheme::Rest);
    let pc = Program::CODE_BASE + 4 * rest_isa::PC_STEP;
    assert_eq!(report.map.class_at(pc), None);
}

/// Under the ASan scheme stack accesses are never statically elided:
/// stack redzone pokes are shadow writes the arm model cannot see.
/// Covers both the absolute (main-frame) and the sp-relative (callee)
/// stack gates.
#[test]
fn asan_scheme_never_elides_stack_accesses() {
    let mut p = ProgramBuilder::new();
    p.li(Reg::SP, 0x7fff_f000); // main sets up the stack pointer
    p.li(Reg::T1, 1);
    p.store(Reg::T1, Reg::SP, -8, MemSize::B8); // idx 2: absolute frame
    let f = p.new_label();
    p.call(f);
    p.li(Reg::A0, 0);
    p.ecall(EcallNum::Exit);
    p.bind(f);
    p.store(Reg::T1, Reg::SP, -16, MemSize::B8); // idx 7: sp-relative
    p.ret();
    let program = p.build();
    let rest = elide_program(&program, ElideScheme::Rest);
    let asan = elide_program(&program, ElideScheme::Asan);
    assert!(rest.preconditions_ok && asan.preconditions_ok);
    let pc = |idx: u64| Program::CODE_BASE + idx * rest_isa::PC_STEP;
    assert_eq!(rest.map.class_at(pc(2)), Some(ElideClass::MustBeSafe));
    assert_eq!(rest.map.class_at(pc(7)), Some(ElideClass::MustBeSafe));
    assert_eq!(asan.map.class_at(pc(2)), None);
    assert_eq!(asan.map.class_at(pc(7)), None);
}
