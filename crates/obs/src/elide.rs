//! `rest-elide/v1` artifact validation.
//!
//! An elision map is a *load-bearing* artifact: the emulator skips
//! memory-safety checks at every PC it lists, so a malformed or
//! internally inconsistent document is a security bug, not a cosmetic
//! one. This module validates a parsed document against the schema that
//! `rest-verify` emits and that CI re-checks on every run (both from
//! Rust and from the repository's Python gate, which mirrors these
//! rules).
//!
//! A valid `rest-elide/v1` document is an object with exactly these
//! fields, in order:
//!
//! | field              | type   | constraint                                  |
//! |--------------------|--------|---------------------------------------------|
//! | `schema`           | string | `"rest-elide/v1"`                           |
//! | `program`          | string | non-empty                                   |
//! | `scheme`           | string | `"rest"` or `"asan"`                        |
//! | `preconditions_ok` | bool   | `false` forces `elided == 0`                |
//! | `access_pcs`       | uint   | `== elided + may_fault`                     |
//! | `elided`           | uint   | `== must_be_safe + redundant == #entries`   |
//! | `must_be_safe`     | uint   |                                             |
//! | `redundant`        | uint   |                                             |
//! | `may_fault`        | uint   |                                             |
//! | `entries`          | array  | `{pc, class}` sorted strictly by `pc`       |
//!
//! Entry `class` values are `"must-be-safe"` or `"redundant"`, and the
//! per-class entry tallies must equal the header counts.

use crate::json::Json;

/// Schema identifier the validator accepts.
pub const ELIDE_SCHEMA: &str = "rest-elide/v1";

fn get<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn get_u64(doc: &Json, key: &str) -> Result<u64, String> {
    get(doc, key)?
        .as_u64()
        .ok_or_else(|| format!("field '{key}' is not an unsigned integer"))
}

fn get_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    get(doc, key)?
        .as_str()
        .ok_or_else(|| format!("field '{key}' is not a string"))
}

/// Validates a parsed `rest-elide/v1` document. Returns a description
/// of the first violation found.
pub fn validate_elide(doc: &Json) -> Result<(), String> {
    let schema = get_str(doc, "schema")?;
    if schema != ELIDE_SCHEMA {
        return Err(format!("schema is '{schema}', expected '{ELIDE_SCHEMA}'"));
    }
    let program = get_str(doc, "program")?;
    if program.is_empty() {
        return Err("field 'program' is empty".to_string());
    }
    let scheme = get_str(doc, "scheme")?;
    if scheme != "rest" && scheme != "asan" {
        return Err(format!("scheme is '{scheme}', expected 'rest' or 'asan'"));
    }
    let preconditions_ok = match get(doc, "preconditions_ok")? {
        Json::Bool(b) => *b,
        _ => return Err("field 'preconditions_ok' is not a bool".to_string()),
    };

    let access_pcs = get_u64(doc, "access_pcs")?;
    let elided = get_u64(doc, "elided")?;
    let must_be_safe = get_u64(doc, "must_be_safe")?;
    let redundant = get_u64(doc, "redundant")?;
    let may_fault = get_u64(doc, "may_fault")?;

    if !preconditions_ok && elided != 0 {
        return Err(format!(
            "preconditions failed but {elided} checks are elided"
        ));
    }
    if must_be_safe + redundant != elided {
        return Err(format!(
            "must_be_safe ({must_be_safe}) + redundant ({redundant}) != elided ({elided})"
        ));
    }
    if elided + may_fault != access_pcs {
        return Err(format!(
            "elided ({elided}) + may_fault ({may_fault}) != access_pcs ({access_pcs})"
        ));
    }

    let entries = get(doc, "entries")?
        .as_arr()
        .ok_or_else(|| "field 'entries' is not an array".to_string())?;
    if entries.len() as u64 != elided {
        return Err(format!(
            "entries has {} elements, header says {elided}",
            entries.len()
        ));
    }
    let mut prev_pc: Option<u64> = None;
    let mut safe_seen = 0u64;
    let mut redundant_seen = 0u64;
    for (i, e) in entries.iter().enumerate() {
        let pc = get_u64(e, "pc").map_err(|m| format!("entries[{i}]: {m}"))?;
        if let Some(p) = prev_pc {
            if pc <= p {
                return Err(format!(
                    "entries[{i}]: pc {pc:#x} not strictly above predecessor {p:#x}"
                ));
            }
        }
        prev_pc = Some(pc);
        let class = get_str(e, "class").map_err(|m| format!("entries[{i}]: {m}"))?;
        match class {
            "must-be-safe" => safe_seen += 1,
            "redundant" => redundant_seen += 1,
            other => {
                return Err(format!("entries[{i}]: unknown class '{other}'"));
            }
        }
    }
    if safe_seen != must_be_safe || redundant_seen != redundant {
        return Err(format!(
            "entry class tallies ({safe_seen} must-be-safe, {redundant_seen} redundant) \
             disagree with header counts ({must_be_safe}, {redundant})"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_doc() -> Json {
        Json::parse(
            r#"{
              "schema": "rest-elide/v1",
              "program": "bzip2",
              "scheme": "rest",
              "preconditions_ok": true,
              "access_pcs": 5,
              "elided": 3,
              "must_be_safe": 2,
              "redundant": 1,
              "may_fault": 2,
              "entries": [
                {"pc": 65536, "class": "must-be-safe"},
                {"pc": 65544, "class": "redundant"},
                {"pc": 65552, "class": "must-be-safe"}
              ]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn a_consistent_document_validates() {
        assert_eq!(validate_elide(&valid_doc()), Ok(()));
    }

    #[test]
    fn count_mismatches_are_rejected() {
        let doc = Json::parse(
            r#"{
              "schema": "rest-elide/v1", "program": "x", "scheme": "rest",
              "preconditions_ok": true,
              "access_pcs": 5, "elided": 2, "must_be_safe": 2, "redundant": 1,
              "may_fault": 2, "entries": []
            }"#,
        )
        .unwrap();
        assert!(validate_elide(&doc).unwrap_err().contains("!= elided"));
    }

    #[test]
    fn unsorted_entries_are_rejected() {
        let doc = Json::parse(
            r#"{
              "schema": "rest-elide/v1", "program": "x", "scheme": "rest",
              "preconditions_ok": true,
              "access_pcs": 2, "elided": 2, "must_be_safe": 2, "redundant": 0,
              "may_fault": 0, "entries": [
                {"pc": 65544, "class": "must-be-safe"},
                {"pc": 65536, "class": "must-be-safe"}
              ]
            }"#,
        )
        .unwrap();
        assert!(validate_elide(&doc)
            .unwrap_err()
            .contains("not strictly above"));
    }

    #[test]
    fn failed_preconditions_require_an_empty_map() {
        let doc = Json::parse(
            r#"{
              "schema": "rest-elide/v1", "program": "x", "scheme": "rest",
              "preconditions_ok": false,
              "access_pcs": 2, "elided": 1, "must_be_safe": 1, "redundant": 0,
              "may_fault": 1, "entries": [{"pc": 65536, "class": "must-be-safe"}]
            }"#,
        )
        .unwrap();
        assert!(validate_elide(&doc)
            .unwrap_err()
            .contains("preconditions failed"));
    }

    #[test]
    fn wrong_schema_and_scheme_are_rejected() {
        let mut bad = valid_doc();
        if let Json::Obj(fields) = &mut bad {
            fields[0].1 = Json::Str("rest-elide/v2".to_string());
        }
        assert!(validate_elide(&bad).unwrap_err().contains("schema"));
        let mut bad = valid_doc();
        if let Json::Obj(fields) = &mut bad {
            fields[2].1 = Json::Str("mte".to_string());
        }
        assert!(validate_elide(&bad).unwrap_err().contains("scheme"));
    }

    #[test]
    fn class_tally_disagreement_is_rejected() {
        let mut bad = valid_doc();
        if let Json::Obj(fields) = &mut bad {
            // Flip must_be_safe/redundant header counts.
            fields[6].1 = Json::UInt(1);
            fields[7].1 = Json::UInt(2);
        }
        assert!(validate_elide(&bad).unwrap_err().contains("tallies"));
    }
}
