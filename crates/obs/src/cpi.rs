//! Commit-time CPI stacks.
//!
//! Every simulated cycle is charged to exactly one [`CpiComponent`], so
//! the components of a [`CpiStack`] always sum to the core's total
//! cycle count. The pipeline builds the stack at commit time: each
//! micro-op advances the commit frontier by a non-negative delta
//! (commit cycles are monotone in program order), and that delta is
//! split across the stall causes the micro-op actually experienced, in
//! specificity order, with any unexplained remainder charged to
//! [`CpiComponent::Base`]. Because the split is a clamped fill of a
//! known total, the exact-sum property holds by construction — there is
//! no post-hoc normalisation step that could drift.

use crate::json::Json;

/// Where a committed cycle went. Ordered from most to least specific;
/// the pipeline fills buckets in this order (skipping `Base`, which
/// takes the remainder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpiComponent {
    /// Useful work: cycles not explained by any stall below.
    Base,
    /// Frontend stalls: I-cache misses and fetch bandwidth.
    FetchStall,
    /// Branch redirects: cycles lost to pipeline refill after a
    /// mispredicted or serialising control transfer.
    Branch,
    /// Issue-queue-full dispatch stalls.
    Iq,
    /// Reorder-buffer-full dispatch stalls.
    Rob,
    /// Load/store-queue-full dispatch stalls.
    Lsq,
    /// Cycles waiting on loads served by the L2 (L1D misses).
    L1dMiss,
    /// Cycles waiting on loads served by DRAM, up to the L2 hit
    /// latency (the L2 lookup on the miss path).
    L2Miss,
    /// Cycles waiting on DRAM beyond the L2 lookup.
    Dram,
    /// Commit blocked draining stores (debug-mode REST: stores must
    /// be checked before retiring past them).
    StoreDrain,
    /// Extra latency from REST token checks: disarm re-access delay
    /// and debug-mode lines held for checking.
    RestCheck,
}

impl CpiComponent {
    /// All components, in stack-rendering order (base first).
    pub const ALL: [CpiComponent; 11] = [
        CpiComponent::Base,
        CpiComponent::FetchStall,
        CpiComponent::Branch,
        CpiComponent::Iq,
        CpiComponent::Rob,
        CpiComponent::Lsq,
        CpiComponent::L1dMiss,
        CpiComponent::L2Miss,
        CpiComponent::Dram,
        CpiComponent::StoreDrain,
        CpiComponent::RestCheck,
    ];

    /// Stable snake_case key used in JSON documents and counter maps.
    pub const fn key(self) -> &'static str {
        match self {
            CpiComponent::Base => "base",
            CpiComponent::FetchStall => "fetch_stall",
            CpiComponent::Branch => "branch",
            CpiComponent::Iq => "iq",
            CpiComponent::Rob => "rob",
            CpiComponent::Lsq => "lsq",
            CpiComponent::L1dMiss => "l1d_miss",
            CpiComponent::L2Miss => "l2_miss",
            CpiComponent::Dram => "dram",
            CpiComponent::StoreDrain => "store_drain",
            CpiComponent::RestCheck => "rest_check",
        }
    }

    const fn index(self) -> usize {
        match self {
            CpiComponent::Base => 0,
            CpiComponent::FetchStall => 1,
            CpiComponent::Branch => 2,
            CpiComponent::Iq => 3,
            CpiComponent::Rob => 4,
            CpiComponent::Lsq => 5,
            CpiComponent::L1dMiss => 6,
            CpiComponent::L2Miss => 7,
            CpiComponent::Dram => 8,
            CpiComponent::StoreDrain => 9,
            CpiComponent::RestCheck => 10,
        }
    }
}

/// Cycle counts per [`CpiComponent`]. Plain data; `Copy` so it can
/// live inside the core's `Copy` stats block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpiStack {
    cycles: [u64; 11],
}

impl CpiStack {
    /// Charges `cycles` to `component`.
    pub fn add(&mut self, component: CpiComponent, cycles: u64) {
        self.cycles[component.index()] += cycles;
    }

    /// Cycles charged to `component`.
    pub fn get(&self, component: CpiComponent) -> u64 {
        self.cycles[component.index()]
    }

    /// Total cycles across all components. Equals `core.cycles` when
    /// the stack was built by the pipeline.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Accumulates another stack into this one (engine result merge).
    pub fn merge(&mut self, other: &CpiStack) {
        let CpiStack { cycles } = other;
        for (mine, theirs) in self.cycles.iter_mut().zip(cycles.iter()) {
            *mine += theirs;
        }
    }

    /// `(key, cycles)` pairs in stack order, for counter maps.
    pub fn entries(&self) -> Vec<(&'static str, u64)> {
        CpiComponent::ALL
            .iter()
            .map(|&c| (c.key(), self.get(c)))
            .collect()
    }

    /// JSON object `{component: cycles, ..., "total": sum}`.
    pub fn to_json(&self) -> Json {
        let mut members: Vec<(&str, Json)> = CpiComponent::ALL
            .iter()
            .map(|&c| (c.key(), Json::UInt(self.get(c))))
            .collect();
        members.push(("total", Json::UInt(self.total())));
        Json::obj(members)
    }

    /// Renders the stack as aligned text with a proportional bar per
    /// component, e.g. for `--verbose` experiment output:
    ///
    /// ```text
    /// CPI stack (1200 cycles, CPI 1.20):
    ///   base         600  50.0% ##########################
    ///   l1d_miss     300  25.0% #############
    ///   ...
    /// ```
    pub fn render(&self, instructions: u64) -> String {
        let total = self.total();
        let mut out = String::new();
        if instructions > 0 {
            out.push_str(&format!(
                "CPI stack ({} cycles, CPI {:.2}):\n",
                total,
                total as f64 / instructions as f64
            ));
        } else {
            out.push_str(&format!("CPI stack ({total} cycles):\n"));
        }
        for &c in CpiComponent::ALL.iter() {
            let cycles = self.get(c);
            if cycles == 0 && c != CpiComponent::Base {
                continue;
            }
            let pct = if total > 0 {
                100.0 * cycles as f64 / total as f64
            } else {
                0.0
            };
            let bar_len = (pct / 2.0).round() as usize;
            out.push_str(&format!(
                "  {:<12} {:>12}  {:>5.1}% {}\n",
                c.key(),
                cycles,
                pct,
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_cover_all_indices_exactly_once() {
        let mut seen = [false; 11];
        for &c in CpiComponent::ALL.iter() {
            assert!(!seen[c.index()], "duplicate index for {:?}", c);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Keys are unique too.
        let mut keys: Vec<_> = CpiComponent::ALL.iter().map(|c| c.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), CpiComponent::ALL.len());
    }

    #[test]
    fn add_merge_total_are_consistent() {
        let mut a = CpiStack::default();
        a.add(CpiComponent::Base, 100);
        a.add(CpiComponent::Dram, 40);
        let mut b = CpiStack::default();
        b.add(CpiComponent::Base, 10);
        b.add(CpiComponent::RestCheck, 5);
        a.merge(&b);
        assert_eq!(a.get(CpiComponent::Base), 110);
        assert_eq!(a.get(CpiComponent::Dram), 40);
        assert_eq!(a.get(CpiComponent::RestCheck), 5);
        assert_eq!(a.total(), 155);
    }

    #[test]
    fn json_includes_every_component_and_total() {
        let mut s = CpiStack::default();
        s.add(CpiComponent::L1dMiss, 7);
        let j = s.to_json();
        for &c in CpiComponent::ALL.iter() {
            assert!(j.get(c.key()).is_some(), "missing {}", c.key());
        }
        assert_eq!(j.get("total").unwrap().as_u64(), Some(7));
        assert_eq!(j.get("l1d_miss").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn render_skips_empty_components_but_keeps_base() {
        let mut s = CpiStack::default();
        s.add(CpiComponent::Base, 90);
        s.add(CpiComponent::StoreDrain, 10);
        let text = s.render(50);
        assert!(text.contains("CPI 2.00"));
        assert!(text.contains("base"));
        assert!(text.contains("store_drain"));
        assert!(!text.contains("dram"));
        // Zero-instruction render must not divide by zero.
        let empty = CpiStack::default().render(0);
        assert!(empty.contains("base"));
    }
}
