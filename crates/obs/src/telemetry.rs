//! `rest-telemetry/v1` — campaign-wide engine telemetry schema.
//!
//! The experiment engine records one *span* per submitted job: which
//! worker ran it, how long it queued, how long it ran, how many
//! attempts it took, and how it ended. The harness serialises those
//! spans — plus per-worker rollups, cache hit/miss counts, and the
//! resilience counters — into a `rest-telemetry/v1` document.
//!
//! Wall times are host-dependent, so telemetry documents follow the
//! `BENCH_` naming convention (by default
//! `results/BENCH_telemetry.json`) and are **never** part of an
//! experiment's deterministic result JSON.
//!
//! Like [`crate::hotspots`], this module owns the schema identifier and
//! the validator; assembly lives in `rest-bench`. The validator checks
//! cross-member consistency, not just shape: cache hits/misses must
//! equal the cached/fresh span counts, the panic/timeout counters must
//! equal the spans that ended that way, and `transient_retries` must
//! equal the extra attempts recorded across spans.

use crate::json::Json;

/// Schema identifier emitted in (and required of) telemetry documents.
pub const SCHEMA: &str = "rest-telemetry/v1";

fn req_u64(obj: &Json, key: &str, what: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{what} missing u64 {key:?}"))
}

fn req_f64(obj: &Json, key: &str, what: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{what} missing number {key:?}"))
}

/// Checks that a parsed document matches the `rest-telemetry/v1` shape
/// and that its summary counters reconcile with its spans.
pub fn validate(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("unexpected schema {s:?}")),
        None => return Err("missing \"schema\"".to_string()),
    }
    doc.get("campaign")
        .and_then(Json::as_str)
        .ok_or("missing \"campaign\"")?;
    let effective_jobs = req_u64(doc, "effective_jobs", "document")?;
    if effective_jobs == 0 {
        return Err("effective_jobs must be >= 1".to_string());
    }

    let workers = doc
        .get("workers")
        .and_then(Json::as_arr)
        .ok_or("missing \"workers\" array")?;
    for (i, w) in workers.iter().enumerate() {
        let id = req_u64(w, "worker", "worker")?;
        if id != i as u64 {
            return Err(format!("worker {i} has id {id}; ids must be dense"));
        }
        req_u64(w, "jobs", "worker")?;
        req_f64(w, "busy_ms", "worker")?;
    }

    let spans = doc
        .get("spans")
        .and_then(Json::as_arr)
        .ok_or("missing \"spans\" array")?;
    let (mut cached, mut fresh) = (0u64, 0u64);
    let (mut panics, mut timeouts, mut retries) = (0u64, 0u64, 0u64);
    for (i, s) in spans.iter().enumerate() {
        s.get("job")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("span {i} missing \"job\""))?;
        let worker = req_u64(s, "worker", "span")?;
        if worker >= workers.len() as u64 {
            return Err(format!(
                "span {i} names worker {worker}, but only {} workers are listed",
                workers.len()
            ));
        }
        for key in ["start_ms", "queue_ms", "run_ms"] {
            req_f64(s, key, "span")?;
        }
        let attempts = req_u64(s, "attempts", "span")?;
        let is_cached = match s.get("cached") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(format!("span {i} missing bool \"cached\"")),
        };
        let outcome = s
            .get("outcome")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("span {i} missing \"outcome\""))?;
        if is_cached {
            cached += 1;
        } else {
            fresh += 1;
            if attempts == 0 {
                return Err(format!("fresh span {i} reports zero attempts"));
            }
            retries += attempts - 1;
        }
        match outcome {
            "panic" => panics += 1,
            "timeout" => timeouts += 1,
            _ => {}
        }
    }

    let cache = doc.get("cache").ok_or("missing \"cache\"")?;
    if req_u64(cache, "hits", "cache")? != cached {
        return Err(format!(
            "cache.hits disagrees with the {cached} cached span(s)"
        ));
    }
    if req_u64(cache, "misses", "cache")? != fresh {
        return Err(format!(
            "cache.misses disagrees with the {fresh} fresh span(s)"
        ));
    }

    let resilience = doc.get("resilience").ok_or("missing \"resilience\"")?;
    for (key, want) in [
        ("panics", panics),
        ("timeouts", timeouts),
        ("transient_retries", retries),
    ] {
        let got = req_u64(resilience, key, "resilience")?;
        if got != want {
            return Err(format!(
                "resilience.{key} is {got} but the spans record {want}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(job: &str, worker: u64, attempts: u64, cached: bool, outcome: &str) -> Json {
        Json::obj(vec![
            ("job", Json::from(job)),
            ("worker", Json::UInt(worker)),
            ("start_ms", Json::Num(1.0)),
            ("queue_ms", Json::Num(0.5)),
            ("run_ms", Json::Num(12.0)),
            ("attempts", Json::UInt(attempts)),
            ("cached", Json::Bool(cached)),
            ("outcome", Json::from(outcome)),
        ])
    }

    fn doc() -> Json {
        Json::obj(vec![
            ("schema", Json::from(SCHEMA)),
            ("campaign", Json::from("hotspots")),
            ("effective_jobs", Json::UInt(2)),
            (
                "workers",
                Json::Arr(
                    (0..2)
                        .map(|w| {
                            Json::obj(vec![
                                ("worker", Json::UInt(w)),
                                ("jobs", Json::UInt(2)),
                                ("busy_ms", Json::Num(20.0)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "spans",
                Json::Arr(vec![
                    span("lbm plain", 0, 1, false, "ok"),
                    span("lbm rest-secure-full", 1, 3, false, "ok"),
                    span("lbm plain", 0, 0, true, "ok"),
                    span("mcf plain", 1, 1, false, "panic"),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![("hits", Json::UInt(1)), ("misses", Json::UInt(3))]),
            ),
            (
                "resilience",
                Json::obj(vec![
                    ("panics", Json::UInt(1)),
                    ("timeouts", Json::UInt(0)),
                    ("transient_retries", Json::UInt(2)),
                ]),
            ),
        ])
    }

    fn patch(mut doc: Json, section: &str, key: &str, value: u64) -> Json {
        if let Json::Obj(members) = &mut doc {
            if let Some((_, Json::Obj(sec))) = members.iter_mut().find(|(k, _)| k == section) {
                for (k, v) in sec.iter_mut() {
                    if k == key {
                        *v = Json::UInt(value);
                    }
                }
            }
        }
        doc
    }

    #[test]
    fn well_formed_document_validates() {
        validate(&doc()).expect("schema-valid");
    }

    #[test]
    fn cache_counters_must_reconcile_with_spans() {
        let err = validate(&patch(doc(), "cache", "hits", 2)).unwrap_err();
        assert!(err.contains("cache.hits"), "{err}");
        let err = validate(&patch(doc(), "cache", "misses", 4)).unwrap_err();
        assert!(err.contains("cache.misses"), "{err}");
    }

    #[test]
    fn resilience_counters_must_reconcile_with_spans() {
        for key in ["panics", "timeouts", "transient_retries"] {
            let err = validate(&patch(doc(), "resilience", key, 9)).unwrap_err();
            assert!(err.contains(&format!("resilience.{key}")), "{err}");
        }
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(validate(&Json::Null).is_err());
        assert!(validate(&Json::obj(vec![("schema", Json::from("other/v9"))])).is_err());
        // A span pointing at a worker that is not listed.
        let mut d = doc();
        if let Json::Obj(members) = &mut d {
            if let Some((_, Json::Arr(spans))) = members.iter_mut().find(|(k, _)| k == "spans") {
                spans.push(span("stray", 7, 1, false, "ok"));
            }
        }
        let err = validate(&d).unwrap_err();
        assert!(err.contains("worker 7"), "{err}");
    }
}
