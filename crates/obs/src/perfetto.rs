//! Chrome trace-event export (loadable in `ui.perfetto.dev`).
//!
//! [`PerfettoTrace`] builds a document in the legacy Chrome trace-event
//! JSON format, which Perfetto's web UI (and `chrome://tracing`)
//! ingests directly: a top-level `{"traceEvents": [...]}` object whose
//! events are `"ph": "M"` metadata records naming the process and its
//! tracks, followed by `"ph": "X"` *complete* events — one slice per
//! recorded item with a start timestamp, a duration, a category, and
//! free-form `args`.
//!
//! The simulator has no wall clock, so timestamps are simulated
//! *cycles* mapped 1:1 to the format's microsecond field: a slice from
//! cycle 120 to 140 renders as 20 "µs" in the UI. Tracks are registered
//! explicitly (the pipeline uses one per stage) and keep their
//! registration order via `thread_sort_index`.

use crate::json::Json;

/// Opaque handle for a registered track (a "thread" in trace-event
/// terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackId(u64);

struct Slice {
    name: String,
    category: String,
    track: TrackId,
    /// Start, in cycles (rendered as µs).
    ts: u64,
    /// Duration, in cycles (rendered as µs).
    dur: u64,
    args: Vec<(String, Json)>,
}

struct Counter {
    name: String,
    track: TrackId,
    /// Sample time, in cycles (rendered as µs).
    ts: u64,
    /// Series name → value at `ts`; each series renders as one line in
    /// the counter track.
    series: Vec<(String, Json)>,
}

/// Builder for a Chrome trace-event document.
pub struct PerfettoTrace {
    process_name: String,
    tracks: Vec<String>,
    slices: Vec<Slice>,
    counters: Vec<Counter>,
}

impl PerfettoTrace {
    /// An empty trace for the named process (shown as the Perfetto
    /// process label).
    pub fn new(process_name: &str) -> PerfettoTrace {
        PerfettoTrace {
            process_name: process_name.to_string(),
            tracks: Vec::new(),
            slices: Vec::new(),
            counters: Vec::new(),
        }
    }

    /// Registers a track; slices on it appear under this label, and
    /// tracks display in registration order.
    pub fn track(&mut self, name: &str) -> TrackId {
        self.tracks.push(name.to_string());
        // tid 0 is reserved by some importers; start at 1.
        TrackId(self.tracks.len() as u64)
    }

    /// Records one complete slice (`ph: "X"`). `ts`/`dur` are in
    /// simulated cycles; `args` become the slice's detail pane.
    pub fn slice(
        &mut self,
        track: TrackId,
        name: &str,
        category: &str,
        ts: u64,
        dur: u64,
        args: Vec<(&str, Json)>,
    ) {
        self.slices.push(Slice {
            name: name.to_string(),
            category: category.to_string(),
            track,
            ts,
            dur,
            args: args.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        });
    }

    /// Records one counter sample (`ph: "C"`): the values of the named
    /// counter's series at time `ts`. Perfetto renders each counter
    /// name as a value-over-time track.
    pub fn counter(&mut self, track: TrackId, name: &str, ts: u64, series: Vec<(&str, Json)>) {
        self.counters.push(Counter {
            name: name.to_string(),
            track,
            ts,
            series: series.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        });
    }

    /// Number of recorded slices (metadata events excluded).
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Number of recorded counter samples.
    pub fn counter_count(&self) -> usize {
        self.counters.len()
    }

    /// Serialises the full `{"traceEvents": [...]}` document.
    pub fn to_json(&self) -> Json {
        const PID: u64 = 1;
        let mut events = Vec::new();
        events.push(Json::obj(vec![
            ("ph", Json::from("M")),
            ("pid", Json::UInt(PID)),
            ("name", Json::from("process_name")),
            (
                "args",
                Json::obj(vec![("name", Json::from(self.process_name.as_str()))]),
            ),
        ]));
        for (i, track) in self.tracks.iter().enumerate() {
            let tid = i as u64 + 1;
            events.push(Json::obj(vec![
                ("ph", Json::from("M")),
                ("pid", Json::UInt(PID)),
                ("tid", Json::UInt(tid)),
                ("name", Json::from("thread_name")),
                ("args", Json::obj(vec![("name", Json::from(track.as_str()))])),
            ]));
            events.push(Json::obj(vec![
                ("ph", Json::from("M")),
                ("pid", Json::UInt(PID)),
                ("tid", Json::UInt(tid)),
                ("name", Json::from("thread_sort_index")),
                ("args", Json::obj(vec![("sort_index", Json::UInt(tid))])),
            ]));
        }
        for s in &self.slices {
            events.push(Json::obj(vec![
                ("ph", Json::from("X")),
                ("pid", Json::UInt(PID)),
                ("tid", Json::UInt(s.track.0)),
                ("name", Json::from(s.name.as_str())),
                ("cat", Json::from(s.category.as_str())),
                ("ts", Json::UInt(s.ts)),
                ("dur", Json::UInt(s.dur)),
                (
                    "args",
                    Json::Obj(s.args.clone()),
                ),
            ]));
        }
        for c in &self.counters {
            events.push(Json::obj(vec![
                ("ph", Json::from("C")),
                ("pid", Json::UInt(PID)),
                ("tid", Json::UInt(c.track.0)),
                ("name", Json::from(c.name.as_str())),
                ("ts", Json::UInt(c.ts)),
                ("args", Json::Obj(c.series.clone())),
            ]));
        }
        Json::obj(vec![("traceEvents", Json::Arr(events))])
    }

    /// The document as pretty-printed text, ready to write to the
    /// `--trace-out` file.
    pub fn render(&self) -> String {
        let mut text = self.to_json().to_string_pretty();
        text.push('\n');
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_has_metadata_then_one_event_per_slice() {
        let mut t = PerfettoTrace::new("rest-sim");
        let fetch = t.track("fetch");
        let commit = t.track("commit");
        t.slice(fetch, "0x400000 load", "app", 10, 2, vec![("seq", Json::UInt(0))]);
        t.slice(commit, "0x400000 load", "app", 15, 1, vec![("seq", Json::UInt(0))]);
        assert_eq!(t.slice_count(), 2);

        let doc = t.to_json();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 2 tracks × (thread_name + thread_sort_index) + 2 slices.
        assert_eq!(events.len(), 1 + 4 + 2);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("M"));
        let x_events: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(x_events.len(), 2);
        assert_eq!(x_events[0].get("tid").unwrap().as_u64(), Some(1));
        assert_eq!(x_events[1].get("tid").unwrap().as_u64(), Some(2));
        assert_eq!(x_events[0].get("ts").unwrap().as_u64(), Some(10));
        assert_eq!(x_events[0].get("dur").unwrap().as_u64(), Some(2));
        assert_eq!(x_events[0].get("cat").unwrap().as_str(), Some("app"));
    }

    #[test]
    fn rendered_document_parses_back() {
        let mut t = PerfettoTrace::new("p");
        let tr = t.track("issue");
        t.slice(tr, "uop", "allocator", 0, 0, vec![]);
        let text = t.render();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert!(parsed.get("traceEvents").is_some());
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let doc = PerfettoTrace::new("empty").to_json();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1); // just the process_name record
    }

    #[test]
    fn counter_events_render_with_their_series() {
        let mut t = PerfettoTrace::new("campaign");
        let w = t.track("worker 0");
        t.counter(w, "utilization", 5, vec![("busy", Json::UInt(1))]);
        t.counter(w, "utilization", 9, vec![("busy", Json::UInt(0))]);
        assert_eq!(t.counter_count(), 2);
        let doc = t.to_json();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let c_events: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .collect();
        assert_eq!(c_events.len(), 2);
        assert_eq!(c_events[0].get("ts").unwrap().as_u64(), Some(5));
        assert_eq!(c_events[0].get("name").unwrap().as_str(), Some("utilization"));
        assert_eq!(
            c_events[0].get("args").unwrap().get("busy").unwrap().as_u64(),
            Some(1)
        );
        Json::parse(&t.render()).expect("counter document must parse");
    }

    #[test]
    fn tracks_and_slices_keep_registration_and_insertion_order() {
        let mut t = PerfettoTrace::new("order");
        let a = t.track("alpha");
        let b = t.track("beta");
        let c = t.track("gamma");
        // Slices inserted out of track order and out of time order must
        // render exactly in insertion order — the document is a log,
        // ordering/merging is the viewer's job. That keeps the bytes
        // deterministic for any producer that is itself deterministic.
        t.slice(c, "third-track-first", "x", 100, 1, vec![]);
        t.slice(a, "first-track-second", "x", 50, 1, vec![]);
        t.slice(b, "second-track-third", "x", 75, 1, vec![]);
        t.counter(a, "n", 60, vec![("v", Json::UInt(1))]);
        let doc = t.to_json();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // Metadata first: process_name, then per-track (name, sort_index)
        // pairs in registration order.
        let meta: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(meta.len(), 1 + 2 * 3);
        let track_names: Vec<&str> = meta
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .map(|e| e.get("args").unwrap().get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(track_names, ["alpha", "beta", "gamma"]);
        // Sort indices follow tids, so viewers display registration order.
        for e in meta
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_sort_index"))
        {
            assert_eq!(
                e.get("args").unwrap().get("sort_index").unwrap().as_u64(),
                e.get("tid").unwrap().as_u64()
            );
        }
        // Then every slice in insertion order, then counters.
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phases, ["M", "M", "M", "M", "M", "M", "M", "X", "X", "X", "C"]);
        let x_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(
            x_names,
            ["third-track-first", "first-track-second", "second-track-third"]
        );
        // Identical construction yields identical bytes.
        let mut t2 = PerfettoTrace::new("order");
        let a2 = t2.track("alpha");
        let b2 = t2.track("beta");
        let c2 = t2.track("gamma");
        t2.slice(c2, "third-track-first", "x", 100, 1, vec![]);
        t2.slice(a2, "first-track-second", "x", 50, 1, vec![]);
        t2.slice(b2, "second-track-third", "x", 75, 1, vec![]);
        t2.counter(a2, "n", 60, vec![("v", Json::UInt(1))]);
        assert_eq!(t.render(), t2.render());
    }
}
