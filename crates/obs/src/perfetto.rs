//! Chrome trace-event export (loadable in `ui.perfetto.dev`).
//!
//! [`PerfettoTrace`] builds a document in the legacy Chrome trace-event
//! JSON format, which Perfetto's web UI (and `chrome://tracing`)
//! ingests directly: a top-level `{"traceEvents": [...]}` object whose
//! events are `"ph": "M"` metadata records naming the process and its
//! tracks, followed by `"ph": "X"` *complete* events — one slice per
//! recorded item with a start timestamp, a duration, a category, and
//! free-form `args`.
//!
//! The simulator has no wall clock, so timestamps are simulated
//! *cycles* mapped 1:1 to the format's microsecond field: a slice from
//! cycle 120 to 140 renders as 20 "µs" in the UI. Tracks are registered
//! explicitly (the pipeline uses one per stage) and keep their
//! registration order via `thread_sort_index`.

use crate::json::Json;

/// Opaque handle for a registered track (a "thread" in trace-event
/// terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackId(u64);

struct Slice {
    name: String,
    category: String,
    track: TrackId,
    /// Start, in cycles (rendered as µs).
    ts: u64,
    /// Duration, in cycles (rendered as µs).
    dur: u64,
    args: Vec<(String, Json)>,
}

/// Builder for a Chrome trace-event document.
pub struct PerfettoTrace {
    process_name: String,
    tracks: Vec<String>,
    slices: Vec<Slice>,
}

impl PerfettoTrace {
    /// An empty trace for the named process (shown as the Perfetto
    /// process label).
    pub fn new(process_name: &str) -> PerfettoTrace {
        PerfettoTrace {
            process_name: process_name.to_string(),
            tracks: Vec::new(),
            slices: Vec::new(),
        }
    }

    /// Registers a track; slices on it appear under this label, and
    /// tracks display in registration order.
    pub fn track(&mut self, name: &str) -> TrackId {
        self.tracks.push(name.to_string());
        // tid 0 is reserved by some importers; start at 1.
        TrackId(self.tracks.len() as u64)
    }

    /// Records one complete slice (`ph: "X"`). `ts`/`dur` are in
    /// simulated cycles; `args` become the slice's detail pane.
    pub fn slice(
        &mut self,
        track: TrackId,
        name: &str,
        category: &str,
        ts: u64,
        dur: u64,
        args: Vec<(&str, Json)>,
    ) {
        self.slices.push(Slice {
            name: name.to_string(),
            category: category.to_string(),
            track,
            ts,
            dur,
            args: args.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        });
    }

    /// Number of recorded slices (metadata events excluded).
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Serialises the full `{"traceEvents": [...]}` document.
    pub fn to_json(&self) -> Json {
        const PID: u64 = 1;
        let mut events = Vec::new();
        events.push(Json::obj(vec![
            ("ph", Json::from("M")),
            ("pid", Json::UInt(PID)),
            ("name", Json::from("process_name")),
            (
                "args",
                Json::obj(vec![("name", Json::from(self.process_name.as_str()))]),
            ),
        ]));
        for (i, track) in self.tracks.iter().enumerate() {
            let tid = i as u64 + 1;
            events.push(Json::obj(vec![
                ("ph", Json::from("M")),
                ("pid", Json::UInt(PID)),
                ("tid", Json::UInt(tid)),
                ("name", Json::from("thread_name")),
                ("args", Json::obj(vec![("name", Json::from(track.as_str()))])),
            ]));
            events.push(Json::obj(vec![
                ("ph", Json::from("M")),
                ("pid", Json::UInt(PID)),
                ("tid", Json::UInt(tid)),
                ("name", Json::from("thread_sort_index")),
                ("args", Json::obj(vec![("sort_index", Json::UInt(tid))])),
            ]));
        }
        for s in &self.slices {
            events.push(Json::obj(vec![
                ("ph", Json::from("X")),
                ("pid", Json::UInt(PID)),
                ("tid", Json::UInt(s.track.0)),
                ("name", Json::from(s.name.as_str())),
                ("cat", Json::from(s.category.as_str())),
                ("ts", Json::UInt(s.ts)),
                ("dur", Json::UInt(s.dur)),
                (
                    "args",
                    Json::Obj(s.args.clone()),
                ),
            ]));
        }
        Json::obj(vec![("traceEvents", Json::Arr(events))])
    }

    /// The document as pretty-printed text, ready to write to the
    /// `--trace-out` file.
    pub fn render(&self) -> String {
        let mut text = self.to_json().to_string_pretty();
        text.push('\n');
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_has_metadata_then_one_event_per_slice() {
        let mut t = PerfettoTrace::new("rest-sim");
        let fetch = t.track("fetch");
        let commit = t.track("commit");
        t.slice(fetch, "0x400000 load", "app", 10, 2, vec![("seq", Json::UInt(0))]);
        t.slice(commit, "0x400000 load", "app", 15, 1, vec![("seq", Json::UInt(0))]);
        assert_eq!(t.slice_count(), 2);

        let doc = t.to_json();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 2 tracks × (thread_name + thread_sort_index) + 2 slices.
        assert_eq!(events.len(), 1 + 4 + 2);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("M"));
        let x_events: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(x_events.len(), 2);
        assert_eq!(x_events[0].get("tid").unwrap().as_u64(), Some(1));
        assert_eq!(x_events[1].get("tid").unwrap().as_u64(), Some(2));
        assert_eq!(x_events[0].get("ts").unwrap().as_u64(), Some(10));
        assert_eq!(x_events[0].get("dur").unwrap().as_u64(), Some(2));
        assert_eq!(x_events[0].get("cat").unwrap().as_str(), Some("app"));
    }

    #[test]
    fn rendered_document_parses_back() {
        let mut t = PerfettoTrace::new("p");
        let tr = t.track("issue");
        t.slice(tr, "uop", "allocator", 0, 0, vec![]);
        let text = t.render();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert!(parsed.get("traceEvents").is_some());
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let doc = PerfettoTrace::new("empty").to_json();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1); // just the process_name record
    }
}
