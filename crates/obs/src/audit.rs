//! Violation audit log.
//!
//! Both detectors in the simulator — REST token checks and the ASan
//! reference — previously reported violations as bare counters, which
//! answers "how many" but not "where" or "whose fault". An
//! [`AuditLog`] records every detection as an [`AuditEntry`] carrying
//! the faulting PC, target address, detector and kind, execution mode,
//! and the software component the PC belongs to (app / allocator /
//! access-check / ...), in both text and JSON form.
//!
//! The log is bounded ([`AuditLog::MAX_ENTRIES`]): a pathological
//! workload that trips millions of violations keeps its precise count
//! in `total` while retaining only the first window of full entries.

use crate::json::Json;

/// Detector name for fault-injection provenance entries. `rest-faults`
/// campaigns record every applied hardware fault — and its downstream
/// consequences (suppressed detections, self-heals, dropped evictions) —
/// as audit entries with this detector, the trigger site as the `kind`
/// (e.g. `"l1d-fill"`, `"lsq-suppress"`), and the affected slot or line
/// as the `addr`, so a cell's outcome can always be traced back to the
/// exact injection that caused it. For these entries `insts` carries the
/// dynamic site-event index, not a committed-instruction count.
pub const FAULT_INJECTOR: &str = "fault-injector";

/// Detector name for MTE-style lock-and-key tag-mismatch detections.
/// Entries carry the faulting PC and the canonical granule address, so
/// every tag fault — synchronous or surfaced at exit from the deferred
/// fault-status record — keeps its backend provenance.
pub const MTE_TAGGER: &str = "mte-tagger";

/// Detector name for PA-style pointer-authentication failures. Entries
/// carry the faulting PC and the canonical access address of the failed
/// authentication.
pub const PA_SIGNER: &str = "pa-signer";

/// One recorded violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditEntry {
    /// Which detector fired: `"rest"`, `"asan"`, [`MTE_TAGGER`],
    /// [`PA_SIGNER`], or [`FAULT_INJECTOR`] for injected-fault
    /// provenance.
    pub detector: &'static str,
    /// Detector-specific kind (e.g. `"heap-underflow"`,
    /// `"heap-use-after-free"`).
    pub kind: &'static str,
    /// Program counter of the faulting access.
    pub pc: u64,
    /// Target address of the faulting access.
    pub addr: u64,
    /// Access size in bytes, 0 when the detector reports whole lines.
    pub size: u64,
    /// Execution mode at detection time: `"secure"` or `"debug"`.
    pub mode: &'static str,
    /// Software component owning the faulting PC (`"app"`,
    /// `"allocator"`, ...).
    pub component: &'static str,
    /// Whether the detection was precise (faulting instruction
    /// identified exactly) or delayed past commit.
    pub precise: bool,
    /// Committed instructions when the violation was detected.
    pub insts: u64,
}

impl AuditEntry {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("detector", Json::from(self.detector)),
            ("kind", Json::from(self.kind)),
            ("pc", Json::from(format!("{:#x}", self.pc))),
            ("addr", Json::from(format!("{:#x}", self.addr))),
            ("size", Json::UInt(self.size)),
            ("mode", Json::from(self.mode)),
            ("component", Json::from(self.component)),
            ("precise", Json::Bool(self.precise)),
            ("insts", Json::UInt(self.insts)),
        ])
    }

    fn render_line(&self) -> String {
        format!(
            "{:<5} {:<22} pc={:#010x} addr={:#010x} size={} mode={} component={} {} @inst {}",
            self.detector,
            self.kind,
            self.pc,
            self.addr,
            self.size,
            self.mode,
            self.component,
            if self.precise { "precise" } else { "delayed" },
            self.insts,
        )
    }
}

/// Bounded record of every violation a run detected.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
    total: u64,
}

impl AuditLog {
    /// Retained-entry cap; later violations only bump `total`.
    pub const MAX_ENTRIES: usize = 1024;

    /// Records a violation, retaining the entry if under the cap.
    pub fn record(&mut self, entry: AuditEntry) {
        self.total += 1;
        if self.entries.len() < Self::MAX_ENTRIES {
            self.entries.push(entry);
        }
    }

    /// Retained entries, in detection order.
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// Total violations detected, including any past the cap.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True when no violation was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Human-readable log, one line per retained entry.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return "violation audit: clean (no detections)\n".to_string();
        }
        let mut out = format!(
            "violation audit: {} detection(s), {} retained\n",
            self.total,
            self.entries.len()
        );
        for e in &self.entries {
            out.push_str("  ");
            out.push_str(&e.render_line());
            out.push('\n');
        }
        out
    }

    /// JSON object `{"total": N, "entries": [{...}, ...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("total", Json::UInt(self.total)),
            (
                "entries",
                Json::Arr(self.entries.iter().map(|e| e.to_json()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pc: u64) -> AuditEntry {
        AuditEntry {
            detector: "rest",
            kind: "heap-underflow",
            pc,
            addr: 0x5000_0010,
            size: 8,
            mode: "secure",
            component: "app",
            precise: true,
            insts: 42,
        }
    }

    #[test]
    fn records_and_serialises_entries() {
        let mut log = AuditLog::default();
        assert!(log.is_empty());
        log.record(entry(0x400123));
        assert!(!log.is_empty());
        assert_eq!(log.total(), 1);

        let j = log.to_json();
        assert_eq!(j.get("total").unwrap().as_u64(), Some(1));
        let entries = j.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries[0].get("pc").unwrap().as_str(), Some("0x400123"));
        assert_eq!(entries[0].get("detector").unwrap().as_str(), Some("rest"));
        assert_eq!(entries[0].get("precise"), Some(&Json::Bool(true)));

        let text = log.render();
        assert!(text.contains("heap-underflow"));
        assert!(text.contains("0x00400123"));
    }

    #[test]
    fn cap_keeps_total_exact() {
        let mut log = AuditLog::default();
        for i in 0..(AuditLog::MAX_ENTRIES as u64 + 5) {
            log.record(entry(i));
        }
        assert_eq!(log.entries().len(), AuditLog::MAX_ENTRIES);
        assert_eq!(log.total(), AuditLog::MAX_ENTRIES as u64 + 5);
    }

    #[test]
    fn clean_log_renders_clean() {
        assert!(AuditLog::default().render().contains("clean"));
    }
}
