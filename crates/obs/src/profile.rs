//! Host self-profiling.
//!
//! Simulated results are byte-deterministic, but *how long the host
//! took to produce them* is exactly the thing the ROADMAP's perf work
//! needs to track over time. A [`HostProfile`] records wall-clock time
//! per coarse phase (setup / simulate / report) and per engine job, and
//! serialises to the `rest-host-profile/v1` schema written to
//! `--profile-out` (by convention `results/BENCH_baseline.json`, the
//! repository's perf-trajectory baseline).
//!
//! Wall times are inherently nondeterministic, so this document is
//! **never** part of the experiment result JSON — it is a separate
//! file, keeping the PR 1 byte-determinism guarantee intact.

use crate::json::Json;
use std::time::Duration;

/// Wall-clock timing for one engine job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTiming {
    /// The job's display label (row/column in the experiment matrix).
    pub label: String,
    /// Host wall time spent simulating the job.
    pub wall: Duration,
    /// Whether the result came from the engine's job cache (wall time
    /// then reflects the lookup, not a simulation).
    pub cached: bool,
}

/// Wall-clock profile of one experiment binary invocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostProfile {
    experiment: String,
    phases: Vec<(String, Duration)>,
    jobs: Vec<JobTiming>,
}

impl HostProfile {
    /// Schema identifier emitted in (and required of) profile
    /// documents.
    pub const SCHEMA: &'static str = "rest-host-profile/v1";

    /// An empty profile for the named experiment.
    pub fn new(experiment: &str) -> HostProfile {
        HostProfile {
            experiment: experiment.to_string(),
            phases: Vec::new(),
            jobs: Vec::new(),
        }
    }

    /// Records a coarse phase (e.g. "simulate", "report"). Phases
    /// with the same name accumulate.
    pub fn add_phase(&mut self, name: &str, wall: Duration) {
        if let Some((_, d)) = self.phases.iter_mut().find(|(n, _)| n == name) {
            *d += wall;
        } else {
            self.phases.push((name.to_string(), wall));
        }
    }

    /// Records one engine job's timing.
    pub fn add_job(&mut self, timing: JobTiming) {
        self.jobs.push(timing);
    }

    /// Recorded per-job timings.
    pub fn jobs(&self) -> &[JobTiming] {
        &self.jobs
    }

    /// Serialises to the `rest-host-profile/v1` document:
    ///
    /// ```text
    /// {"schema": "rest-host-profile/v1", "experiment": "fig7",
    ///  "phases": [{"name": .., "wall_s": ..}, ..],
    ///  "jobs": [{"label": .., "wall_s": .., "cached": bool}, ..],
    ///  "summary": {"phase_wall_s": .., "job_count": N,
    ///              "jobs_cached": N, "job_wall_s": ..,
    ///              "job_wall_s_max": ..}}
    /// ```
    pub fn to_json(&self) -> Json {
        let phase_total: f64 = self.phases.iter().map(|(_, d)| d.as_secs_f64()).sum();
        let job_total: f64 = self.jobs.iter().map(|j| j.wall.as_secs_f64()).sum();
        let job_max = self
            .jobs
            .iter()
            .map(|j| j.wall.as_secs_f64())
            .fold(0.0_f64, f64::max);
        let cached = self.jobs.iter().filter(|j| j.cached).count() as u64;
        Json::obj(vec![
            ("schema", Json::from(Self::SCHEMA)),
            ("experiment", Json::from(self.experiment.as_str())),
            (
                "phases",
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|(name, d)| {
                            Json::obj(vec![
                                ("name", Json::from(name.as_str())),
                                ("wall_s", Json::Num(d.as_secs_f64())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "jobs",
                Json::Arr(
                    self.jobs
                        .iter()
                        .map(|j| {
                            Json::obj(vec![
                                ("label", Json::from(j.label.as_str())),
                                ("wall_s", Json::Num(j.wall.as_secs_f64())),
                                ("cached", Json::Bool(j.cached)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "summary",
                Json::obj(vec![
                    ("phase_wall_s", Json::Num(phase_total)),
                    ("job_count", Json::UInt(self.jobs.len() as u64)),
                    ("jobs_cached", Json::UInt(cached)),
                    ("job_wall_s", Json::Num(job_total)),
                    ("job_wall_s_max", Json::Num(job_max)),
                ]),
            ),
        ])
    }

    /// The document as pretty-printed text with a trailing newline.
    pub fn render(&self) -> String {
        let mut text = self.to_json().to_string_pretty();
        text.push('\n');
        text
    }

    /// Checks that a parsed document matches the
    /// `rest-host-profile/v1` shape. Used by the baseline test and
    /// the CI observability job.
    pub fn validate(doc: &Json) -> Result<(), String> {
        match doc.get("schema").and_then(Json::as_str) {
            Some(s) if s == Self::SCHEMA => {}
            Some(s) => return Err(format!("unexpected schema {s:?}")),
            None => return Err("missing \"schema\"".to_string()),
        }
        doc.get("experiment")
            .and_then(Json::as_str)
            .ok_or("missing \"experiment\"")?;
        let phases = doc
            .get("phases")
            .and_then(Json::as_arr)
            .ok_or("missing \"phases\" array")?;
        for p in phases {
            p.get("name").and_then(Json::as_str).ok_or("phase missing \"name\"")?;
            p.get("wall_s").and_then(Json::as_f64).ok_or("phase missing \"wall_s\"")?;
        }
        let jobs = doc
            .get("jobs")
            .and_then(Json::as_arr)
            .ok_or("missing \"jobs\" array")?;
        for j in jobs {
            j.get("label").and_then(Json::as_str).ok_or("job missing \"label\"")?;
            j.get("wall_s").and_then(Json::as_f64).ok_or("job missing \"wall_s\"")?;
            match j.get("cached") {
                Some(Json::Bool(_)) => {}
                _ => return Err("job missing \"cached\"".to_string()),
            }
        }
        let summary = doc.get("summary").ok_or("missing \"summary\"")?;
        for key in ["phase_wall_s", "job_count", "jobs_cached", "job_wall_s", "job_wall_s_max"] {
            summary
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("summary missing {key:?}"))?;
        }
        let count = summary.get("job_count").and_then(Json::as_u64).unwrap_or(0);
        if count != jobs.len() as u64 {
            return Err(format!(
                "summary.job_count {} != jobs.len() {}",
                count,
                jobs.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_document_validates() {
        let mut p = HostProfile::new("fig7");
        p.add_phase("setup", Duration::from_millis(5));
        p.add_phase("simulate", Duration::from_millis(120));
        p.add_phase("simulate", Duration::from_millis(30));
        p.add_job(JobTiming {
            label: "bzip2/secure".to_string(),
            wall: Duration::from_millis(80),
            cached: false,
        });
        p.add_job(JobTiming {
            label: "bzip2/plain".to_string(),
            wall: Duration::from_micros(12),
            cached: true,
        });

        let doc = Json::parse(&p.render()).expect("valid JSON");
        HostProfile::validate(&doc).expect("schema-valid");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(HostProfile::SCHEMA));
        // Same-named phases accumulate.
        let phases = doc.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(phases.len(), 2);
        assert!(phases[1].get("wall_s").unwrap().as_f64().unwrap() > 0.14);
        let summary = doc.get("summary").unwrap();
        assert_eq!(summary.get("job_count").unwrap().as_u64(), Some(2));
        assert_eq!(summary.get("jobs_cached").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        let missing = Json::obj(vec![("schema", Json::from(HostProfile::SCHEMA))]);
        assert!(HostProfile::validate(&missing).is_err());
        let wrong = Json::obj(vec![("schema", Json::from("other/v9"))]);
        assert!(HostProfile::validate(&wrong).is_err());
        assert!(HostProfile::validate(&Json::Null).is_err());
    }

    #[test]
    fn empty_profile_is_schema_valid() {
        let p = HostProfile::new("smoke");
        let doc = Json::parse(&p.render()).unwrap();
        HostProfile::validate(&doc).expect("empty profile valid");
    }
}
