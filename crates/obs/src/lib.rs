//! Observability layer for the REST simulator (`rest-obs`).
//!
//! The paper's headline claims are *attributions*: Figure 3 splits
//! ASan's overhead by software component, §VI-B attributes debug-mode
//! cost to ROB-blocked store cycles. This crate provides the shared
//! vocabulary the simulator uses to make those attributions visible —
//! not just as end-of-run scalars but over time, per pipeline resource,
//! and per host phase:
//!
//! * [`cpi`] — commit-time **CPI stacks**: every simulated cycle is
//!   charged to exactly one of eleven components
//!   (base/fetch/branch/IQ/ROB/LSQ/L1D-miss/L2-miss/DRAM/store-drain/
//!   REST-check), so the components always sum to `core.cycles`.
//! * [`sample`] — **interval time-series**: periodic snapshots of the
//!   full counter map plus occupancy gauges (ROB/IQ/LQ/SQ, MSHRs,
//!   write buffers), taken every N committed instructions.
//! * [`perfetto`] — **Chrome trace-event export**: pipeline traces as
//!   Perfetto-loadable JSON (one track per pipeline stage, one slice
//!   per micro-op, software component as category).
//! * [`audit`] — **violation audit log**: every REST exception / ASan
//!   report with PC, address, mode and component provenance.
//! * [`profile`] — **host self-profiling**: wall-time per simulated
//!   phase and per engine job, for the repository's perf trajectory
//!   (`results/BENCH_baseline.json`).
//! * [`hotspots`] — the `rest-hotspots/v1` schema for guest hotspot
//!   profiles (per-block/per-function cycle rollups plus the
//!   per-allocation-site check-attribution table), with a validator
//!   that enforces the exact-sum invariants.
//! * [`elide`] — the `rest-elide/v1` schema for static check-elision
//!   maps, with a validator for the count/sortedness invariants (a
//!   malformed elision map is a security bug, so CI re-validates every
//!   committed artifact).
//! * [`telemetry`] — the `rest-telemetry/v1` schema for campaign-wide
//!   engine telemetry (per-job spans, worker utilization, cache and
//!   resilience counters), with a cross-member-consistency validator.
//! * [`json`] — the hand-rolled, insertion-ordered [`Json`] value tree
//!   every sink serialises through (the build environment has no
//!   registry access, so no serde), plus a small parser used by the
//!   validation tests and CI.
//!
//! The crate is dependency-free and sits below every other simulator
//! crate, so `rest-mem`, `rest-cpu`, `rest-runtime` and `rest-bench`
//! can all speak the same observability types. Everything here is
//! plain data: collection stays zero-cost-when-off because the *users*
//! of these types gate sampling and tracing behind configuration.

#![forbid(unsafe_code)]

pub mod audit;
pub mod cpi;
pub mod elide;
pub mod hotspots;
pub mod json;
pub mod perfetto;
pub mod profile;
pub mod sample;
pub mod telemetry;

pub use audit::{AuditEntry, AuditLog, FAULT_INJECTOR, MTE_TAGGER, PA_SIGNER};
pub use cpi::{CpiComponent, CpiStack};
pub use elide::{validate_elide, ELIDE_SCHEMA};
pub use json::{Json, MAX_PARSE_DEPTH};
pub use perfetto::PerfettoTrace;
pub use profile::{HostProfile, JobTiming};
pub use sample::{Gauges, IntervalSample, TimeSeries};
