//! Interval time-series sampling.
//!
//! End-of-run scalars hide phase behaviour: an allocation-heavy warmup
//! followed by a streaming loop averages into a number that describes
//! neither. When `sample_interval` is non-zero, the simulator snapshots
//! the full counter map plus pipeline/memory occupancy gauges every N
//! committed instructions into a [`TimeSeries`]. Counters are
//! cumulative (consumers diff adjacent samples for per-interval rates);
//! gauges are instantaneous occupancies at the sample point.
//!
//! The series is bounded ([`TimeSeries::MAX_SAMPLES`]) so a tiny
//! interval on a long run cannot balloon the result document; overflow
//! is counted in `dropped` rather than silently discarded. Sampling is
//! driven by the deterministic simulated instruction stream, so the
//! emitted series is byte-identical at any `--jobs` level.

use crate::json::Json;

/// Instantaneous occupancy of the simulator's queued resources at a
/// sample point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauges {
    /// Micro-ops dispatched but not yet committed (ROB residents).
    pub rob: u64,
    /// Micro-ops dispatched but not yet issued (IQ residents).
    pub iq: u64,
    /// Loads dispatched but not yet committed (LQ residents).
    pub lq: u64,
    /// Stores dispatched but not yet committed (SQ residents).
    pub sq: u64,
    /// L1D miss-status-holding registers in flight.
    pub l1d_mshrs: u64,
    /// L2 miss-status-holding registers in flight.
    pub l2_mshrs: u64,
    /// Store write-buffer entries not yet drained.
    pub write_buffer: u64,
}

impl Gauges {
    /// `(key, value)` pairs in a fixed order.
    pub fn entries(&self) -> [(&'static str, u64); 7] {
        // Destructure so a new gauge cannot be added without wiring
        // it into the serialised form.
        let Gauges {
            rob,
            iq,
            lq,
            sq,
            l1d_mshrs,
            l2_mshrs,
            write_buffer,
        } = *self;
        [
            ("rob", rob),
            ("iq", iq),
            ("lq", lq),
            ("sq", sq),
            ("l1d_mshrs", l1d_mshrs),
            ("l2_mshrs", l2_mshrs),
            ("write_buffer", write_buffer),
        ]
    }

    fn to_json(self) -> Json {
        Json::obj(
            self.entries()
                .iter()
                .map(|&(k, v)| (k, Json::UInt(v)))
                .collect(),
        )
    }
}

/// One snapshot of the run at a committed-instruction boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalSample {
    /// Committed (macro) instructions at the sample point.
    pub insts: u64,
    /// Core cycles consumed so far.
    pub cycles: u64,
    /// Cumulative counter map (same keys/order as the end-of-run
    /// `stats_map()`).
    pub counters: Vec<(&'static str, u64)>,
    /// Instantaneous occupancies.
    pub gauges: Gauges,
}

/// A bounded, deterministic sequence of [`IntervalSample`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimeSeries {
    /// Sampling period in committed instructions (0 = disabled).
    pub interval: u64,
    samples: Vec<IntervalSample>,
    dropped: u64,
}

impl TimeSeries {
    /// Retained-sample cap; further samples only bump `dropped`.
    pub const MAX_SAMPLES: usize = 10_000;

    /// A series sampling every `interval` committed instructions.
    pub fn new(interval: u64) -> TimeSeries {
        TimeSeries {
            interval,
            samples: Vec::new(),
            dropped: 0,
        }
    }

    /// Appends a sample, or counts it as dropped past the cap.
    pub fn record(&mut self, sample: IntervalSample) {
        if self.samples.len() < Self::MAX_SAMPLES {
            self.samples.push(sample);
        } else {
            self.dropped += 1;
        }
    }

    /// Retained samples, in simulated order.
    pub fn samples(&self) -> &[IntervalSample] {
        &self.samples
    }

    /// Samples discarded past [`Self::MAX_SAMPLES`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// JSON object:
    ///
    /// ```text
    /// {"interval": N, "dropped": D,
    ///  "samples": [{"insts": .., "cycles": .., "gauges": {..},
    ///               "counters": {..}}, ..]}
    /// ```
    pub fn to_json(&self) -> Json {
        let samples = self
            .samples
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("insts", Json::UInt(s.insts)),
                    ("cycles", Json::UInt(s.cycles)),
                    ("gauges", s.gauges.to_json()),
                    (
                        "counters",
                        Json::obj(
                            s.counters
                                .iter()
                                .map(|&(k, v)| (k, Json::UInt(v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("interval", Json::UInt(self.interval)),
            ("dropped", Json::UInt(self.dropped)),
            ("samples", Json::Arr(samples)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(insts: u64) -> IntervalSample {
        IntervalSample {
            insts,
            cycles: insts * 2,
            counters: vec![("core.insts", insts), ("mem.l1d_hits", insts / 2)],
            gauges: Gauges {
                rob: 12,
                iq: 3,
                lq: 4,
                sq: 2,
                l1d_mshrs: 1,
                l2_mshrs: 0,
                write_buffer: 5,
            },
        }
    }

    #[test]
    fn records_in_order_and_serialises() {
        let mut ts = TimeSeries::new(100);
        ts.record(sample(100));
        ts.record(sample(200));
        assert_eq!(ts.samples().len(), 2);
        assert_eq!(ts.dropped(), 0);

        let j = ts.to_json();
        assert_eq!(j.get("interval").unwrap().as_u64(), Some(100));
        let samples = j.get("samples").unwrap().as_arr().unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[1].get("insts").unwrap().as_u64(), Some(200));
        let gauges = samples[0].get("gauges").unwrap();
        assert_eq!(gauges.get("rob").unwrap().as_u64(), Some(12));
        assert_eq!(gauges.get("write_buffer").unwrap().as_u64(), Some(5));
        let counters = samples[0].get("counters").unwrap();
        assert_eq!(counters.get("core.insts").unwrap().as_u64(), Some(100));
    }

    #[test]
    fn cap_counts_dropped_samples() {
        let mut ts = TimeSeries::new(1);
        for i in 0..(TimeSeries::MAX_SAMPLES as u64 + 7) {
            ts.record(sample(i));
        }
        assert_eq!(ts.samples().len(), TimeSeries::MAX_SAMPLES);
        assert_eq!(ts.dropped(), 7);
        assert_eq!(
            ts.to_json().get("dropped").unwrap().as_u64(),
            Some(7)
        );
    }

    #[test]
    fn gauges_entries_fix_key_order() {
        let keys: Vec<_> = Gauges::default().entries().iter().map(|&(k, _)| k).collect();
        assert_eq!(
            keys,
            ["rob", "iq", "lq", "sq", "l1d_mshrs", "l2_mshrs", "write_buffer"]
        );
    }
}
