//! A minimal JSON value tree and serialiser/parser.
//!
//! The build environment has no registry access, so no serde: [`Json`]
//! is hand-rolled. Object members keep insertion order, which makes the
//! serialised output fully deterministic — the same input structure
//! produces byte-identical text on every run and at any worker count.
//!
//! [`Json::parse`] is a small recursive-descent parser used by the
//! validation tests and the CI observability job to check that emitted
//! documents (result sinks, Perfetto traces, the perf-trajectory
//! baseline) are well-formed and carry the expected structure. It is
//! not a general-purpose JSON library: numbers parse into `Int`/`UInt`
//! when they are integral and `Num` otherwise, and `\uXXXX` escapes
//! outside the basic multilingual plane are rejected unless they form a
//! valid surrogate pair.

use std::fmt;

/// A JSON value. Object members keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    /// Finite floats only; non-finite values serialise as `null`.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialises the value as pretty-printed JSON (2-space indent,
    /// trailing newline at the document level is the caller's choice).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out
    }

    /// Object member lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document. Rejects trailing garbage, duplicate
    /// object keys (a duplicate silently shadows its twin in most
    /// readers — in a determinism-audited result sink that is always a
    /// producer bug), and nesting deeper than [`MAX_PARSE_DEPTH`] (the
    /// recursive-descent parser would otherwise overflow the stack on
    /// adversarial input like `[[[[…`).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    fn render(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // f64 Display is the shortest round-trip decimal,
                    // which is valid JSON ("1", "0.04", "22.47").
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.render(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    render_string(key, out);
                    out.push_str(": ");
                    value.render(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting [`Json::parse`] accepts. Far above any
/// document this repository emits (deepest is ~6), far below the stack
/// budget of the recursive-descent parser.
pub const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting exceeds depth limit"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.enter()?;
        let r = self.array_body();
        self.depth -= 1;
        r
    }

    fn array_body(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.enter()?;
        let r = self.object_body();
        self.depth -= 1;
        r
    }

    fn object_body(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain UTF-8 bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            };
                            s.push(c);
                            continue; // hex4 advanced past the escape
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_deterministic_and_escaped() {
        let doc = Json::obj(vec![
            ("b", Json::Int(-3)),
            ("a", Json::from(1.5)),
            ("nan", Json::Num(f64::NAN)),
            ("s", Json::from("a\"b\\c\nd\u{1}")),
            ("arr", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("empty", Json::obj(vec![])),
        ]);
        let text = doc.to_string_pretty();
        // Insertion order preserved ("b" before "a"), NaN → null.
        assert!(text.find("\"b\"").unwrap() < text.find("\"a\"").unwrap());
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains(r#""a\"b\\c\nd\u0001""#));
        assert!(text.contains("\"empty\": {}"));
        assert_eq!(text, doc.to_string_pretty());
    }

    #[test]
    fn floats_render_as_json_numbers() {
        assert_eq!(Json::Num(1.0).to_string_pretty(), "1");
        assert_eq!(Json::Num(0.04).to_string_pretty(), "0.04");
        assert_eq!(Json::Num(-2.5).to_string_pretty(), "-2.5");
        assert_eq!(Json::Num(f64::INFINITY).to_string_pretty(), "null");
        assert_eq!(Json::UInt(u64::MAX).to_string_pretty(), u64::MAX.to_string());
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::obj(vec![
            ("experiment", Json::from("fig7")),
            ("filter", Json::Null),
            ("n", Json::UInt(97112)),
            ("neg", Json::Int(-12)),
            ("pct", Json::Num(22.47)),
            ("ok", Json::Bool(true)),
            (
                "rows",
                Json::Arr(vec![
                    Json::obj(vec![("name", Json::from("bzip2"))]),
                    Json::obj(vec![("name", Json::from("a\"b\\c\nd"))]),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::obj(vec![])),
        ]);
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).expect("round trip");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_accepts_escapes_and_unicode() {
        let v = Json::parse(r#"{"s": "café 😀 \t"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "café 😀 \t");
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\" 1}", "{\"a\": 1} x", "nul", "\"abc", "01a",
            r#"{"s": "\ud800"}"#,
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_truncated_documents_at_every_prefix() {
        // Every proper prefix of a valid document must fail cleanly
        // (error, not panic) — the truncated-input error paths.
        let full = r#"{"a": [1, -2.5, "x\n", {"b": null}], "c": true}"#;
        for end in 0..full.len() {
            let prefix = &full[..end];
            if !prefix.is_char_boundary(end) {
                continue;
            }
            assert!(Json::parse(prefix).is_err(), "prefix {prefix:?} must fail");
        }
        assert!(Json::parse(full).is_ok());
    }

    #[test]
    fn parse_rejects_duplicate_object_keys() {
        let err = Json::parse(r#"{"a": 1, "a": 2}"#).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
        // Nested objects are checked too.
        assert!(Json::parse(r#"{"o": {"x": 1, "x": 1}}"#).is_err());
        // Same key at different depths is fine.
        assert!(Json::parse(r#"{"a": {"a": 1}}"#).is_ok());
        // Duplicates after the colon value are caught before parsing on.
        assert!(Json::parse(r#"{"k": [1], "k": [2]}"#).is_err());
    }

    #[test]
    fn parse_enforces_the_depth_limit() {
        // Exactly at the limit parses; one deeper fails with an error
        // (not a stack overflow).
        let at = "[".repeat(MAX_PARSE_DEPTH) + &"]".repeat(MAX_PARSE_DEPTH);
        assert!(Json::parse(&at).is_ok());
        let over = format!("[{at}]");
        let err = Json::parse(&over).unwrap_err();
        assert!(err.message.contains("depth"), "{err}");
        // Mixed object/array nesting counts every container level.
        let mixed_over = "{\"k\":[".repeat(MAX_PARSE_DEPTH / 2 + 1);
        assert!(Json::parse(&mixed_over).is_err());
        // A deep but wide document under the limit still parses.
        let wide = format!(
            "[{}]",
            (0..200).map(|i| i.to_string()).collect::<Vec<_>>().join(",")
        );
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let v = Json::parse(r#"{"a": {"b": [1, 2.5, "x"]}}"#).unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(arr[2].as_u64(), None);
    }
}
