//! `rest-hotspots/v1` — the guest hotspot-profile document schema.
//!
//! The `hotspots` campaign rolls the simulator's dense per-PC
//! cycle/uop/check counters up into per-basic-block and per-function
//! reports (CFG recovery comes from `rest-verify`), plus the
//! per-allocation-site check-attribution table. This module owns the
//! schema identifier and the structural validator; document *assembly*
//! lives in `rest-bench`, which has access to the simulator types.
//!
//! The validator enforces the document's load-bearing invariants, not
//! just its shape:
//!
//! * blocks are sorted by start PC, non-empty, and non-overlapping;
//! * per-block `cycles`/`uops`/`checks`/`check_uops` sum **exactly**
//!   to the row totals (the profiler attributes every committed cycle
//!   to a PC, and the CFG's blocks partition the code segment — any
//!   drift is a collection bug, not rounding);
//! * per-site `checks`/`check_uops` sum exactly to the row's
//!   `site_checks`/`site_check_uops` totals, and sites are sorted;
//! * every row's scheme appears in the document's scheme list.

use crate::json::Json;

/// Schema identifier emitted in (and required of) hotspot documents.
pub const SCHEMA: &str = "rest-hotspots/v1";

/// Required u64 members of a row's `total` object.
pub const TOTAL_KEYS: [&str; 8] = [
    "cycles",
    "uops",
    "insts",
    "checks",
    "check_uops",
    "site_checks",
    "site_check_uops",
    "backend_checks",
];

/// Required u64 members of a block entry.
pub const BLOCK_KEYS: [&str; 6] = ["start", "end", "cycles", "uops", "checks", "check_uops"];

/// Required u64 members of a site entry.
pub const SITE_KEYS: [&str; 9] = [
    "site",
    "allocs",
    "frees",
    "bytes",
    "checks",
    "check_uops",
    "canonicalizations",
    "deferred_latches",
    "faults",
];

fn req_u64(obj: &Json, key: &str, what: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{what} missing u64 {key:?}"))
}

fn req_str<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what} missing string {key:?}"))
}

/// Checks that a parsed document matches the `rest-hotspots/v1` shape
/// and satisfies the exact-sum invariants documented on the module.
/// Used by the campaign's own tests and the CI schema job.
pub fn validate(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("unexpected schema {s:?}")),
        None => return Err("missing \"schema\"".to_string()),
    }
    req_str(doc, "scale", "document")?;
    let schemes = doc
        .get("schemes")
        .and_then(Json::as_arr)
        .ok_or("missing \"schemes\" array")?;
    let scheme_names: Vec<&str> = schemes.iter().filter_map(Json::as_str).collect();
    if scheme_names.len() != schemes.len() || scheme_names.is_empty() {
        return Err("\"schemes\" must be a non-empty array of strings".to_string());
    }
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing \"rows\" array")?;
    for (i, row) in rows.iter().enumerate() {
        validate_row(row, &scheme_names).map_err(|e| format!("row {i}: {e}"))?;
    }
    Ok(())
}

fn validate_row(row: &Json, schemes: &[&str]) -> Result<(), String> {
    let benchmark = req_str(row, "benchmark", "row")?;
    req_str(row, "workload", "row")?;
    req_u64(row, "seed", "row")?;
    let scheme = req_str(row, "scheme", "row")?;
    if !schemes.contains(&scheme) {
        return Err(format!("{benchmark}: scheme {scheme:?} not in \"schemes\""));
    }

    let total = row.get("total").ok_or("row missing \"total\"")?;
    let mut totals = [0u64; TOTAL_KEYS.len()];
    for (slot, key) in totals.iter_mut().zip(TOTAL_KEYS) {
        *slot = req_u64(total, key, "total")?;
    }
    let [cycles, uops, _insts, checks, check_uops, site_checks, site_check_uops, _backend] =
        totals;

    // Blocks: sorted, non-empty, disjoint, and summing exactly to the
    // row totals.
    let blocks = row
        .get("blocks")
        .and_then(Json::as_arr)
        .ok_or("row missing \"blocks\" array")?;
    let mut prev_end = 0u64;
    let mut sums = [0u64; 4]; // cycles, uops, checks, check_uops
    for (i, b) in blocks.iter().enumerate() {
        let start = req_u64(b, "start", "block")?;
        let end = req_u64(b, "end", "block")?;
        if end <= start {
            return Err(format!("{benchmark}: block {i} is empty ({start:#x}..{end:#x})"));
        }
        if start < prev_end {
            return Err(format!(
                "{benchmark}: block {i} ({start:#x}) overlaps or precedes the previous block"
            ));
        }
        prev_end = end;
        for (slot, key) in sums.iter_mut().zip(["cycles", "uops", "checks", "check_uops"]) {
            *slot += req_u64(b, key, "block")?;
        }
    }
    for (sum, (key, want)) in sums.iter().zip([
        ("cycles", cycles),
        ("uops", uops),
        ("checks", checks),
        ("check_uops", check_uops),
    ]) {
        if *sum != want {
            return Err(format!(
                "{benchmark} ({scheme}): block {key} sum {sum} != total {want}"
            ));
        }
    }

    // Functions: structural only — blocks reachable from two entries
    // are reported under both, so function totals may legitimately
    // overlap.
    let functions = row
        .get("functions")
        .and_then(Json::as_arr)
        .ok_or("row missing \"functions\" array")?;
    for f in functions {
        req_u64(f, "entry", "function")?;
        req_str(f, "symbol", "function")?;
        if req_u64(f, "blocks", "function")? == 0 {
            return Err(format!("{benchmark}: function with zero blocks"));
        }
        for key in ["cycles", "uops", "checks", "check_uops"] {
            req_u64(f, key, "function")?;
        }
    }

    // Sites: sorted by site PC, summing exactly to the site totals.
    let sites = row
        .get("sites")
        .and_then(Json::as_arr)
        .ok_or("row missing \"sites\" array")?;
    let mut prev_site = None;
    let (mut s_checks, mut s_uops) = (0u64, 0u64);
    for s in sites {
        let site = req_u64(s, "site", "site")?;
        if prev_site.is_some_and(|p| site <= p) {
            return Err(format!("{benchmark}: sites not strictly ascending at {site:#x}"));
        }
        prev_site = Some(site);
        for key in SITE_KEYS {
            req_u64(s, key, "site")?;
        }
        s_checks += req_u64(s, "checks", "site")?;
        s_uops += req_u64(s, "check_uops", "site")?;
    }
    if s_checks != site_checks {
        return Err(format!(
            "{benchmark} ({scheme}): site check sum {s_checks} != total.site_checks {site_checks}"
        ));
    }
    if s_uops != site_check_uops {
        return Err(format!(
            "{benchmark} ({scheme}): site check-uop sum {s_uops} != \
             total.site_check_uops {site_check_uops}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(start: u64, end: u64, cycles: u64, uops: u64, checks: u64, cu: u64) -> Json {
        Json::obj(vec![
            ("start", Json::UInt(start)),
            ("end", Json::UInt(end)),
            ("cycles", Json::UInt(cycles)),
            ("uops", Json::UInt(uops)),
            ("checks", Json::UInt(checks)),
            ("check_uops", Json::UInt(cu)),
        ])
    }

    fn doc() -> Json {
        Json::obj(vec![
            ("schema", Json::from(SCHEMA)),
            ("scale", Json::from("test")),
            (
                "schemes",
                Json::Arr(vec![Json::from("plain"), Json::from("rest-secure-full")]),
            ),
            (
                "rows",
                Json::Arr(vec![Json::obj(vec![
                    ("benchmark", Json::from("lbm")),
                    ("workload", Json::from("lbm")),
                    ("seed", Json::UInt(0xC0FFEE)),
                    ("scheme", Json::from("rest-secure-full")),
                    (
                        "total",
                        Json::obj(vec![
                            ("cycles", Json::UInt(30)),
                            ("uops", Json::UInt(12)),
                            ("insts", Json::UInt(10)),
                            ("checks", Json::UInt(4)),
                            ("check_uops", Json::UInt(8)),
                            ("site_checks", Json::UInt(5)),
                            ("site_check_uops", Json::UInt(8)),
                            ("backend_checks", Json::UInt(5)),
                        ]),
                    ),
                    (
                        "blocks",
                        Json::Arr(vec![
                            block(0x1_0000, 0x1_0008, 10, 4, 1, 2),
                            block(0x1_0008, 0x1_0010, 20, 8, 3, 6),
                        ]),
                    ),
                    (
                        "functions",
                        Json::Arr(vec![Json::obj(vec![
                            ("entry", Json::UInt(0x1_0000)),
                            ("symbol", Json::from("main")),
                            ("blocks", Json::UInt(2)),
                            ("cycles", Json::UInt(30)),
                            ("uops", Json::UInt(12)),
                            ("checks", Json::UInt(4)),
                            ("check_uops", Json::UInt(8)),
                        ])]),
                    ),
                    (
                        "sites",
                        Json::Arr(vec![
                            Json::obj(vec![
                                ("site", Json::UInt(0)),
                                ("allocs", Json::UInt(0)),
                                ("frees", Json::UInt(0)),
                                ("bytes", Json::UInt(0)),
                                ("checks", Json::UInt(1)),
                                ("check_uops", Json::UInt(0)),
                                ("canonicalizations", Json::UInt(0)),
                                ("deferred_latches", Json::UInt(0)),
                                ("faults", Json::UInt(0)),
                            ]),
                            Json::obj(vec![
                                ("site", Json::UInt(0x1_0004)),
                                ("allocs", Json::UInt(1)),
                                ("frees", Json::UInt(1)),
                                ("bytes", Json::UInt(64)),
                                ("checks", Json::UInt(4)),
                                ("check_uops", Json::UInt(8)),
                                ("canonicalizations", Json::UInt(0)),
                                ("deferred_latches", Json::UInt(0)),
                                ("faults", Json::UInt(0)),
                            ]),
                        ]),
                    ),
                ])]),
            ),
        ])
    }

    /// Replaces `key` inside the first row's `total` object.
    fn with_total(mut doc: Json, key: &str, value: u64) -> Json {
        if let Json::Obj(members) = &mut doc {
            if let Some((_, Json::Arr(rows))) = members.iter_mut().find(|(k, _)| k == "rows") {
                if let Json::Obj(row) = &mut rows[0] {
                    if let Some((_, Json::Obj(total))) =
                        row.iter_mut().find(|(k, _)| k == "total")
                    {
                        for (k, v) in total.iter_mut() {
                            if k == key {
                                *v = Json::UInt(value);
                            }
                        }
                    }
                }
            }
        }
        doc
    }

    #[test]
    fn well_formed_document_validates() {
        validate(&doc()).expect("schema-valid");
    }

    #[test]
    fn block_sum_mismatches_are_rejected() {
        let err = validate(&with_total(doc(), "cycles", 31)).unwrap_err();
        assert!(err.contains("block cycles sum"), "{err}");
        let err = validate(&with_total(doc(), "check_uops", 9)).unwrap_err();
        assert!(err.contains("check_uops sum"), "{err}");
    }

    #[test]
    fn site_sum_mismatches_are_rejected() {
        let err = validate(&with_total(doc(), "site_checks", 6)).unwrap_err();
        assert!(err.contains("site check sum"), "{err}");
        let err = validate(&with_total(doc(), "site_check_uops", 7)).unwrap_err();
        assert!(err.contains("site check-uop sum"), "{err}");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(validate(&Json::Null).is_err());
        assert!(validate(&Json::obj(vec![("schema", Json::from("other/v9"))])).is_err());
        // A row scheme outside the scheme list.
        let mut d = doc();
        if let Json::Obj(members) = &mut d {
            if let Some((_, Json::Arr(schemes))) =
                members.iter_mut().find(|(k, _)| k == "schemes")
            {
                schemes.pop();
            }
        }
        let err = validate(&d).unwrap_err();
        assert!(err.contains("not in"), "{err}");
    }

    #[test]
    fn unsorted_or_overlapping_blocks_are_rejected() {
        let mut d = doc();
        if let Json::Obj(members) = &mut d {
            if let Some((_, Json::Arr(rows))) = members.iter_mut().find(|(k, _)| k == "rows") {
                if let Json::Obj(row) = &mut rows[0] {
                    if let Some((_, Json::Arr(blocks))) =
                        row.iter_mut().find(|(k, _)| k == "blocks")
                    {
                        blocks.swap(0, 1);
                    }
                }
            }
        }
        let err = validate(&d).unwrap_err();
        assert!(err.contains("overlaps or precedes"), "{err}");
    }
}
