//! Property test: any program built through the `ProgramBuilder` API
//! serialises to assembly text that re-parses into an equivalent
//! program (instruction-for-instruction, with branch targets compared by
//! resolved PC).

#![cfg(feature = "proptest")]

use proptest::prelude::*;

use rest_isa::{parse_asm, AluOp, BranchCond, Inst, MemSize, Program, ProgramBuilder, Reg};

/// A generatable instruction template (labels handled separately).
#[derive(Debug, Clone)]
enum Tpl {
    Alu(AluOp, u8, u8, u8),
    AluImm(AluOp, u8, u8, i64),
    Li(u8, i64),
    Load(u8, u8, i64, MemSize, bool),
    Store(u8, u8, i64, MemSize),
    Arm(u8),
    Disarm(u8),
    Nop,
    BranchBack(u8, u8),             // beq to the program start
    BranchFwd(BranchCond, u8, u8),  // any condition, to the program end
    Call(u8),                       // jal to the program end (forward label)
    Jump,                           // jal zero to the program end
    Jalr(u8, u8, i64),              // indirect jump/return form
    Ecall,
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
    ]
}

fn mem_size() -> impl Strategy<Value = MemSize> {
    prop_oneof![
        Just(MemSize::B1),
        Just(MemSize::B2),
        Just(MemSize::B4),
        Just(MemSize::B8)
    ]
}

fn branch_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

fn tpl() -> impl Strategy<Value = Tpl> {
    prop_oneof![
        (alu_op(), 0u8..32, 0u8..32, 0u8..32).prop_map(|(o, d, a, b)| Tpl::Alu(o, d, a, b)),
        (alu_op(), 0u8..32, 0u8..32, -4096i64..4096)
            .prop_map(|(o, d, s, i)| Tpl::AluImm(o, d, s, i)),
        (0u8..32, any::<i64>()).prop_map(|(d, i)| Tpl::Li(d, i)),
        (0u8..32, 0u8..32, -256i64..256, mem_size(), any::<bool>())
            .prop_map(|(d, b, o, sz, sg)| Tpl::Load(d, b, o, sz, sg)),
        (0u8..32, 0u8..32, -256i64..256, mem_size())
            .prop_map(|(s, b, o, sz)| Tpl::Store(s, b, o, sz)),
        (0u8..32).prop_map(Tpl::Arm),
        (0u8..32).prop_map(Tpl::Disarm),
        Just(Tpl::Nop),
        (0u8..32, 0u8..32).prop_map(|(a, b)| Tpl::BranchBack(a, b)),
        (branch_cond(), 0u8..32, 0u8..32).prop_map(|(c, a, b)| Tpl::BranchFwd(c, a, b)),
        (0u8..32).prop_map(Tpl::Call),
        Just(Tpl::Jump),
        (0u8..32, 0u8..32, -256i64..256).prop_map(|(d, b, o)| Tpl::Jalr(d, b, o)),
        Just(Tpl::Ecall),
    ]
}

fn build(tpls: &[Tpl]) -> Program {
    let mut p = ProgramBuilder::new();
    let start = p.label_here();
    let end = p.new_label();
    for t in tpls {
        match *t {
            Tpl::Alu(op, d, a, b) => {
                p.push(Inst::Alu {
                    op,
                    dst: Reg::new(d),
                    src1: Reg::new(a),
                    src2: Reg::new(b),
                });
            }
            Tpl::AluImm(op, d, s, imm) => {
                p.push(Inst::AluImm {
                    op,
                    dst: Reg::new(d),
                    src: Reg::new(s),
                    imm,
                });
            }
            Tpl::Li(d, imm) => {
                p.li(Reg::new(d), imm);
            }
            Tpl::Load(d, b, off, size, signed) => {
                p.push(Inst::Load {
                    dst: Reg::new(d),
                    base: Reg::new(b),
                    offset: off,
                    size,
                    signed,
                });
            }
            Tpl::Store(s, b, off, size) => {
                p.push(Inst::Store {
                    src: Reg::new(s),
                    base: Reg::new(b),
                    offset: off,
                    size,
                });
            }
            Tpl::Arm(r) => {
                p.arm(Reg::new(r));
            }
            Tpl::Disarm(r) => {
                p.disarm(Reg::new(r));
            }
            Tpl::Nop => {
                p.nop();
            }
            Tpl::BranchBack(a, b) => {
                p.beq(Reg::new(a), Reg::new(b), start);
            }
            Tpl::BranchFwd(cond, a, b) => {
                p.push(Inst::Branch {
                    cond,
                    src1: Reg::new(a),
                    src2: Reg::new(b),
                    target: end,
                });
            }
            Tpl::Call(d) => {
                p.push(Inst::Jal {
                    dst: Reg::new(d),
                    target: end,
                });
            }
            Tpl::Jump => {
                p.j(end);
            }
            Tpl::Jalr(d, b, off) => {
                p.jalr(Reg::new(d), Reg::new(b), off);
            }
            Tpl::Ecall => {
                p.ecall_raw();
            }
        }
    }
    p.bind(end);
    p.halt();
    p.build()
}

fn normalize(p: &Program) -> Vec<String> {
    p.instructions()
        .iter()
        .map(|inst| match *inst {
            Inst::Branch {
                cond,
                src1,
                src2,
                target,
            } => format!(
                "{} {src1},{src2} -> {:#x}",
                cond.mnemonic(),
                p.label_pc(target)
            ),
            Inst::Jal { dst, target } => format!("jal {dst} -> {:#x}", p.label_pc(target)),
            other => format!("{other}"),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_round_trip(tpls in prop::collection::vec(tpl(), 0..80)) {
        let prog = build(&tpls);
        let text = prog.to_asm();
        let reparsed = parse_asm(&text)
            .unwrap_or_else(|e| panic!("serialised text failed to parse: {e}\n{text}"));
        prop_assert_eq!(normalize(&prog), normalize(&reparsed));
        // Serialisation is a fixed point after one round.
        prop_assert_eq!(text, reparsed.to_asm());
    }
}

#[test]
fn empty_program_round_trips() {
    let prog = ProgramBuilder::new().build();
    let again = parse_asm(&prog.to_asm()).unwrap();
    assert_eq!(again.len(), 0);
}
