use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::inst::MemSize;

/// Size of one page of guest memory.
pub const PAGE_SIZE: u64 = 4096;

/// Multiplicative hasher for the page table's `u64` keys. Every guest
/// load, store, and instruction fetch goes through one page lookup, so
/// the default SipHash is pure overhead here; page indices are
/// attacker-neutral simulator state, not untrusted input, so a
/// Fibonacci-multiply spreads them well enough. Never iterated, so the
/// hash order can't leak into results.
#[derive(Default)]
struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type PageMap<V> = HashMap<u64, V, BuildHasherDefault<PageHasher>>;

/// The functional memory image of the simulated machine.
///
/// A sparse, paged, byte-addressable 64-bit address space. Reads of
/// never-written locations return zero, matching demand-zero pages of a
/// real OS. The timing model keeps *cache state* separately; this type is
/// the architectural contents of memory, shared by the emulator, the
/// runtime allocators, and the L1-D token detector (which compares actual
/// line bytes against the token value on fill).
///
/// # Example
///
/// ```
/// use rest_isa::GuestMemory;
///
/// let mut mem = GuestMemory::new();
/// mem.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(mem.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(mem.read_u64(0x2000), 0); // demand-zero
/// ```
#[derive(Debug, Clone)]
pub struct GuestMemory {
    /// Page frames, appended on first touch and never removed, so frame
    /// indices stay stable for the lifetime of the memory.
    frames: Vec<Box<[u8; PAGE_SIZE as usize]>>,
    /// Page number → index into `frames`.
    table: PageMap<u32>,
    /// One-entry translation cache `(page number, frame index)` of the
    /// most recently resolved *resident* page. Guest access streams are
    /// heavily page-local, so this converts most lookups — every load,
    /// store, and shadow poke pays one — into a compare and a vector
    /// index. Sound because pages are never unmapped; absent pages
    /// (demand-zero reads) are never cached. The sentinel page number
    /// `u64::MAX` is unreachable (real page numbers top out at
    /// `u64::MAX / PAGE_SIZE`).
    last: Cell<(u64, u32)>,
    bytes_written: u64,
    /// Pre-update images of cache lines about to be modified by
    /// `arm`/`disarm` effects within the current macro instruction. The
    /// timing model's token detector reads these so a line fill observes
    /// the content hardware would fetch (the functional emulator runs
    /// one instruction ahead of the pipeline). Cleared after each batch.
    pre_line_images: PageMap<[u8; 64]>,
}

impl Default for GuestMemory {
    fn default() -> GuestMemory {
        GuestMemory {
            frames: Vec::new(),
            table: PageMap::default(),
            last: Cell::new((u64::MAX, 0)),
            bytes_written: 0,
            pre_line_images: PageMap::default(),
        }
    }
}

impl GuestMemory {
    /// Creates an empty (all-zero) address space.
    pub fn new() -> GuestMemory {
        GuestMemory::default()
    }

    #[inline]
    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE as usize]> {
        let pno = addr / PAGE_SIZE;
        let (cached_pno, cached_idx) = self.last.get();
        let idx = if cached_pno == pno {
            cached_idx
        } else {
            let idx = *self.table.get(&pno)?;
            self.last.set((pno, idx));
            idx
        };
        Some(&self.frames[idx as usize])
    }

    #[inline]
    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE as usize] {
        let pno = addr / PAGE_SIZE;
        let (cached_pno, cached_idx) = self.last.get();
        let idx = if cached_pno == pno {
            cached_idx
        } else {
            let idx = match self.table.get(&pno) {
                Some(&i) => i,
                None => {
                    let i = u32::try_from(self.frames.len()).expect("page count fits u32");
                    self.frames.push(Box::new([0u8; PAGE_SIZE as usize]));
                    self.table.insert(pno, i);
                    i
                }
            };
            self.last.set((pno, idx));
            idx
        };
        &mut self.frames[idx as usize]
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        self.bytes_written += 1;
        self.page_mut(addr)[(addr % PAGE_SIZE) as usize] = val;
    }

    /// Largest run of addresses starting at `addr` that stays within one
    /// page and does not wrap the address space, capped at `len`.
    fn chunk_len(addr: u64, len: u64) -> u64 {
        let in_page = PAGE_SIZE - addr % PAGE_SIZE;
        // Distance to the top of the address space (saturates at
        // `addr == 0`, where no real buffer can reach the cap anyway).
        let to_wrap = (u64::MAX - addr).saturating_add(1);
        len.min(in_page).min(to_wrap)
    }

    /// Reads `buf.len()` bytes starting at `addr`, a page-sized chunk at
    /// a time (wrapping at the top of the address space like the
    /// per-byte path did).
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        let mut addr = addr;
        let mut buf = buf;
        while !buf.is_empty() {
            let n = Self::chunk_len(addr, buf.len() as u64) as usize;
            let (head, rest) = buf.split_at_mut(n);
            let off = (addr % PAGE_SIZE) as usize;
            match self.page(addr) {
                Some(p) => head.copy_from_slice(&p[off..off + n]),
                None => head.fill(0),
            }
            addr = addr.wrapping_add(n as u64);
            buf = rest;
        }
    }

    /// Writes `bytes` starting at `addr`, a page-sized chunk at a time.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let mut addr = addr;
        let mut bytes = bytes;
        while !bytes.is_empty() {
            let n = Self::chunk_len(addr, bytes.len() as u64) as usize;
            let off = (addr % PAGE_SIZE) as usize;
            self.page_mut(addr)[off..off + n].copy_from_slice(&bytes[..n]);
            self.bytes_written += n as u64;
            addr = addr.wrapping_add(n as u64);
            bytes = &bytes[n..];
        }
    }

    /// Reads a little-endian scalar of the given width.
    ///
    /// Scalars that stay within one page (the overwhelmingly common case
    /// — pages end on 4 KiB boundaries, so no wrap either) take one
    /// lookup and a width-specialised fixed-size copy; a variable-length
    /// copy here would lower to a `memcpy` call on the hottest path of
    /// the whole simulator.
    #[inline]
    pub fn read_scalar(&self, addr: u64, size: MemSize) -> u64 {
        let n = size.bytes() as usize;
        let off = (addr % PAGE_SIZE) as usize;
        if off + n <= PAGE_SIZE as usize {
            let Some(p) = self.page(addr) else { return 0 };
            return match size {
                MemSize::B1 => u64::from(p[off]),
                MemSize::B2 => {
                    u64::from(u16::from_le_bytes(p[off..off + 2].try_into().unwrap()))
                }
                MemSize::B4 => {
                    u64::from(u32::from_le_bytes(p[off..off + 4].try_into().unwrap()))
                }
                MemSize::B8 => u64::from_le_bytes(p[off..off + 8].try_into().unwrap()),
            };
        }
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf[..n]);
        u64::from_le_bytes(buf)
    }

    /// Writes the low `size` bytes of `val`, little-endian (same
    /// single-page fast path as [`GuestMemory::read_scalar`]).
    #[inline]
    pub fn write_scalar(&mut self, addr: u64, val: u64, size: MemSize) {
        let n = size.bytes() as usize;
        let off = (addr % PAGE_SIZE) as usize;
        if off + n <= PAGE_SIZE as usize {
            let p = self.page_mut(addr);
            match size {
                MemSize::B1 => p[off] = val as u8,
                MemSize::B2 => p[off..off + 2].copy_from_slice(&(val as u16).to_le_bytes()),
                MemSize::B4 => p[off..off + 4].copy_from_slice(&(val as u32).to_le_bytes()),
                MemSize::B8 => p[off..off + 8].copy_from_slice(&val.to_le_bytes()),
            }
            self.bytes_written += n as u64;
        } else {
            let bytes = val.to_le_bytes();
            self.write_bytes(addr, &bytes[..n]);
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        self.read_scalar(addr, MemSize::B2) as u16
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_scalar(addr, MemSize::B4) as u32
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_scalar(addr, MemSize::B8)
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, val: u32) {
        self.write_scalar(addr, val as u64, MemSize::B4);
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, val: u64) {
        self.write_scalar(addr, val, MemSize::B8);
    }

    /// Fills `len` bytes starting at `addr` with `byte`, a page-sized
    /// chunk at a time.
    pub fn fill(&mut self, addr: u64, len: u64, byte: u8) {
        let mut addr = addr;
        let mut left = len;
        while left > 0 {
            let n = Self::chunk_len(addr, left);
            let off = (addr % PAGE_SIZE) as usize;
            self.page_mut(addr)[off..off + n as usize].fill(byte);
            self.bytes_written += n;
            addr = addr.wrapping_add(n);
            left -= n;
        }
    }

    /// Copies `len` bytes from `src` to `dst` (handles overlap like
    /// `memmove`) without a temporary heap buffer: chunks are bounced
    /// through a small stack buffer, copying forwards when `dst < src`
    /// and backwards otherwise so an earlier chunk never clobbers bytes
    /// a later chunk still has to read.
    pub fn copy(&mut self, dst: u64, src: u64, len: u64) {
        const CHUNK: usize = 256;
        let mut buf = [0u8; CHUNK];
        let mut done = 0u64;
        while done < len {
            let n = (len - done).min(CHUNK as u64);
            // Forward chunk order reads ahead of writes when dst < src;
            // backward order does when dst > src (dst == src is a plain
            // rewrite either way, preserving the bytes_written count).
            let off = if dst < src { done } else { len - done - n };
            self.read_bytes(src.wrapping_add(off), &mut buf[..n as usize]);
            self.write_bytes(dst.wrapping_add(off), &buf[..n as usize]);
            done += n;
        }
    }

    /// Whether `len` bytes at `addr` equal `expect`.
    pub fn bytes_equal(&self, addr: u64, expect: &[u8]) -> bool {
        expect
            .iter()
            .enumerate()
            .all(|(i, &b)| self.read_u8(addr.wrapping_add(i as u64)) == b)
    }

    /// Number of pages actually materialised.
    pub fn resident_pages(&self) -> usize {
        self.frames.len()
    }

    /// Total bytes written over the lifetime of this memory (a cheap
    /// activity counter used by tests).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Records the pre-update image of the 64-byte line containing
    /// `addr`, if not already recorded, for the timing model's benefit.
    /// Call *before* applying an `arm`/`disarm` functional effect.
    pub fn snapshot_line_pre_image(&mut self, addr: u64) {
        let line = addr & !63;
        if self.pre_line_images.contains_key(&line) {
            return;
        }
        let mut buf = [0u8; 64];
        self.read_bytes(line, &mut buf);
        self.pre_line_images.insert(line, buf);
    }

    /// The recorded pre-update image of the line containing `addr`.
    pub fn pre_line_image(&self, addr: u64) -> Option<&[u8; 64]> {
        self.pre_line_images.get(&(addr & !63))
    }

    /// Drops all recorded pre-images (done after the timing model has
    /// consumed the current instruction's micro-ops).
    pub fn clear_pre_images(&mut self) {
        self.pre_line_images.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_zero_reads() {
        let mem = GuestMemory::new();
        assert_eq!(mem.read_u8(0), 0);
        assert_eq!(mem.read_u64(0xffff_ffff_0000), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn scalar_round_trip_all_sizes() {
        let mut mem = GuestMemory::new();
        for (size, mask) in [
            (MemSize::B1, 0xffu64),
            (MemSize::B2, 0xffff),
            (MemSize::B4, 0xffff_ffff),
            (MemSize::B8, u64::MAX),
        ] {
            let val = 0x1122_3344_5566_7788u64;
            mem.write_scalar(0x500, val, size);
            assert_eq!(mem.read_scalar(0x500, size), val & mask);
        }
    }

    #[test]
    fn cross_page_access() {
        let mut mem = GuestMemory::new();
        let addr = PAGE_SIZE - 4;
        mem.write_u64(addr, 0x0123_4567_89ab_cdef);
        assert_eq!(mem.read_u64(addr), 0x0123_4567_89ab_cdef);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn copy_handles_overlap() {
        let mut mem = GuestMemory::new();
        mem.write_bytes(0x100, &[1, 2, 3, 4, 5]);
        mem.copy(0x102, 0x100, 5);
        let mut out = [0u8; 5];
        mem.read_bytes(0x102, &mut out);
        assert_eq!(out, [1, 2, 3, 4, 5]);
    }

    #[test]
    fn copy_overlap_both_directions_beyond_chunk_size() {
        // Overlap distance smaller than the internal bounce buffer and
        // length larger than it: the chunked memmove must still behave
        // like a full-buffer copy in both directions.
        let src_data: Vec<u8> = (0..600u32).map(|i| (i % 251) as u8).collect();
        for (dst, src) in [(0x1010u64, 0x1000u64), (0x1000, 0x1010)] {
            let mut mem = GuestMemory::new();
            mem.write_bytes(src, &src_data);
            let before = mem.bytes_written();
            mem.copy(dst, src, 600);
            assert_eq!(mem.bytes_written(), before + 600);
            let mut out = vec![0u8; 600];
            mem.read_bytes(dst, &mut out);
            assert_eq!(out, src_data);
        }
        // dst == src is a plain rewrite, not a skip.
        let mut mem = GuestMemory::new();
        mem.write_bytes(0x2000, &src_data);
        let before = mem.bytes_written();
        mem.copy(0x2000, 0x2000, 600);
        assert_eq!(mem.bytes_written(), before + 600);
        assert!(mem.bytes_equal(0x2000, &src_data));
    }

    #[test]
    fn bulk_ops_chunk_across_pages_and_wrap() {
        let mut mem = GuestMemory::new();
        // Spans three pages.
        let data: Vec<u8> = (0..2 * PAGE_SIZE + 100).map(|i| (i % 255) as u8).collect();
        mem.write_bytes(PAGE_SIZE - 50, &data);
        assert_eq!(mem.bytes_written(), data.len() as u64);
        let mut out = vec![0u8; data.len()];
        mem.read_bytes(PAGE_SIZE - 50, &mut out);
        assert_eq!(out, data);
        assert_eq!(mem.resident_pages(), 4); // 50 + 4096 + 4096 + 50 bytes
        // Wrap-around at the top of the address space, like the old
        // per-byte path.
        mem.write_bytes(u64::MAX - 1, &[0xaa, 0xbb, 0xcc, 0xdd]);
        assert_eq!(mem.read_u8(u64::MAX - 1), 0xaa);
        assert_eq!(mem.read_u8(u64::MAX), 0xbb);
        assert_eq!(mem.read_u8(0), 0xcc);
        assert_eq!(mem.read_u8(1), 0xdd);
        let mut wrapped = [0u8; 4];
        mem.read_bytes(u64::MAX - 1, &mut wrapped);
        assert_eq!(wrapped, [0xaa, 0xbb, 0xcc, 0xdd]);
        mem.fill(u64::MAX, 3, 0x7e);
        assert_eq!(mem.read_u8(u64::MAX), 0x7e);
        assert_eq!(mem.read_u8(0), 0x7e);
        assert_eq!(mem.read_u8(1), 0x7e);
    }

    #[test]
    fn fill_writes_every_byte() {
        let mut mem = GuestMemory::new();
        mem.fill(0x10, 64, 0xaa);
        assert!(mem.bytes_equal(0x10, &[0xaa; 64]));
        assert_eq!(mem.read_u8(0x0f), 0);
        assert_eq!(mem.read_u8(0x50), 0);
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = GuestMemory::new();
        mem.write_u32(0x40, 0x0403_0201);
        assert_eq!(mem.read_u8(0x40), 1);
        assert_eq!(mem.read_u8(0x43), 4);
    }
}
