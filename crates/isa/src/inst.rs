use std::fmt;

use crate::program::Label;
use crate::reg::Reg;

/// Width of a scalar memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemSize {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl MemSize {
    /// Access width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemSize::B1 => 1,
            MemSize::B2 => 2,
            MemSize::B4 => 4,
            MemSize::B8 => 8,
        }
    }
}

impl fmt::Display for MemSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.bytes())
    }
}

/// Integer ALU operation, used by both register-register and
/// register-immediate instruction forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    /// Signed division; division by zero yields `-1` (all ones), matching
    /// RISC-V semantics, rather than trapping.
    Div,
    /// Signed remainder; remainder by zero yields the dividend.
    Rem,
    And,
    Or,
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Sll,
    /// Logical shift right (shift amount taken modulo 64).
    Srl,
    /// Arithmetic shift right (shift amount taken modulo 64).
    Sra,
    /// Set-less-than, signed: `dst = (src1 < src2) as u64`.
    Slt,
    /// Set-less-than, unsigned.
    Sltu,
}

impl AluOp {
    /// Applies the operation to two 64-bit operands.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    u64::MAX
                } else {
                    ((a as i64).wrapping_div(b as i64)) as u64
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    ((a as i64).wrapping_rem(b as i64)) as u64
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b as u32 & 63),
            AluOp::Srl => a.wrapping_shr(b as u32 & 63),
            AluOp::Sra => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
        }
    }

    /// Mnemonic for disassembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

/// Condition of a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    Eq,
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl BranchCond {
    /// Evaluates the condition on two 64-bit operands.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }

    /// Mnemonic for disassembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }
}

/// Runtime-service numbers for [`Inst::Ecall`].
///
/// The service number is passed in `a7`; arguments in `a0..a5`; the
/// result, if any, in `a0`. These model the program/runtime boundary the
/// paper relies on: heap allocation goes through the active allocator
/// (libc-style, ASan, or REST), and bulk data-movement calls model the
/// `libc` routines that ASan intercepts (its overhead component 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum EcallNum {
    /// `a0 = malloc(a0)`. Returns null (0) on exhaustion.
    Malloc = 1,
    /// `free(a0)`.
    Free = 2,
    /// `memcpy(dst=a0, src=a1, len=a2)`; models the libc call that ASan
    /// intercepts for checking.
    Memcpy = 3,
    /// `memset(dst=a0, byte=a1, len=a2)`.
    Memset = 4,
    /// Terminate the program with exit code `a0`.
    Exit = 5,
    /// Append the low byte of `a0` to the program's output buffer.
    PutChar = 6,
    /// `a0 = sbrk(a0)`: grow the flat data break (used by workload
    /// initialisation to obtain large static arrays without the heap).
    Sbrk = 7,
    /// `a0 = calloc(nmemb=a0, size=a1)`; zeroes the allocation.
    Calloc = 8,
    /// `a0 = realloc(ptr=a0, new_size=a1)`.
    Realloc = 9,
}

impl EcallNum {
    /// Decodes a service number from the value of `a7`.
    pub fn from_u64(v: u64) -> Option<EcallNum> {
        Some(match v {
            1 => EcallNum::Malloc,
            2 => EcallNum::Free,
            3 => EcallNum::Memcpy,
            4 => EcallNum::Memset,
            5 => EcallNum::Exit,
            6 => EcallNum::PutChar,
            7 => EcallNum::Sbrk,
            8 => EcallNum::Calloc,
            9 => EcallNum::Realloc,
            _ => None?,
        })
    }
}

/// One instruction of the mini-ISA.
///
/// Branch and jump targets are expressed as [`Label`]s while a program is
/// being built; [`crate::ProgramBuilder::build`] resolves them to absolute
/// PCs and rejects unbound labels, so an executable [`crate::Program`]
/// never contains dangling targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `dst = src1 <op> src2`.
    Alu {
        op: AluOp,
        dst: Reg,
        src1: Reg,
        src2: Reg,
    },
    /// `dst = src <op> imm`.
    AluImm {
        op: AluOp,
        dst: Reg,
        src: Reg,
        imm: i64,
    },
    /// Load a 64-bit immediate: `dst = imm`.
    Li { dst: Reg, imm: i64 },
    /// `dst = mem[base + offset]`, zero- or sign-extended to 64 bits.
    Load {
        dst: Reg,
        base: Reg,
        offset: i64,
        size: MemSize,
        signed: bool,
    },
    /// `mem[base + offset] = src` (low `size` bytes).
    Store {
        src: Reg,
        base: Reg,
        offset: i64,
        size: MemSize,
    },
    /// Conditional PC-relative branch to `target`.
    Branch {
        cond: BranchCond,
        src1: Reg,
        src2: Reg,
        target: Label,
    },
    /// Direct call/jump: `dst = pc + 4; pc = target`.
    Jal { dst: Reg, target: Label },
    /// Indirect jump: `dst = pc + 4; pc = base + offset`.
    Jalr { dst: Reg, base: Reg, offset: i64 },
    /// REST `arm`: store the secret token at the (token-width-aligned)
    /// address in `addr`. Functionally a wide store; never forwards its
    /// value to younger loads.
    Arm { addr: Reg },
    /// REST `disarm`: overwrite the token at the aligned address in
    /// `addr` with zeroes. Raises a REST exception if the location does
    /// not currently hold a token.
    Disarm { addr: Reg },
    /// Runtime-service call; service number in `a7` (see [`EcallNum`]).
    Ecall,
    /// Stop the program successfully.
    Halt,
    /// No operation.
    Nop,
}

impl Inst {
    /// Whether the instruction reads or writes data memory (including
    /// `arm`/`disarm`, which are stores microarchitecturally).
    pub fn is_mem(self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::Arm { .. } | Inst::Disarm { .. }
        )
    }

    /// Whether the instruction can redirect control flow.
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. }
        )
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Alu { op, dst, src1, src2 } => {
                write!(f, "{} {dst}, {src1}, {src2}", op.mnemonic())
            }
            Inst::AluImm { op, dst, src, imm } => {
                write!(f, "{}i {dst}, {src}, {imm}", op.mnemonic())
            }
            Inst::Li { dst, imm } => write!(f, "li {dst}, {imm}"),
            Inst::Load {
                dst,
                base,
                offset,
                size,
                signed,
            } => {
                let s = if signed { "s" } else { "u" };
                write!(f, "ld{}{s} {dst}, {offset}({base})", size.bytes())
            }
            Inst::Store {
                src,
                base,
                offset,
                size,
            } => write!(f, "st{} {src}, {offset}({base})", size.bytes()),
            Inst::Branch {
                cond,
                src1,
                src2,
                target,
            } => write!(f, "{} {src1}, {src2}, {target}", cond.mnemonic()),
            Inst::Jal { dst, target } => write!(f, "jal {dst}, {target}"),
            Inst::Jalr { dst, base, offset } => write!(f, "jalr {dst}, {offset}({base})"),
            Inst::Arm { addr } => write!(f, "arm {addr}"),
            Inst::Disarm { addr } => write!(f, "disarm {addr}"),
            Inst::Ecall => f.write_str("ecall"),
            Inst::Halt => f.write_str("halt"),
            Inst::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(3, 4), 7);
        assert_eq!(AluOp::Sub.apply(3, 4), u64::MAX); // wraps
        assert_eq!(AluOp::Mul.apply(1 << 40, 1 << 40), 0); // wraps
        assert_eq!(AluOp::Div.apply(7, 2), 3);
        assert_eq!(AluOp::Div.apply((-7i64) as u64, 2), (-3i64) as u64);
        assert_eq!(AluOp::Div.apply(7, 0), u64::MAX);
        assert_eq!(AluOp::Rem.apply(7, 0), 7);
        assert_eq!(AluOp::Sra.apply((-8i64) as u64, 1), (-4i64) as u64);
        assert_eq!(AluOp::Srl.apply((-8i64) as u64, 1), (u64::MAX - 7) >> 1);
        assert_eq!(AluOp::Slt.apply((-1i64) as u64, 0), 1);
        assert_eq!(AluOp::Sltu.apply((-1i64) as u64, 0), 0);
    }

    #[test]
    fn shift_amounts_are_masked() {
        assert_eq!(AluOp::Sll.apply(1, 64), 1);
        assert_eq!(AluOp::Sll.apply(1, 65), 2);
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchCond::Eq.eval(5, 5));
        assert!(BranchCond::Ne.eval(5, 6));
        assert!(BranchCond::Lt.eval((-1i64) as u64, 0));
        assert!(!BranchCond::Ltu.eval((-1i64) as u64, 0));
        assert!(BranchCond::Ge.eval(0, (-1i64) as u64));
        assert!(BranchCond::Geu.eval((-1i64) as u64, 0));
    }

    #[test]
    fn ecall_numbers_round_trip() {
        for n in [
            EcallNum::Malloc,
            EcallNum::Free,
            EcallNum::Memcpy,
            EcallNum::Memset,
            EcallNum::Exit,
            EcallNum::PutChar,
            EcallNum::Sbrk,
            EcallNum::Calloc,
            EcallNum::Realloc,
        ] {
            assert_eq!(EcallNum::from_u64(n as u64), Some(n));
        }
        assert_eq!(EcallNum::from_u64(0), None);
        assert_eq!(EcallNum::from_u64(99), None);
    }

    #[test]
    fn classification() {
        assert!(Inst::Arm { addr: Reg::A0 }.is_mem());
        assert!(Inst::Disarm { addr: Reg::A0 }.is_mem());
        assert!(!Inst::Nop.is_mem());
        assert!(Inst::Jalr {
            dst: Reg::ZERO,
            base: Reg::RA,
            offset: 0
        }
        .is_control());
    }
}
