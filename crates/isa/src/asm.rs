//! Textual assembler and serialiser for the mini-ISA.
//!
//! [`parse_asm`] turns assembly text into a [`Program`];
//! [`Program::to_asm`] renders a program back into parseable text, so
//! programs round-trip losslessly (modulo label names). The syntax is
//! RISC-V-flavoured:
//!
//! ```text
//! # comments with '#', ';' or '//'
//! .data 0x8000 de,ad,be,ef      ; initial data segment
//!
//! main:
//!     li   a0, 64
//!     ecall malloc              ; or: ecall 1
//!     mv   s0, a0
//!     sd   zero, 0(s0)
//!     ld   a1, 0(s0)
//!     beq  a1, zero, done
//!     arm  s0
//! done:
//!     halt
//! ```
//!
//! # Example
//!
//! ```
//! use rest_isa::parse_asm;
//!
//! let prog = parse_asm("
//!     li t0, 10
//! loop:
//!     addi t0, t0, -1
//!     bne t0, zero, loop
//!     halt
//! ").unwrap();
//! assert_eq!(prog.len(), 4);
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::inst::{AluOp, BranchCond, EcallNum, Inst, MemSize};
use crate::program::{Label, Program, ProgramBuilder};
use crate::reg::Reg;
use crate::PC_STEP;

/// An assembly syntax error, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asm error on line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Parses a register by ABI name (`a0`, `sp`, …) or index form (`x7`).
fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    if let Some(n) = tok.strip_prefix('x') {
        if let Ok(i) = n.parse::<u8>() {
            if (i as usize) < Reg::COUNT {
                return Ok(Reg::new(i));
            }
        }
    }
    Reg::all()
        .find(|r| r.abi_name() == tok)
        .ok_or_else(|| err(line, format!("unknown register '{tok}'")))
}

/// Parses a decimal or `0x` immediate, optionally negative.
fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16)
            .map_err(|_| err(line, format!("bad hex immediate '{tok}'")))? as i64
    } else {
        body.replace('_', "")
            .parse::<i64>()
            .map_err(|_| err(line, format!("bad immediate '{tok}'")))?
    };
    Ok(if neg { -v } else { v })
}

/// Parses a `offset(base)` memory operand.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i64, Reg), AsmError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected offset(base), got '{tok}'")))?;
    if !tok.ends_with(')') {
        return Err(err(line, format!("unclosed memory operand '{tok}'")));
    }
    let off_str = &tok[..open];
    let base_str = &tok[open + 1..tok.len() - 1];
    let offset = if off_str.is_empty() {
        0
    } else {
        parse_imm(off_str, line)?
    };
    Ok((offset, parse_reg(base_str, line)?))
}

fn ecall_name(n: EcallNum) -> &'static str {
    match n {
        EcallNum::Malloc => "malloc",
        EcallNum::Free => "free",
        EcallNum::Memcpy => "memcpy",
        EcallNum::Memset => "memset",
        EcallNum::Exit => "exit",
        EcallNum::PutChar => "putchar",
        EcallNum::Sbrk => "sbrk",
        EcallNum::Calloc => "calloc",
        EcallNum::Realloc => "realloc",
    }
}

fn parse_ecall_num(tok: &str, line: usize) -> Result<EcallNum, AsmError> {
    for n in [
        EcallNum::Malloc,
        EcallNum::Free,
        EcallNum::Memcpy,
        EcallNum::Memset,
        EcallNum::Exit,
        EcallNum::PutChar,
        EcallNum::Sbrk,
        EcallNum::Calloc,
        EcallNum::Realloc,
    ] {
        if ecall_name(n) == tok {
            return Ok(n);
        }
    }
    let v = parse_imm(tok, line)? as u64;
    EcallNum::from_u64(v).ok_or_else(|| err(line, format!("unknown ecall '{tok}'")))
}

struct Parser {
    builder: ProgramBuilder,
    labels: HashMap<String, Label>,
}

impl Parser {
    fn label_for(&mut self, name: &str) -> Label {
        if let Some(&l) = self.labels.get(name) {
            return l;
        }
        let l = self.builder.new_label();
        self.labels.insert(name.to_string(), l);
        l
    }
}

/// Assembles `src` into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for unknown
/// mnemonics/registers, malformed operands, wrong operand counts,
/// duplicate label definitions, or references to labels never defined.
pub fn parse_asm(src: &str) -> Result<Program, AsmError> {
    let mut p = Parser {
        builder: ProgramBuilder::new(),
        labels: HashMap::new(),
    };
    let mut defined: HashMap<String, usize> = HashMap::new();
    let mut referenced: HashMap<String, usize> = HashMap::new();

    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        // Strip comments.
        let mut text = raw;
        for marker in ["#", ";", "//"] {
            if let Some(pos) = text.find(marker) {
                text = &text[..pos];
            }
        }
        let text = text.trim();
        if text.is_empty() {
            continue;
        }

        // Directives.
        if let Some(rest) = text.strip_prefix(".data") {
            let mut parts = rest.trim().splitn(2, char::is_whitespace);
            let addr_tok = parts
                .next()
                .filter(|s| !s.is_empty())
                .ok_or_else(|| err(line_no, ".data needs an address"))?;
            let addr = parse_imm(addr_tok, line_no)? as u64;
            let bytes_tok = parts
                .next()
                .ok_or_else(|| err(line_no, ".data needs bytes"))?;
            let mut bytes = Vec::new();
            for b in bytes_tok.split(',') {
                let b = b.trim();
                if b.is_empty() {
                    continue;
                }
                bytes.push(
                    u8::from_str_radix(b, 16)
                        .map_err(|_| err(line_no, format!("bad data byte '{b}'")))?,
                );
            }
            p.builder.data_segment(addr, bytes);
            continue;
        }

        // Label definition (possibly followed by an instruction).
        let mut text = text;
        while let Some(colon) = text.find(':') {
            let (name, rest) = text.split_at(colon);
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                break; // not a label — let instruction parsing complain
            }
            if let Some(first) = defined.insert(name.to_string(), line_no) {
                return Err(err(
                    line_no,
                    format!("label '{name}' defined twice (first defined on line {first})"),
                ));
            }
            let l = p.label_for(name);
            p.builder.bind(l);
            p.builder.symbol(name);
            text = rest[1..].trim();
            if text.is_empty() {
                break;
            }
        }
        if text.is_empty() {
            continue;
        }

        // Instruction: mnemonic + comma-separated operands.
        let (mnemonic, ops_str) = match text.find(char::is_whitespace) {
            Some(pos) => (&text[..pos], text[pos..].trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> = if ops_str.is_empty() {
            Vec::new()
        } else {
            ops_str.split(',').map(str::trim).collect()
        };
        let want = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    line_no,
                    format!("'{mnemonic}' expects {n} operands, got {}", ops.len()),
                ))
            }
        };

        let alu3 = |op: AluOp, p: &mut Parser, ops: &[&str]| -> Result<(), AsmError> {
            p.builder.push(Inst::Alu {
                op,
                dst: parse_reg(ops[0], line_no)?,
                src1: parse_reg(ops[1], line_no)?,
                src2: parse_reg(ops[2], line_no)?,
            });
            Ok(())
        };
        let alui = |op: AluOp, p: &mut Parser, ops: &[&str]| -> Result<(), AsmError> {
            p.builder.push(Inst::AluImm {
                op,
                dst: parse_reg(ops[0], line_no)?,
                src: parse_reg(ops[1], line_no)?,
                imm: parse_imm(ops[2], line_no)?,
            });
            Ok(())
        };
        let load = |size: MemSize, signed: bool, p: &mut Parser, ops: &[&str]| -> Result<(), AsmError> {
            let (offset, base) = parse_mem_operand(ops[1], line_no)?;
            p.builder.push(Inst::Load {
                dst: parse_reg(ops[0], line_no)?,
                base,
                offset,
                size,
                signed,
            });
            Ok(())
        };
        let store = |size: MemSize, p: &mut Parser, ops: &[&str]| -> Result<(), AsmError> {
            let (offset, base) = parse_mem_operand(ops[1], line_no)?;
            p.builder.push(Inst::Store {
                src: parse_reg(ops[0], line_no)?,
                base,
                offset,
                size,
            });
            Ok(())
        };
        let branch = |cond: BranchCond,
                      p: &mut Parser,
                      ops: &[&str],
                      referenced: &mut HashMap<String, usize>|
         -> Result<(), AsmError> {
            let src1 = parse_reg(ops[0], line_no)?;
            let src2 = parse_reg(ops[1], line_no)?;
            referenced.entry(ops[2].to_string()).or_insert(line_no);
            let target = p.label_for(ops[2]);
            p.builder.push(Inst::Branch {
                cond,
                src1,
                src2,
                target,
            });
            Ok(())
        };

        match mnemonic {
            "add" => want(3).and_then(|_| alu3(AluOp::Add, &mut p, &ops))?,
            "sub" => want(3).and_then(|_| alu3(AluOp::Sub, &mut p, &ops))?,
            "mul" => want(3).and_then(|_| alu3(AluOp::Mul, &mut p, &ops))?,
            "div" => want(3).and_then(|_| alu3(AluOp::Div, &mut p, &ops))?,
            "rem" => want(3).and_then(|_| alu3(AluOp::Rem, &mut p, &ops))?,
            "and" => want(3).and_then(|_| alu3(AluOp::And, &mut p, &ops))?,
            "or" => want(3).and_then(|_| alu3(AluOp::Or, &mut p, &ops))?,
            "xor" => want(3).and_then(|_| alu3(AluOp::Xor, &mut p, &ops))?,
            "sll" => want(3).and_then(|_| alu3(AluOp::Sll, &mut p, &ops))?,
            "srl" => want(3).and_then(|_| alu3(AluOp::Srl, &mut p, &ops))?,
            "sra" => want(3).and_then(|_| alu3(AluOp::Sra, &mut p, &ops))?,
            "slt" => want(3).and_then(|_| alu3(AluOp::Slt, &mut p, &ops))?,
            "sltu" => want(3).and_then(|_| alu3(AluOp::Sltu, &mut p, &ops))?,
            "addi" => want(3).and_then(|_| alui(AluOp::Add, &mut p, &ops))?,
            "subi" => want(3).and_then(|_| alui(AluOp::Sub, &mut p, &ops))?,
            "muli" => want(3).and_then(|_| alui(AluOp::Mul, &mut p, &ops))?,
            "divi" => want(3).and_then(|_| alui(AluOp::Div, &mut p, &ops))?,
            "remi" => want(3).and_then(|_| alui(AluOp::Rem, &mut p, &ops))?,
            "andi" => want(3).and_then(|_| alui(AluOp::And, &mut p, &ops))?,
            "ori" => want(3).and_then(|_| alui(AluOp::Or, &mut p, &ops))?,
            "xori" => want(3).and_then(|_| alui(AluOp::Xor, &mut p, &ops))?,
            "slli" => want(3).and_then(|_| alui(AluOp::Sll, &mut p, &ops))?,
            "srli" => want(3).and_then(|_| alui(AluOp::Srl, &mut p, &ops))?,
            "srai" => want(3).and_then(|_| alui(AluOp::Sra, &mut p, &ops))?,
            "slti" => want(3).and_then(|_| alui(AluOp::Slt, &mut p, &ops))?,
            "sltui" => want(3).and_then(|_| alui(AluOp::Sltu, &mut p, &ops))?,
            "li" => {
                want(2)?;
                let dst = parse_reg(ops[0], line_no)?;
                let imm = parse_imm(ops[1], line_no)?;
                p.builder.push(Inst::Li { dst, imm });
            }
            "mv" => {
                want(2)?;
                let dst = parse_reg(ops[0], line_no)?;
                let src = parse_reg(ops[1], line_no)?;
                p.builder.mv(dst, src);
            }
            "ld" | "ld8" | "ld8u" => want(2).and_then(|_| load(MemSize::B8, false, &mut p, &ops))?,
            "ld4" | "ld4u" | "lw" => want(2).and_then(|_| load(MemSize::B4, false, &mut p, &ops))?,
            "ld2" | "ld2u" | "lh" => want(2).and_then(|_| load(MemSize::B2, false, &mut p, &ops))?,
            "ld1" | "ld1u" | "lb" => want(2).and_then(|_| load(MemSize::B1, false, &mut p, &ops))?,
            "ld8s" => want(2).and_then(|_| load(MemSize::B8, true, &mut p, &ops))?,
            "ld4s" | "lws" => want(2).and_then(|_| load(MemSize::B4, true, &mut p, &ops))?,
            "ld2s" | "lhs" => want(2).and_then(|_| load(MemSize::B2, true, &mut p, &ops))?,
            "ld1s" | "lbs" => want(2).and_then(|_| load(MemSize::B1, true, &mut p, &ops))?,
            "sd" | "st8" => want(2).and_then(|_| store(MemSize::B8, &mut p, &ops))?,
            "sw" | "st4" => want(2).and_then(|_| store(MemSize::B4, &mut p, &ops))?,
            "sh" | "st2" => want(2).and_then(|_| store(MemSize::B2, &mut p, &ops))?,
            "sb" | "st1" => want(2).and_then(|_| store(MemSize::B1, &mut p, &ops))?,
            "beq" => want(3).and_then(|_| branch(BranchCond::Eq, &mut p, &ops, &mut referenced))?,
            "bne" => want(3).and_then(|_| branch(BranchCond::Ne, &mut p, &ops, &mut referenced))?,
            "blt" => want(3).and_then(|_| branch(BranchCond::Lt, &mut p, &ops, &mut referenced))?,
            "bge" => want(3).and_then(|_| branch(BranchCond::Ge, &mut p, &ops, &mut referenced))?,
            "bltu" => want(3).and_then(|_| branch(BranchCond::Ltu, &mut p, &ops, &mut referenced))?,
            "bgeu" => want(3).and_then(|_| branch(BranchCond::Geu, &mut p, &ops, &mut referenced))?,
            "j" => {
                want(1)?;
                referenced.entry(ops[0].to_string()).or_insert(line_no);
                let target = p.label_for(ops[0]);
                p.builder.push(Inst::Jal {
                    dst: Reg::ZERO,
                    target,
                });
            }
            "call" => {
                want(1)?;
                referenced.entry(ops[0].to_string()).or_insert(line_no);
                let target = p.label_for(ops[0]);
                p.builder.push(Inst::Jal {
                    dst: Reg::RA,
                    target,
                });
            }
            "jal" => {
                want(2)?;
                let dst = parse_reg(ops[0], line_no)?;
                referenced.entry(ops[1].to_string()).or_insert(line_no);
                let target = p.label_for(ops[1]);
                p.builder.push(Inst::Jal { dst, target });
            }
            "jalr" => {
                want(2)?;
                let dst = parse_reg(ops[0], line_no)?;
                let (offset, base) = parse_mem_operand(ops[1], line_no)?;
                p.builder.push(Inst::Jalr { dst, base, offset });
            }
            "ret" => {
                want(0)?;
                p.builder.ret();
            }
            "arm" => {
                want(1)?;
                let addr = parse_reg(ops[0], line_no)?;
                p.builder.push(Inst::Arm { addr });
            }
            "disarm" => {
                want(1)?;
                let addr = parse_reg(ops[0], line_no)?;
                p.builder.push(Inst::Disarm { addr });
            }
            "ecall" => match ops.len() {
                0 => {
                    p.builder.ecall_raw();
                }
                1 => {
                    let n = parse_ecall_num(ops[0], line_no)?;
                    p.builder.ecall(n);
                }
                _ => return Err(err(line_no, "'ecall' takes 0 or 1 operands")),
            },
            "halt" => {
                want(0)?;
                p.builder.halt();
            }
            "nop" => {
                want(0)?;
                p.builder.nop();
            }
            other => return Err(err(line_no, format!("unknown mnemonic '{other}'"))),
        }
    }

    // Every referenced label must be defined. Report the earliest
    // offending reference (ties broken by name) so the error is
    // deterministic regardless of map iteration order.
    if let Some((name, line)) = referenced
        .iter()
        .filter(|(name, _)| !defined.contains_key(*name))
        .min_by_key(|(name, line)| (**line, (*name).clone()))
    {
        return Err(err(*line, format!("label '{name}' is never defined")));
    }
    Ok(p.builder.build())
}

impl Program {
    /// Renders the program as assembly text that [`parse_asm`] accepts,
    /// generating `L_<pc>` labels at branch/jump targets. Data segments
    /// are emitted as `.data` directives.
    pub fn to_asm(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (base, bytes) in self.data_segments() {
            let hex: Vec<String> = bytes.iter().map(|b| format!("{b:02x}")).collect();
            let _ = writeln!(out, ".data {base:#x} {}", hex.join(","));
        }
        // Collect branch-target PCs.
        let mut targets = std::collections::BTreeSet::new();
        for inst in self.instructions() {
            match *inst {
                Inst::Branch { target, .. } | Inst::Jal { target, .. } => {
                    targets.insert(self.label_pc(target));
                }
                _ => {}
            }
        }
        for (i, inst) in self.instructions().iter().enumerate() {
            let pc = Self::CODE_BASE + i as u64 * PC_STEP;
            if targets.contains(&pc) {
                let _ = writeln!(out, "L_{pc:x}:");
            }
            let text = match *inst {
                Inst::Alu { op, dst, src1, src2 } => {
                    format!("{} {dst}, {src1}, {src2}", op.mnemonic())
                }
                Inst::AluImm { op, dst, src, imm } => {
                    format!("{}i {dst}, {src}, {imm}", op.mnemonic())
                }
                Inst::Li { dst, imm } => format!("li {dst}, {imm}"),
                Inst::Load {
                    dst,
                    base,
                    offset,
                    size,
                    signed,
                } => format!(
                    "ld{}{} {dst}, {offset}({base})",
                    size.bytes(),
                    if signed { "s" } else { "u" }
                ),
                Inst::Store {
                    src,
                    base,
                    offset,
                    size,
                } => format!("st{} {src}, {offset}({base})", size.bytes()),
                Inst::Branch {
                    cond,
                    src1,
                    src2,
                    target,
                } => format!(
                    "{} {src1}, {src2}, L_{:x}",
                    cond.mnemonic(),
                    self.label_pc(target)
                ),
                Inst::Jal { dst, target } => {
                    format!("jal {dst}, L_{:x}", self.label_pc(target))
                }
                Inst::Jalr { dst, base, offset } => format!("jalr {dst}, {offset}({base})"),
                Inst::Arm { addr } => format!("arm {addr}"),
                Inst::Disarm { addr } => format!("disarm {addr}"),
                Inst::Ecall => "ecall".to_string(),
                Inst::Halt => "halt".to_string(),
                Inst::Nop => "nop".to_string(),
            };
            let _ = writeln!(out, "    {text}");
        }
        // Targets past the last instruction (e.g. a jump to the end).
        let end_pc = Self::CODE_BASE + self.len() as u64 * PC_STEP;
        if targets.contains(&end_pc) {
            let _ = writeln!(out, "L_{end_pc:x}:");
            let _ = writeln!(out, "    nop");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Renders instructions with branch targets resolved to PCs, so two
    /// programs compare equal regardless of label-id assignment.
    fn normalize(p: &Program) -> Vec<String> {
        p.instructions()
            .iter()
            .map(|inst| match *inst {
                Inst::Branch {
                    cond,
                    src1,
                    src2,
                    target,
                } => format!("{} {src1},{src2} -> {:#x}", cond.mnemonic(), p.label_pc(target)),
                Inst::Jal { dst, target } => format!("jal {dst} -> {:#x}", p.label_pc(target)),
                other => format!("{other}"),
            })
            .collect()
    }

    #[test]
    fn parses_the_doc_example() {
        let prog = parse_asm(
            "
            # a tiny heap program
            .data 0x8000 de,ad
            main:
                li   a0, 64
                ecall malloc
                mv   s0, a0
                sd   zero, 0(s0)
                ld   a1, 0(s0)
                beq  a1, zero, done
                arm  s0
            done:
                halt
            ",
        )
        .unwrap();
        assert_eq!(prog.len(), 9); // ecall expands to li a7 + ecall
        assert_eq!(prog.data_segments(), &[(0x8000, vec![0xde, 0xad])]);
        assert_eq!(prog.symbol_at(prog.entry()), Some("main"));
    }

    #[test]
    fn forward_and_backward_labels() {
        let prog = parse_asm(
            "
            start: addi t0, t0, 1
                   blt t0, t1, start
                   j end
                   nop
            end:   halt
            ",
        )
        .unwrap();
        assert_eq!(prog.len(), 5);
    }

    #[test]
    fn label_on_same_line_as_instruction() {
        let prog = parse_asm("loop: addi t0, t0, -1\n bne t0, zero, loop\n halt").unwrap();
        assert_eq!(prog.len(), 3);
    }

    #[test]
    fn register_index_form_and_hex_immediates() {
        let prog = parse_asm("li x10, 0x40\n addi x10, x10, -0x10\n halt").unwrap();
        assert_eq!(prog.len(), 3);
        assert_eq!(
            prog.fetch(prog.entry()),
            Some(Inst::Li {
                dst: Reg::A0,
                imm: 0x40
            })
        );
    }

    #[test]
    fn error_reporting_names_the_line() {
        let e = parse_asm("nop\n bogus t0, t1\n halt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = parse_asm("addi t0, t9, 1").unwrap_err();
        assert!(e.message.contains("t9"));

        let e = parse_asm("beq t0, t1, nowhere").unwrap_err();
        assert!(e.message.contains("never defined"));

        let e = parse_asm("x: nop\nx: nop").unwrap_err();
        assert!(e.message.contains("defined twice"));

        let e = parse_asm("add t0, t1").unwrap_err();
        assert!(e.message.contains("expects 3"));
    }

    #[test]
    fn duplicate_label_error_names_both_lines() {
        let e = parse_asm("nop\nx: nop\nnop\nx: halt").unwrap_err();
        assert_eq!(e.line, 4, "error is anchored at the re-definition");
        assert!(
            e.message.contains("first defined on line 2"),
            "message should point at the first definition: {}",
            e.message
        );
    }

    #[test]
    fn undefined_label_error_is_deterministic() {
        // Several undefined labels: the diagnostic must consistently
        // pick the earliest reference, whatever the map iteration order.
        let src = "beq t0, t1, zeta\nbeq t0, t1, alpha\nbeq t0, t1, mid\nhalt";
        for _ in 0..16 {
            let e = parse_asm(src).unwrap_err();
            assert_eq!(e.line, 1);
            assert!(e.message.contains("'zeta'"), "got: {}", e.message);
        }
        // Earliest reference wins even when a lexicographically smaller
        // name appears later.
        let e = parse_asm("j beta\nj alpha\nhalt").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("'beta'"), "got: {}", e.message);
    }

    #[test]
    fn all_load_store_widths_parse() {
        let prog = parse_asm(
            "lb a0, 0(sp)\n lh a0, 2(sp)\n lw a0, 4(sp)\n ld a0, 8(sp)
             ld1s a0, 0(sp)\n ld2s a0, 0(sp)\n ld4s a0, 0(sp)
             sb a0, 0(sp)\n sh a0, 0(sp)\n sw a0, 0(sp)\n sd a0, 0(sp)\n halt",
        )
        .unwrap();
        assert_eq!(prog.len(), 12);
    }

    #[test]
    fn ecall_by_name_and_number_agree() {
        let by_name = parse_asm("ecall exit").unwrap();
        let by_num = parse_asm("ecall 5").unwrap();
        assert_eq!(by_name.instructions(), by_num.instructions());
    }

    #[test]
    fn round_trip_preserves_instructions() {
        let src = "
            .data 0x9000 01,02,03
            main:
                li   s0, 0x30000
                li   t0, 8
            loop:
                sd   t0, 0(s0)
                addi t0, t0, -1
                arm  s0
                disarm s0
                bne  t0, zero, loop
                call fn
                j    done
            fn: ret
            done:
                ecall exit
            ";
        let first = parse_asm(src).unwrap();
        let text = first.to_asm();
        let second = parse_asm(&text).unwrap();
        assert_eq!(normalize(&first), normalize(&second));
        assert_eq!(first.data_segments(), second.data_segments());
        // And a third generation is a fixed point.
        assert_eq!(text, second.to_asm());
    }

    #[test]
    fn to_asm_emits_trailing_target_label() {
        // A jump to the very end of the program must round-trip.
        let prog = parse_asm("halt\nj end\nend: halt").unwrap();
        let text = prog.to_asm();
        let again = parse_asm(&text).unwrap();
        assert_eq!(prog.len(), again.len());
    }

    #[test]
    fn comments_in_all_styles() {
        let prog = parse_asm(
            "nop # hash\n nop ; semicolon\n nop // slashes\n halt",
        )
        .unwrap();
        assert_eq!(prog.len(), 4);
    }
}
