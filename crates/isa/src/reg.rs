use std::fmt;

/// An architectural register of the mini-ISA.
///
/// There are 32 general-purpose 64-bit registers, `x0`–`x31`, following
/// RISC-V-style ABI conventions. `x0` ([`Reg::ZERO`]) is hard-wired to
/// zero: writes to it are discarded.
///
/// # Example
///
/// ```
/// use rest_isa::Reg;
///
/// assert_eq!(Reg::A0.index(), 10);
/// assert_eq!(Reg::A0.to_string(), "a0");
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hard-wired zero register (`x0`).
    pub const ZERO: Reg = Reg(0);
    /// Return address (`x1`).
    pub const RA: Reg = Reg(1);
    /// Stack pointer (`x2`).
    pub const SP: Reg = Reg(2);
    /// Global pointer (`x3`).
    pub const GP: Reg = Reg(3);
    /// Thread pointer (`x4`); repurposed as a scratch register by the
    /// instrumentation passes, which must not disturb ABI registers.
    pub const TP: Reg = Reg(4);
    /// Temporary registers.
    pub const T0: Reg = Reg(5);
    pub const T1: Reg = Reg(6);
    pub const T2: Reg = Reg(7);
    /// Callee-saved registers.
    pub const S0: Reg = Reg(8);
    pub const S1: Reg = Reg(9);
    /// Argument / return-value registers.
    pub const A0: Reg = Reg(10);
    pub const A1: Reg = Reg(11);
    pub const A2: Reg = Reg(12);
    pub const A3: Reg = Reg(13);
    pub const A4: Reg = Reg(14);
    pub const A5: Reg = Reg(15);
    pub const A6: Reg = Reg(16);
    /// Ecall service-number register (`a7`).
    pub const A7: Reg = Reg(17);
    /// More callee-saved registers.
    pub const S2: Reg = Reg(18);
    pub const S3: Reg = Reg(19);
    pub const S4: Reg = Reg(20);
    pub const S5: Reg = Reg(21);
    pub const S6: Reg = Reg(22);
    pub const S7: Reg = Reg(23);
    pub const S8: Reg = Reg(24);
    pub const S9: Reg = Reg(25);
    pub const S10: Reg = Reg(26);
    pub const S11: Reg = Reg(27);
    /// More temporaries.
    pub const T3: Reg = Reg(28);
    pub const T4: Reg = Reg(29);
    pub const T5: Reg = Reg(30);
    pub const T6: Reg = Reg(31);

    /// Total number of architectural registers.
    pub const COUNT: usize = 32;

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Reg {
        assert!(
            (index as usize) < Reg::COUNT,
            "register index {index} out of range"
        );
        Reg(index)
    }

    /// The register's architectural index, `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hard-wired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// ABI name of the register (e.g. `"a0"`, `"sp"`).
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.index()]
    }

    /// Iterates over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Reg::COUNT as u8).map(Reg)
    }
}

impl Default for Reg {
    fn default() -> Self {
        Reg::ZERO
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_abi_layout() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::RA.index(), 1);
        assert_eq!(Reg::SP.index(), 2);
        assert_eq!(Reg::A0.index(), 10);
        assert_eq!(Reg::A7.index(), 17);
        assert_eq!(Reg::T6.index(), 31);
    }

    #[test]
    fn display_uses_abi_names() {
        assert_eq!(Reg::ZERO.to_string(), "zero");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::S11.to_string(), "s11");
    }

    #[test]
    fn all_yields_each_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 32);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(32);
    }
}
