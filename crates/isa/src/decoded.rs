//! Decoded-uop cache for the functional emulator's fast path.
//!
//! The timing/functional split re-executes every guest instruction once
//! per dynamic occurrence, but the *static* work of decoding — resolving
//! branch labels, classifying ALU operations, attributing the owning
//! [`Component`], and building the [`DynInst`] skeleton — is identical
//! every time a PC is revisited. A [`DecodedProgram`] performs that work
//! once per static instruction and replays it from a dense PC-indexed
//! table; only the operand-dependent fields (resolved memory address,
//! branch outcome and indirect target) are patched per dynamic instance.
//!
//! The cache is coherent with the guest's view of its own code: the
//! only architected writes that can land in the code segment are
//! `arm`/`disarm` functional effects, and the emulator invalidates the
//! covered entries through [`DecodedProgram::invalidate_range`] at those
//! boundaries. Reference mode skips the table and calls
//! [`DecodedInst::decode_at`] on every fetch, which by construction
//! yields the same `DecodedInst` value — the differential gate in
//! `rest-bench` holds the two paths to byte-identical uop streams.

use crate::dyninst::{BranchInfo, DynInst, OpKind};
use crate::inst::{AluOp, Inst};
use crate::program::Program;
use crate::reg::Reg;
use crate::PC_STEP;

/// Static decode parameters: everything outside the [`Program`] that
/// shapes a micro-op template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeOptions {
    /// Token width in bytes — the access size of `arm`/`disarm`
    /// micro-ops.
    pub arm_width: u64,
    /// Model `arm`/`disarm` as ordinary 8-byte stores (the paper's
    /// "perfect hardware" ablation) instead of REST micro-ops.
    pub arm_as_store: bool,
}

/// One pre-decoded instruction: the fetched [`Inst`], its resolved
/// direct-branch target, and the prebuilt micro-op template.
#[derive(Debug, Clone, Copy)]
pub struct DecodedInst {
    /// The architectural instruction at this PC.
    pub inst: Inst,
    /// Resolved `Branch`/`Jal` label target PC (0 for other kinds).
    pub target: u64,
    /// Prebuilt micro-op. Static fields (kind, registers, component,
    /// access width) are final; dynamic fields (memory address, branch
    /// outcome/indirect target) are patched at replay time.
    pub template: DynInst,
}

impl DecodedInst {
    /// Decodes the instruction at `pc`, or `None` outside the code
    /// segment (mirrors [`Program::fetch`]).
    pub fn decode_at(p: &Program, pc: u64, opts: DecodeOptions) -> Option<DecodedInst> {
        let inst = p.fetch(pc)?;
        Some(Self::decode(p, pc, inst, opts))
    }

    fn decode(p: &Program, pc: u64, inst: Inst, opts: DecodeOptions) -> DecodedInst {
        let component = p.component_at(pc);
        let (target, template) = match inst {
            Inst::Alu { op, dst, src1, src2 } => (
                0,
                DynInst::alu(pc, Some(dst), [Some(src1), Some(src2)]).with_kind(alu_kind(op)),
            ),
            Inst::AluImm { op, dst, src, .. } => (
                0,
                DynInst::alu(pc, Some(dst), [Some(src), None]).with_kind(alu_kind(op)),
            ),
            Inst::Li { dst, .. } => (0, DynInst::alu(pc, Some(dst), [None, None])),
            Inst::Nop | Inst::Halt => (0, DynInst::alu(pc, None, [None, None])),
            Inst::Load {
                dst, base, size, ..
            } => (0, DynInst::load(pc, Some(dst), Some(base), 0, size.bytes())),
            Inst::Store {
                src, base, size, ..
            } => (
                0,
                DynInst::store(pc, Some(src), Some(base), 0, size.bytes()),
            ),
            Inst::Arm { addr } => (
                0,
                if opts.arm_as_store {
                    DynInst::store(pc, None, Some(addr), 0, 8)
                } else {
                    DynInst::arm(pc, Some(addr), 0, opts.arm_width)
                },
            ),
            Inst::Disarm { addr } => (
                0,
                if opts.arm_as_store {
                    DynInst::store(pc, None, Some(addr), 0, 8)
                } else {
                    DynInst::disarm(pc, Some(addr), 0, opts.arm_width)
                },
            ),
            Inst::Branch {
                src1, src2, target, ..
            } => {
                let t = p.label_pc(target);
                (
                    t,
                    DynInst::branch(
                        pc,
                        [Some(src1), Some(src2)],
                        None,
                        BranchInfo {
                            taken: false,
                            target: 0,
                            conditional: true,
                            is_call: false,
                            is_return: false,
                            indirect: false,
                        },
                    ),
                )
            }
            Inst::Jal { dst, target } => {
                let t = p.label_pc(target);
                (
                    t,
                    DynInst::branch(
                        pc,
                        [None, None],
                        Some(dst),
                        BranchInfo {
                            taken: true,
                            target: t,
                            conditional: false,
                            is_call: dst == Reg::RA,
                            is_return: false,
                            indirect: false,
                        },
                    ),
                )
            }
            Inst::Jalr { dst, base, .. } => (
                0,
                DynInst::branch(
                    pc,
                    [Some(base), None],
                    Some(dst),
                    BranchInfo {
                        taken: true,
                        target: 0,
                        conditional: false,
                        is_call: dst == Reg::RA,
                        is_return: dst == Reg::ZERO && base == Reg::RA,
                        indirect: true,
                    },
                ),
            ),
            Inst::Ecall => (
                0,
                DynInst::alu(pc, Some(Reg::A0), [Some(Reg::A7), Some(Reg::A0)]),
            ),
        };
        DecodedInst {
            inst,
            target,
            template: template.with_component(component),
        }
    }
}

/// Execution class of an ALU operation (multiplies and divides occupy
/// the dedicated functional units).
pub fn alu_kind(op: AluOp) -> OpKind {
    match op {
        AluOp::Mul => OpKind::IntMul,
        AluOp::Div | AluOp::Rem => OpKind::IntDiv,
        _ => OpKind::IntAlu,
    }
}

/// A dense PC-indexed table of [`DecodedInst`]s covering the whole code
/// segment: the emulator's decoded-uop cache.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    entries: Vec<DecodedInst>,
    opts: DecodeOptions,
    invalidations: u64,
    redecoded: u64,
}

impl DecodedProgram {
    /// Eagerly decodes every instruction of `p`.
    pub fn new(p: &Program, opts: DecodeOptions) -> DecodedProgram {
        let entries = (0..p.len())
            .map(|i| {
                let pc = Program::CODE_BASE + i as u64 * PC_STEP;
                DecodedInst::decode_at(p, pc, opts).expect("index within code segment")
            })
            .collect();
        DecodedProgram {
            entries,
            opts,
            invalidations: 0,
            redecoded: 0,
        }
    }

    /// The cached entry at `pc`, or `None` outside the code segment or
    /// at a misaligned PC (mirrors [`Program::fetch`]).
    #[inline]
    pub fn entry_at(&self, pc: u64) -> Option<&DecodedInst> {
        let off = pc.checked_sub(Program::CODE_BASE)?;
        if !off.is_multiple_of(PC_STEP) {
            return None;
        }
        self.entries.get((off / PC_STEP) as usize)
    }

    /// Number of cached entries (static instructions).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Invalidates and re-derives every entry overlapped by the
    /// **half-open** byte range `[addr, addr + len)` — the
    /// ARM/DISARM-visible self-modification boundary. Returns the number
    /// of entries re-decoded.
    ///
    /// Boundary contract (trace invalidation reuses these semantics, so
    /// they are pinned by tests):
    ///
    /// * `len == 0` denotes the empty range and touches nothing;
    /// * an entry is covered iff its `PC_STEP`-byte cell intersects the
    ///   range, so a range ending exactly on an instruction boundary
    ///   (`addr + len == entry pc`) does **not** cover that entry;
    /// * the range is clamped to the code segment: a write straddling
    ///   the last entry re-decodes it once, and `addr + len` saturates
    ///   at `u64::MAX` rather than wrapping.
    pub fn invalidate_range(&mut self, p: &Program, addr: u64, len: u64) -> usize {
        if len == 0 || self.entries.is_empty() {
            return 0;
        }
        let code_end = Program::CODE_BASE + self.entries.len() as u64 * PC_STEP;
        let lo = addr.max(Program::CODE_BASE);
        let hi = addr.saturating_add(len).min(code_end);
        if lo >= hi {
            return 0;
        }
        let first = ((lo - Program::CODE_BASE) / PC_STEP) as usize;
        let last = ((hi - 1 - Program::CODE_BASE) / PC_STEP) as usize;
        for idx in first..=last {
            let pc = Program::CODE_BASE + idx as u64 * PC_STEP;
            self.entries[idx] =
                DecodedInst::decode_at(p, pc, self.opts).expect("index within code segment");
        }
        self.invalidations += 1;
        self.redecoded += (last - first + 1) as u64;
        last - first + 1
    }

    /// How many invalidation events have hit the cache.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Total entries re-decoded across all invalidations.
    pub fn redecoded(&self) -> u64 {
        self.redecoded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use crate::reg::Reg;

    fn opts() -> DecodeOptions {
        DecodeOptions {
            arm_width: 64,
            arm_as_store: false,
        }
    }

    fn sample() -> Program {
        let mut p = ProgramBuilder::new();
        let lp = p.new_label();
        p.li(Reg::A0, 0);
        p.li(Reg::T0, 10);
        p.bind(lp);
        p.add(Reg::A0, Reg::A0, Reg::T0);
        p.addi(Reg::T0, Reg::T0, -1);
        p.bne(Reg::T0, Reg::ZERO, lp);
        p.arm(Reg::A1);
        p.halt();
        p.build()
    }

    #[test]
    fn cache_covers_whole_code_segment_and_mirrors_fetch() {
        let p = sample();
        let cache = DecodedProgram::new(&p, opts());
        assert_eq!(cache.len(), p.len());
        assert!(!cache.is_empty());
        for i in 0..p.len() as u64 {
            let pc = Program::CODE_BASE + i * PC_STEP;
            let e = cache.entry_at(pc).expect("entry in range");
            assert_eq!(Some(e.inst), p.fetch(pc));
            assert_eq!(e.template.pc, pc);
            // Per-fetch decode (the reference path) yields the same
            // entry value.
            let fresh = DecodedInst::decode_at(&p, pc, opts()).unwrap();
            assert_eq!(fresh.inst, e.inst);
            assert_eq!(fresh.target, e.target);
            assert_eq!(fresh.template, e.template);
        }
        // Out-of-range and misaligned PCs miss exactly like fetch.
        assert!(cache.entry_at(Program::CODE_BASE - 4).is_none());
        assert!(cache.entry_at(Program::CODE_BASE + 1).is_none());
        assert!(cache
            .entry_at(Program::CODE_BASE + p.len() as u64 * PC_STEP)
            .is_none());
        assert!(cache.entry_at(0).is_none());
    }

    #[test]
    fn branch_targets_resolve_to_label_pcs() {
        let p = sample();
        let cache = DecodedProgram::new(&p, opts());
        // bne is the 5th instruction (index 4); its target is the bind
        // point at index 2.
        let bne = cache.entry_at(Program::CODE_BASE + 4 * PC_STEP).unwrap();
        assert_eq!(bne.target, Program::CODE_BASE + 2 * PC_STEP);
        assert!(matches!(bne.inst, Inst::Branch { .. }));
    }

    #[test]
    fn arm_templates_follow_decode_options() {
        let p = sample();
        let arm_pc = Program::CODE_BASE + 5 * PC_STEP;
        let rest = DecodedProgram::new(&p, opts());
        assert_eq!(rest.entry_at(arm_pc).unwrap().template.kind, OpKind::Arm);
        assert_eq!(
            rest.entry_at(arm_pc).unwrap().template.mem.unwrap().size,
            64
        );
        let perfect = DecodedProgram::new(
            &p,
            DecodeOptions {
                arm_width: 64,
                arm_as_store: true,
            },
        );
        let t = perfect.entry_at(arm_pc).unwrap().template;
        assert_eq!(t.kind, OpKind::Store);
        assert_eq!(t.mem.unwrap().size, 8);
    }

    #[test]
    fn invalidate_range_redecodes_only_covered_entries() {
        let p = sample();
        let mut cache = DecodedProgram::new(&p, opts());
        // A write below, above, or of zero length touches nothing.
        assert_eq!(cache.invalidate_range(&p, 0, Program::CODE_BASE), 0);
        assert_eq!(
            cache.invalidate_range(&p, Program::CODE_BASE + p.len() as u64 * PC_STEP, 64),
            0
        );
        assert_eq!(cache.invalidate_range(&p, Program::CODE_BASE, 0), 0);
        assert_eq!(cache.invalidations(), 0);
        // A 5-byte write starting mid-instruction covers two entries.
        let n = cache.invalidate_range(&p, Program::CODE_BASE + PC_STEP + 2, 5);
        assert_eq!(n, 2);
        assert_eq!(cache.invalidations(), 1);
        assert_eq!(cache.redecoded(), 2);
        // Entries are re-derived, not dropped.
        for i in 0..p.len() as u64 {
            let pc = Program::CODE_BASE + i * PC_STEP;
            assert_eq!(
                Some(cache.entry_at(pc).unwrap().inst),
                p.fetch(pc),
                "entry {i} must survive invalidation"
            );
        }
        // A straddling range clamps to the code segment.
        let all = cache.invalidate_range(&p, 0, u64::MAX);
        assert_eq!(all, p.len());
    }

    #[test]
    fn invalidate_range_is_half_open() {
        let p = sample();
        let mut cache = DecodedProgram::new(&p, opts());
        let base = Program::CODE_BASE;
        // [base, base + PC_STEP) covers exactly the first entry: the
        // range ends on the second entry's boundary without touching it.
        assert_eq!(cache.invalidate_range(&p, base, PC_STEP), 1);
        // A 1-byte write to an entry's last byte covers only that entry.
        assert_eq!(cache.invalidate_range(&p, base + PC_STEP - 1, 1), 1);
        // A range ending exactly where an entry starts excludes it, even
        // mid-segment.
        assert_eq!(
            cache.invalidate_range(&p, base + PC_STEP, 2 * PC_STEP),
            2,
            "[pc1, pc3) covers entries 1 and 2, not 3"
        );
        assert_eq!(cache.invalidations(), 3);
        assert_eq!(cache.redecoded(), 4);
    }

    #[test]
    fn invalidate_range_zero_len_touches_nothing_everywhere() {
        let p = sample();
        let mut cache = DecodedProgram::new(&p, opts());
        // len == 0 is the empty range no matter where it points: below,
        // at, inside, and past the code segment.
        for addr in [
            0,
            Program::CODE_BASE,
            Program::CODE_BASE + 2,
            Program::CODE_BASE + (p.len() as u64 - 1) * PC_STEP,
            u64::MAX,
        ] {
            assert_eq!(cache.invalidate_range(&p, addr, 0), 0, "addr {addr:#x}");
        }
        assert_eq!(cache.invalidations(), 0);
        assert_eq!(cache.redecoded(), 0);
    }

    #[test]
    fn invalidate_range_clamps_writes_straddling_the_last_entry() {
        let p = sample();
        let mut cache = DecodedProgram::new(&p, opts());
        let last_pc = Program::CODE_BASE + (p.len() as u64 - 1) * PC_STEP;
        // A 64-byte token write starting inside the last entry covers
        // exactly that one entry — the tail past the segment is clamped.
        assert_eq!(cache.invalidate_range(&p, last_pc + 1, 64), 1);
        // A range beginning exactly at the segment end is empty
        // (half-open: the end boundary belongs to no entry).
        let end = Program::CODE_BASE + p.len() as u64 * PC_STEP;
        assert_eq!(cache.invalidate_range(&p, end, 64), 0);
        // addr + len saturates instead of wrapping around the address
        // space: a huge range anchored near u64::MAX misses the segment.
        assert_eq!(cache.invalidate_range(&p, u64::MAX - 8, u64::MAX), 0);
        assert_eq!(cache.invalidations(), 1);
        assert_eq!(cache.redecoded(), 1);
    }

    #[test]
    fn alu_kinds_classify_functional_units() {
        assert_eq!(alu_kind(AluOp::Add), OpKind::IntAlu);
        assert_eq!(alu_kind(AluOp::Mul), OpKind::IntMul);
        assert_eq!(alu_kind(AluOp::Div), OpKind::IntDiv);
        assert_eq!(alu_kind(AluOp::Rem), OpKind::IntDiv);
        assert_eq!(alu_kind(AluOp::Xor), OpKind::IntAlu);
    }
}
