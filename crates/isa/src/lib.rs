//! Mini-ISA for the REST reproduction.
//!
//! The REST paper grafts its two new instructions (`arm`, `disarm`) onto
//! x86 encodings inside gem5. The mechanism itself is ISA-agnostic: both
//! instructions behave as stores with special store-to-load-forwarding
//! semantics, and every other interaction happens in the L1 data cache.
//! This crate therefore defines a compact 64-bit RISC-style ISA that is
//! sufficient to express the paper's workloads and defenses:
//!
//! * integer ALU operations (register-register and register-immediate),
//! * loads and stores of 1/2/4/8 bytes,
//! * conditional branches, direct and indirect jumps,
//! * [`Inst::Arm`] and [`Inst::Disarm`] — the REST primitive,
//! * [`Inst::Ecall`] — the runtime-service interface (allocation, libc
//!   data-movement calls, I/O, program exit).
//!
//! The crate also provides:
//!
//! * [`ProgramBuilder`] — a label-based assembler DSL used by the
//!   workload generators and attack scenarios,
//! * [`GuestMemory`] — the sparse, paged functional memory image of the
//!   simulated machine,
//! * [`DynInst`] — the dynamic-instruction record exchanged between the
//!   functional emulator and the timing model, including the
//!   [`Component`] attribution labels used for the paper's Figure 3
//!   overhead breakdown.
//!
//! # Example
//!
//! ```
//! use rest_isa::{ProgramBuilder, Reg};
//!
//! // Sum the integers 1..=10 into a0, then halt.
//! let mut p = ProgramBuilder::new();
//! let lp = p.new_label();
//! p.li(Reg::A0, 0);
//! p.li(Reg::T0, 10);
//! p.bind(lp);
//! p.add(Reg::A0, Reg::A0, Reg::T0);
//! p.addi(Reg::T0, Reg::T0, -1);
//! p.bne(Reg::T0, Reg::ZERO, lp);
//! p.halt();
//! let program = p.build();
//! assert_eq!(program.len(), 6);
//! ```

#![forbid(unsafe_code)]

pub mod asm;
mod decoded;
mod dyninst;
mod guest;
mod inst;
mod program;
mod reg;

pub use asm::{parse_asm, AsmError};
pub use decoded::{alu_kind, DecodeOptions, DecodedInst, DecodedProgram};
pub use dyninst::{BranchInfo, Component, DynInst, MemAccessKind, MemRef, OpKind};
pub use guest::{GuestMemory, PAGE_SIZE};
pub use inst::{AluOp, BranchCond, EcallNum, Inst, MemSize};
pub use program::{Label, Program, ProgramBuilder};
pub use reg::Reg;

/// Width of a cache line in bytes, shared by the ISA (token alignment) and
/// the memory hierarchy. The paper's system uses 64-byte lines.
pub const CACHE_LINE: u64 = 64;

/// Instructions occupy 4 bytes of the (virtual) code address space, so
/// program counters advance in steps of [`PC_STEP`].
pub const PC_STEP: u64 = 4;
