use std::fmt;

use crate::reg::Reg;

/// Execution class of a dynamic instruction, used by the timing model to
/// pick a functional unit and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Single-cycle integer ALU operation (also covers `li`, moves, nops).
    IntAlu,
    /// Pipelined integer multiply.
    IntMul,
    /// Unpipelined integer divide.
    IntDiv,
    /// Data-memory read.
    Load,
    /// Data-memory write.
    Store,
    /// REST `arm` — microarchitecturally a store that never forwards.
    Arm,
    /// REST `disarm` — microarchitecturally a store that never forwards.
    Disarm,
    /// Conditional branch or jump (direct or indirect).
    Branch,
}

impl OpKind {
    /// Whether this operation occupies a load-queue or store-queue entry.
    pub fn is_mem(self) -> bool {
        matches!(
            self,
            OpKind::Load | OpKind::Store | OpKind::Arm | OpKind::Disarm
        )
    }

    /// Whether this operation writes memory (occupies a store-queue
    /// entry). `arm`/`disarm` are stores in the LSQ, per the paper §III-B.
    pub fn is_store_like(self) -> bool {
        matches!(self, OpKind::Store | OpKind::Arm | OpKind::Disarm)
    }
}

/// What a memory micro-op does to its target line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemAccessKind {
    Load,
    Store,
    Arm,
    Disarm,
}

/// A dynamic memory reference: resolved (oracle) address and width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Resolved byte address.
    pub addr: u64,
    /// Access width in bytes (for `arm`/`disarm` this is the token width).
    pub size: u64,
    /// Access kind.
    pub kind: MemAccessKind,
}

impl MemRef {
    /// Whether this reference overlaps `[addr, addr+size)` of `other`.
    pub fn overlaps(&self, other: &MemRef) -> bool {
        self.addr < other.addr.wrapping_add(other.size)
            && other.addr < self.addr.wrapping_add(self.size)
    }

    /// Cache-line index of the first byte (64-byte lines).
    pub fn line(&self) -> u64 {
        self.addr / crate::CACHE_LINE
    }
}

/// Resolved (oracle) outcome of a control-flow instruction, consumed by
/// the branch-predictor model to decide whether fetch was redirected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Whether the branch was taken.
    pub taken: bool,
    /// Next PC actually followed.
    pub target: u64,
    /// Whether this is a conditional branch (predicted by direction
    /// predictor) as opposed to an unconditional jump.
    pub conditional: bool,
    /// Whether this is a call (pushes the return-address stack).
    pub is_call: bool,
    /// Whether this is a return (pops the return-address stack).
    pub is_return: bool,
    /// Whether the target comes from a register (BTB/RAS required even
    /// when direction is known).
    pub indirect: bool,
}

/// Attribution label for Figure 3's overhead breakdown: which part of the
/// hardened software stack injected this dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Component {
    /// Original application code.
    #[default]
    App,
    /// Allocator work (metadata updates, redzone poisoning/arming,
    /// quarantine management).
    Allocator,
    /// Function prologue/epilogue stack-protection code.
    StackProtect,
    /// Per-access validity check (ASan shadow load + compare + branch).
    AccessCheck,
    /// Interposed libc data-movement call checking (ASan component 4).
    ApiIntercept,
}

impl Component {
    /// All components in display order.
    pub const ALL: [Component; 5] = [
        Component::App,
        Component::Allocator,
        Component::StackProtect,
        Component::AccessCheck,
        Component::ApiIntercept,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Component::App => "app",
            Component::Allocator => "allocator",
            Component::StackProtect => "stack-setup",
            Component::AccessCheck => "access-check",
            Component::ApiIntercept => "api-intercept",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One dynamic instruction as seen by the timing model.
///
/// The functional emulator executes the program (including runtime
/// services) ahead of the pipeline and emits a stream of `DynInst`s with
/// *oracle* values: resolved memory addresses and branch outcomes. The
/// timing model then replays the stream through fetch, rename, issue, the
/// LSQ, and commit, discovering mispredictions by comparing predictor
/// output against the oracle outcome. This trace-driven split is the
/// standard construction for cycle-level simulators and keeps the REST
/// mechanisms (token-bit checks at the L1-D, forwarding checks in the
/// LSQ, store-commit policies) on exactly the paths the paper modifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInst {
    /// PC of the (macro) instruction that produced this micro-op.
    pub pc: u64,
    /// Execution class.
    pub kind: OpKind,
    /// Source registers (up to two).
    pub srcs: [Option<Reg>; 2],
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// Memory reference, present iff `kind.is_mem()`.
    pub mem: Option<MemRef>,
    /// Branch outcome, present iff `kind == OpKind::Branch`.
    pub branch: Option<BranchInfo>,
    /// Attribution for the Figure 3 breakdown.
    pub component: Component,
}

impl DynInst {
    /// An integer ALU micro-op.
    pub fn alu(pc: u64, dst: Option<Reg>, srcs: [Option<Reg>; 2]) -> DynInst {
        DynInst {
            pc,
            kind: OpKind::IntAlu,
            srcs,
            dst,
            mem: None,
            branch: None,
            component: Component::App,
        }
    }

    /// A load micro-op at the given resolved address.
    pub fn load(pc: u64, dst: Option<Reg>, base: Option<Reg>, addr: u64, size: u64) -> DynInst {
        DynInst {
            pc,
            kind: OpKind::Load,
            srcs: [base, None],
            dst,
            mem: Some(MemRef {
                addr,
                size,
                kind: MemAccessKind::Load,
            }),
            branch: None,
            component: Component::App,
        }
    }

    /// A store micro-op at the given resolved address.
    pub fn store(pc: u64, data: Option<Reg>, base: Option<Reg>, addr: u64, size: u64) -> DynInst {
        DynInst {
            pc,
            kind: OpKind::Store,
            srcs: [base, data],
            dst: None,
            mem: Some(MemRef {
                addr,
                size,
                kind: MemAccessKind::Store,
            }),
            branch: None,
            component: Component::App,
        }
    }

    /// An `arm` micro-op covering `width` bytes at `addr`.
    pub fn arm(pc: u64, base: Option<Reg>, addr: u64, width: u64) -> DynInst {
        DynInst {
            pc,
            kind: OpKind::Arm,
            srcs: [base, None],
            dst: None,
            mem: Some(MemRef {
                addr,
                size: width,
                kind: MemAccessKind::Arm,
            }),
            branch: None,
            component: Component::App,
        }
    }

    /// A `disarm` micro-op covering `width` bytes at `addr`.
    pub fn disarm(pc: u64, base: Option<Reg>, addr: u64, width: u64) -> DynInst {
        DynInst {
            pc,
            kind: OpKind::Disarm,
            srcs: [base, None],
            dst: None,
            mem: Some(MemRef {
                addr,
                size: width,
                kind: MemAccessKind::Disarm,
            }),
            branch: None,
            component: Component::App,
        }
    }

    /// A resolved branch micro-op.
    pub fn branch(pc: u64, srcs: [Option<Reg>; 2], dst: Option<Reg>, info: BranchInfo) -> DynInst {
        DynInst {
            pc,
            kind: OpKind::Branch,
            srcs,
            dst,
            mem: None,
            branch: Some(info),
            component: Component::App,
        }
    }

    /// Returns a copy attributed to `component`.
    pub fn with_component(mut self, component: Component) -> DynInst {
        self.component = component;
        self
    }

    /// Returns a copy with the execution class replaced (e.g. to mark a
    /// multiply or divide).
    pub fn with_kind(mut self, kind: OpKind) -> DynInst {
        self.kind = kind;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memref_overlap() {
        let a = MemRef {
            addr: 100,
            size: 8,
            kind: MemAccessKind::Load,
        };
        let b = MemRef {
            addr: 104,
            size: 8,
            kind: MemAccessKind::Store,
        };
        let c = MemRef {
            addr: 108,
            size: 4,
            kind: MemAccessKind::Store,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn memref_line_uses_64_byte_lines() {
        let m = MemRef {
            addr: 130,
            size: 4,
            kind: MemAccessKind::Load,
        };
        assert_eq!(m.line(), 2);
    }

    #[test]
    fn store_like_classification() {
        assert!(OpKind::Store.is_store_like());
        assert!(OpKind::Arm.is_store_like());
        assert!(OpKind::Disarm.is_store_like());
        assert!(!OpKind::Load.is_store_like());
        assert!(OpKind::Load.is_mem());
        assert!(!OpKind::IntAlu.is_mem());
    }

    #[test]
    fn builders_fill_expected_fields() {
        let ld = DynInst::load(0x40, Some(Reg::A0), Some(Reg::SP), 0x2000, 8);
        assert_eq!(ld.kind, OpKind::Load);
        assert_eq!(ld.mem.unwrap().addr, 0x2000);
        assert_eq!(ld.dst, Some(Reg::A0));
        assert_eq!(ld.component, Component::App);

        let arm = DynInst::arm(0x44, None, 0x3000, 64).with_component(Component::Allocator);
        assert_eq!(arm.kind, OpKind::Arm);
        assert_eq!(arm.mem.unwrap().size, 64);
        assert_eq!(arm.component, Component::Allocator);
    }
}
