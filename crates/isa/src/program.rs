use std::collections::HashMap;
use std::fmt;

use crate::dyninst::Component;
use crate::inst::{AluOp, BranchCond, EcallNum, Inst, MemSize};
use crate::reg::Reg;
use crate::PC_STEP;

/// A forward-referenceable code label produced by
/// [`ProgramBuilder::new_label`] and resolved by [`ProgramBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub(crate) u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".L{}", self.0)
    }
}

/// An executable guest program: resolved code plus initial data image.
///
/// Produced by [`ProgramBuilder::build`]. Code addresses start at
/// [`Program::CODE_BASE`] and step by [`PC_STEP`]; the label table has
/// been fully resolved so every branch target is a valid PC.
#[derive(Debug, Clone, Default)]
pub struct Program {
    code: Vec<Inst>,
    /// Per-instruction attribution (parallel to `code`).
    components: Vec<Component>,
    /// Resolved label PCs (indexed by label id), kept for diagnostics.
    label_pcs: Vec<u64>,
    /// Initial data segments: `(base address, bytes)`.
    data: Vec<(u64, Vec<u8>)>,
    /// Function-name annotations for disassembly: pc -> name.
    symbols: HashMap<u64, String>,
}

impl Program {
    /// Base virtual address of the code segment. Code lives in its own
    /// region well away from stack/heap/static data.
    pub const CODE_BASE: u64 = 0x1_0000;

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Entry PC of the program.
    pub fn entry(&self) -> u64 {
        Self::CODE_BASE
    }

    /// Fetches the instruction at `pc`, or `None` if `pc` falls outside
    /// the code segment or is misaligned.
    pub fn fetch(&self, pc: u64) -> Option<Inst> {
        if pc < Self::CODE_BASE || !(pc - Self::CODE_BASE).is_multiple_of(PC_STEP) {
            return None;
        }
        let idx = ((pc - Self::CODE_BASE) / PC_STEP) as usize;
        self.code.get(idx).copied()
    }

    /// PC of a resolved label.
    ///
    /// # Panics
    ///
    /// Panics if the label does not belong to this program.
    pub fn label_pc(&self, label: Label) -> u64 {
        self.label_pcs[label.0 as usize]
    }

    /// Initial data segments as `(base address, bytes)` pairs.
    pub fn data_segments(&self) -> &[(u64, Vec<u8>)] {
        &self.data
    }

    /// The instruction slice (for analysis and disassembly).
    pub fn instructions(&self) -> &[Inst] {
        &self.code
    }

    /// Attribution of the instruction at `pc` for the Figure 3
    /// breakdown; [`Component::App`] for PCs outside the code segment.
    pub fn component_at(&self, pc: u64) -> Component {
        if pc < Self::CODE_BASE || !(pc - Self::CODE_BASE).is_multiple_of(PC_STEP) {
            return Component::App;
        }
        let idx = ((pc - Self::CODE_BASE) / PC_STEP) as usize;
        self.components.get(idx).copied().unwrap_or(Component::App)
    }

    /// Function-name annotation at `pc`, if any.
    pub fn symbol_at(&self, pc: u64) -> Option<&str> {
        self.symbols.get(&pc).map(String::as_str)
    }

    /// Renders a human-readable disassembly listing.
    pub fn disassemble(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (i, inst) in self.code.iter().enumerate() {
            let pc = Self::CODE_BASE + i as u64 * PC_STEP;
            if let Some(sym) = self.symbol_at(pc) {
                let _ = writeln!(out, "{sym}:");
            }
            let _ = writeln!(out, "  {pc:#08x}: {inst}");
        }
        out
    }
}

/// Label-based assembler DSL for constructing [`Program`]s.
///
/// All workload generators, attack scenarios, and instrumentation passes
/// build guest code through this type. Each mnemonic method appends one
/// instruction; [`ProgramBuilder::build`] resolves labels and returns the
/// executable program.
///
/// # Example
///
/// ```
/// use rest_isa::{ProgramBuilder, Reg};
///
/// let mut p = ProgramBuilder::new();
/// let done = p.new_label();
/// p.li(Reg::A0, 1);
/// p.beq(Reg::A0, Reg::ZERO, done); // not taken
/// p.addi(Reg::A0, Reg::A0, 41);
/// p.bind(done);
/// p.halt();
/// let prog = p.build();
/// assert_eq!(prog.len(), 4);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    code: Vec<Inst>,
    components: Vec<Component>,
    current_component: Component,
    labels: Vec<Option<u64>>, // label id -> resolved pc
    data: Vec<(u64, Vec<u8>)>,
    symbols: HashMap<u64, String>,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        ProgramBuilder {
            code: Vec::new(),
            components: Vec::new(),
            current_component: Component::App,
            labels: Vec::new(),
            data: Vec::new(),
            symbols: HashMap::new(),
        }
    }
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Sets the [`Component`] attributed to subsequently appended
    /// instructions. Instrumentation passes switch this around the code
    /// they inject so the Figure 3 breakdown can tell hardening overhead
    /// from application work.
    pub fn set_component(&mut self, component: Component) -> &mut Self {
        self.current_component = component;
        self
    }

    /// The component currently attributed to appended instructions.
    pub fn current_component(&self) -> Component {
        self.current_component
    }

    /// Instructions appended so far (for passes that inspect or count
    /// what they emitted).
    pub fn instructions(&self) -> &[Inst] {
        &self.code
    }

    /// PC that the next appended instruction will occupy.
    pub fn here(&self) -> u64 {
        Program::CODE_BASE + self.code.len() as u64 * PC_STEP
    }

    /// Number of instructions appended so far.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether no instructions have been appended.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() as u32 - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (each label may be bound once).
    pub fn bind(&mut self, label: Label) {
        let pc = self.here();
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label {label} bound twice");
        *slot = Some(pc);
    }

    /// Convenience: allocates a label and binds it here.
    pub fn label_here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Records a function-name annotation at the current position.
    pub fn symbol(&mut self, name: impl Into<String>) {
        self.symbols.insert(self.here(), name.into());
    }

    /// Adds an initial data segment at `base`.
    pub fn data_segment(&mut self, base: u64, bytes: impl Into<Vec<u8>>) {
        self.data.push((base, bytes.into()));
    }

    /// Appends a raw instruction attributed to the current component.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.code.push(inst);
        self.components.push(self.current_component);
        self
    }

    // --- ALU register-register ---

    pub fn add(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Add,
            dst,
            src1,
            src2,
        })
    }

    pub fn sub(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Sub,
            dst,
            src1,
            src2,
        })
    }

    pub fn mul(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Mul,
            dst,
            src1,
            src2,
        })
    }

    pub fn div(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Div,
            dst,
            src1,
            src2,
        })
    }

    pub fn rem(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Rem,
            dst,
            src1,
            src2,
        })
    }

    pub fn and(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::And,
            dst,
            src1,
            src2,
        })
    }

    pub fn or(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Or,
            dst,
            src1,
            src2,
        })
    }

    pub fn xor(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Xor,
            dst,
            src1,
            src2,
        })
    }

    pub fn sll(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Sll,
            dst,
            src1,
            src2,
        })
    }

    pub fn srl(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Srl,
            dst,
            src1,
            src2,
        })
    }

    pub fn slt(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Slt,
            dst,
            src1,
            src2,
        })
    }

    // --- ALU immediate ---

    pub fn addi(&mut self, dst: Reg, src: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluImm {
            op: AluOp::Add,
            dst,
            src,
            imm,
        })
    }

    pub fn andi(&mut self, dst: Reg, src: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluImm {
            op: AluOp::And,
            dst,
            src,
            imm,
        })
    }

    pub fn ori(&mut self, dst: Reg, src: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluImm {
            op: AluOp::Or,
            dst,
            src,
            imm,
        })
    }

    pub fn xori(&mut self, dst: Reg, src: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluImm {
            op: AluOp::Xor,
            dst,
            src,
            imm,
        })
    }

    pub fn slli(&mut self, dst: Reg, src: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluImm {
            op: AluOp::Sll,
            dst,
            src,
            imm,
        })
    }

    pub fn srli(&mut self, dst: Reg, src: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluImm {
            op: AluOp::Srl,
            dst,
            src,
            imm,
        })
    }

    pub fn muli(&mut self, dst: Reg, src: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluImm {
            op: AluOp::Mul,
            dst,
            src,
            imm,
        })
    }

    pub fn slti(&mut self, dst: Reg, src: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluImm {
            op: AluOp::Slt,
            dst,
            src,
            imm,
        })
    }

    /// `dst = imm` (64-bit immediate load).
    pub fn li(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.push(Inst::Li { dst, imm })
    }

    /// Register move: `dst = src`.
    pub fn mv(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.addi(dst, src, 0)
    }

    // --- Memory ---

    /// Unsigned load of `size` bytes.
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i64, size: MemSize) -> &mut Self {
        self.push(Inst::Load {
            dst,
            base,
            offset,
            size,
            signed: false,
        })
    }

    /// Signed load of `size` bytes.
    pub fn load_signed(&mut self, dst: Reg, base: Reg, offset: i64, size: MemSize) -> &mut Self {
        self.push(Inst::Load {
            dst,
            base,
            offset,
            size,
            signed: true,
        })
    }

    /// 8-byte load.
    pub fn ld(&mut self, dst: Reg, base: Reg, offset: i64) -> &mut Self {
        self.load(dst, base, offset, MemSize::B8)
    }

    /// 1-byte load.
    pub fn lb(&mut self, dst: Reg, base: Reg, offset: i64) -> &mut Self {
        self.load(dst, base, offset, MemSize::B1)
    }

    /// Store of `size` bytes.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64, size: MemSize) -> &mut Self {
        self.push(Inst::Store {
            src,
            base,
            offset,
            size,
        })
    }

    /// 8-byte store.
    pub fn sd(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.store(src, base, offset, MemSize::B8)
    }

    /// 1-byte store.
    pub fn sb(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.store(src, base, offset, MemSize::B1)
    }

    // --- Control flow ---

    pub fn branch(&mut self, cond: BranchCond, src1: Reg, src2: Reg, target: Label) -> &mut Self {
        self.push(Inst::Branch {
            cond,
            src1,
            src2,
            target,
        })
    }

    pub fn beq(&mut self, a: Reg, b: Reg, t: Label) -> &mut Self {
        self.branch(BranchCond::Eq, a, b, t)
    }

    pub fn bne(&mut self, a: Reg, b: Reg, t: Label) -> &mut Self {
        self.branch(BranchCond::Ne, a, b, t)
    }

    pub fn blt(&mut self, a: Reg, b: Reg, t: Label) -> &mut Self {
        self.branch(BranchCond::Lt, a, b, t)
    }

    pub fn bge(&mut self, a: Reg, b: Reg, t: Label) -> &mut Self {
        self.branch(BranchCond::Ge, a, b, t)
    }

    pub fn bltu(&mut self, a: Reg, b: Reg, t: Label) -> &mut Self {
        self.branch(BranchCond::Ltu, a, b, t)
    }

    pub fn bgeu(&mut self, a: Reg, b: Reg, t: Label) -> &mut Self {
        self.branch(BranchCond::Geu, a, b, t)
    }

    /// Unconditional jump (discarding the link).
    pub fn j(&mut self, target: Label) -> &mut Self {
        self.push(Inst::Jal {
            dst: Reg::ZERO,
            target,
        })
    }

    /// Call: `ra = pc + 4; pc = target`.
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.push(Inst::Jal {
            dst: Reg::RA,
            target,
        })
    }

    /// Return: `pc = ra`.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Inst::Jalr {
            dst: Reg::ZERO,
            base: Reg::RA,
            offset: 0,
        })
    }

    /// Indirect jump-and-link.
    pub fn jalr(&mut self, dst: Reg, base: Reg, offset: i64) -> &mut Self {
        self.push(Inst::Jalr { dst, base, offset })
    }

    // --- REST and system ---

    /// REST `arm` of the address in `addr`.
    pub fn arm(&mut self, addr: Reg) -> &mut Self {
        self.push(Inst::Arm { addr })
    }

    /// REST `disarm` of the address in `addr`.
    pub fn disarm(&mut self, addr: Reg) -> &mut Self {
        self.push(Inst::Disarm { addr })
    }

    /// Raw `ecall` (service number must already be in `a7`).
    pub fn ecall_raw(&mut self) -> &mut Self {
        self.push(Inst::Ecall)
    }

    /// Loads `num` into `a7` and issues `ecall`.
    pub fn ecall(&mut self, num: EcallNum) -> &mut Self {
        self.li(Reg::A7, num as u64 as i64);
        self.ecall_raw()
    }

    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::Halt)
    }

    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::Nop)
    }

    /// Resolves all labels and produces the executable [`Program`].
    ///
    /// # Panics
    ///
    /// Panics if any label referenced by a branch or jump was never bound.
    pub fn build(self) -> Program {
        let label_pcs: Vec<u64> = self
            .labels
            .iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("label .L{i} never bound")))
            .collect();
        // Validate that every referenced label is bound (the map above
        // already panics for unbound ones that exist; also catch targets
        // referring to labels from another builder).
        for inst in &self.code {
            let target = match *inst {
                Inst::Branch { target, .. } | Inst::Jal { target, .. } => Some(target),
                _ => None,
            };
            if let Some(t) = target {
                assert!(
                    (t.0 as usize) < label_pcs.len(),
                    "instruction references foreign label {t}"
                );
            }
        }
        Program {
            code: self.code,
            components: self.components,
            label_pcs,
            data: self.data,
            symbols: self.symbols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut p = ProgramBuilder::new();
        let back = p.label_here();
        p.nop();
        let fwd = p.new_label();
        p.beq(Reg::ZERO, Reg::ZERO, fwd);
        p.j(back);
        p.bind(fwd);
        p.halt();
        let prog = p.build();
        assert_eq!(prog.label_pc(back), Program::CODE_BASE);
        assert_eq!(prog.label_pc(fwd), Program::CODE_BASE + 3 * PC_STEP);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut p = ProgramBuilder::new();
        let l = p.new_label();
        p.j(l);
        let _ = p.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut p = ProgramBuilder::new();
        let l = p.new_label();
        p.bind(l);
        p.nop();
        p.bind(l);
    }

    #[test]
    fn fetch_respects_code_bounds_and_alignment() {
        let mut p = ProgramBuilder::new();
        p.nop();
        p.halt();
        let prog = p.build();
        assert_eq!(prog.fetch(Program::CODE_BASE), Some(Inst::Nop));
        assert_eq!(prog.fetch(Program::CODE_BASE + PC_STEP), Some(Inst::Halt));
        assert_eq!(prog.fetch(Program::CODE_BASE + 2 * PC_STEP), None);
        assert_eq!(prog.fetch(Program::CODE_BASE + 1), None);
        assert_eq!(prog.fetch(0), None);
    }

    #[test]
    fn disassembly_contains_symbols_and_mnemonics() {
        let mut p = ProgramBuilder::new();
        p.symbol("main");
        p.li(Reg::A0, 7);
        p.arm(Reg::A0);
        p.halt();
        let prog = p.build();
        let dis = prog.disassemble();
        assert!(dis.contains("main:"), "{dis}");
        assert!(dis.contains("li a0, 7"), "{dis}");
        assert!(dis.contains("arm a0"), "{dis}");
    }

    #[test]
    fn data_segments_are_preserved() {
        let mut p = ProgramBuilder::new();
        p.data_segment(0x8000, vec![1, 2, 3]);
        p.halt();
        let prog = p.build();
        assert_eq!(prog.data_segments(), &[(0x8000, vec![1, 2, 3])]);
    }
}
