//! The REST primitive (ISCA 2018).
//!
//! REST — *Random Embedded Secret Tokens* — blacklists memory by storing
//! a very large random value (a [`Token`]) directly in the locations to
//! be protected. The hardware contribution is tiny: one metadata bit per
//! L1 data-cache line and a comparator in the fill path. When a line is
//! filled into the L1-D, its content is compared against the token value;
//! on a match the line's token bit is set, and any regular access to a
//! marked line raises a privileged [`RestException`].
//!
//! This crate holds everything about the primitive that is independent of
//! a particular pipeline or cache implementation:
//!
//! * [`Token`] / [`TokenWidth`] — token values of 16, 32 or 64 bytes and
//!   content-based detection over cache-line bytes,
//! * [`TokenRegister`] — the privileged token-configuration register
//!   (token value + operating-mode bit),
//! * [`Mode`] — `Secure` (imprecise exceptions, deployment) vs. `Debug`
//!   (precise exceptions, development),
//! * [`RestException`] — the new privileged exception class,
//! * [`table1`] — the paper's Table I (cache/LSQ action matrix) as an
//!   executable specification that the simulator crates test against,
//! * [`policy`] — system-level token management (per-boot rotation,
//!   per-process tokens).
//!
//! # Example
//!
//! ```
//! use rest_core::{Token, TokenWidth};
//!
//! let token = Token::generate(TokenWidth::B64, &mut rand::thread_rng());
//! let line = [0u8; 64];
//! assert!(token.match_offsets_in_line(&line).is_empty());
//! let mut armed = [0u8; 64];
//! armed.copy_from_slice(token.bytes_padded());
//! assert_eq!(token.match_offsets_in_line(&armed), vec![0]);
//! ```

#![forbid(unsafe_code)]

mod armed;
pub mod backend;
pub mod elide;
mod exception;
mod mode;
pub mod policy;
pub mod sites;
pub mod table1;
mod token;

pub use armed::ArmedSet;
pub use backend::{
    BackendFault, CheckUopKind, DetectTiming, MteBackend, MteMode, NullBackend, PacBackend,
    PacFault, ProtectionBackend, RestBackend, TagFault, TAG_GRANULE,
};
pub use elide::{ElideClass, ElisionMap};
pub use sites::{SiteCounters, SiteTable};
pub use exception::{RestException, RestExceptionKind};
pub use mode::{Mode, Privilege, PrivilegeError};
pub use token::{Token, TokenRegister, TokenWidth};

/// Cache-line size in bytes (64 B throughout the paper's system).
pub const LINE_BYTES: usize = 64;
