use std::error::Error;
use std::fmt;

/// Why a REST exception was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RestExceptionKind {
    /// A regular load touched a line whose token bit is set.
    TokenLoad,
    /// A regular store touched a line whose token bit is set.
    TokenStore,
    /// A `disarm` targeted a location that does not currently hold a
    /// token. This is what defeats brute-force disarming of memory the
    /// attacker cannot see (§V-C).
    DisarmUnarmed,
    /// An `arm` address was not aligned to the token width (precise
    /// *invalid REST instruction* exception, §III-A).
    MisalignedArm,
    /// A `disarm` address was not aligned to the token width (precise
    /// *invalid REST instruction* exception, §III-A).
    MisalignedDisarm,
    /// A load would have forwarded its value from an in-flight `arm` in
    /// the store queue, which would leak the secret token (§III-B).
    ForwardFromArm,
    /// A store in the LSQ hit an in-flight `arm` to the same location.
    StoreHitInflightArm,
    /// A `disarm` found another in-flight `disarm` to the same location
    /// in the store queue (double disarm).
    DoubleInflightDisarm,
}

impl RestExceptionKind {
    /// Whether this exception is always reported precisely regardless of
    /// operating mode (the invalid-instruction forms are; token-access
    /// forms are precise only in debug mode).
    pub fn always_precise(self) -> bool {
        matches!(
            self,
            RestExceptionKind::MisalignedArm | RestExceptionKind::MisalignedDisarm
        )
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            RestExceptionKind::TokenLoad => "token-load",
            RestExceptionKind::TokenStore => "token-store",
            RestExceptionKind::DisarmUnarmed => "disarm-unarmed",
            RestExceptionKind::MisalignedArm => "misaligned-arm",
            RestExceptionKind::MisalignedDisarm => "misaligned-disarm",
            RestExceptionKind::ForwardFromArm => "forward-from-arm",
            RestExceptionKind::StoreHitInflightArm => "store-hit-inflight-arm",
            RestExceptionKind::DoubleInflightDisarm => "double-inflight-disarm",
        }
    }
}

impl fmt::Display for RestExceptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A privileged REST exception.
///
/// Handled by the next higher privilege level; unmaskable from the
/// faulting level. The faulting address is delivered in an existing
/// register (modelled by the `addr` field). In [`crate::Mode::Secure`]
/// the report may be imprecise (`precise == false`): the program may have
/// committed instructions past the faulting one by the time the exception
/// is delivered, which is acceptable for deployment-time monitoring where
/// the user needs to know *that* a violation occurred, not the exact
/// machine state when it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestException {
    /// Classification of the violation.
    pub kind: RestExceptionKind,
    /// Faulting data address.
    pub addr: u64,
    /// PC of the faulting instruction.
    pub pc: u64,
    /// Whether architectural state at delivery equals the state at the
    /// faulting instruction.
    pub precise: bool,
}

impl RestException {
    /// Creates an exception record.
    pub fn new(kind: RestExceptionKind, addr: u64, pc: u64, precise: bool) -> RestException {
        RestException {
            kind,
            addr,
            pc,
            precise,
        }
    }
}

impl fmt::Display for RestException {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "REST exception: {} at addr {:#x} (pc {:#x}, {})",
            self.kind,
            self.addr,
            self.pc,
            if self.precise { "precise" } else { "imprecise" }
        )
    }
}

impl Error for RestException {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_instruction_forms_are_always_precise() {
        assert!(RestExceptionKind::MisalignedArm.always_precise());
        assert!(RestExceptionKind::MisalignedDisarm.always_precise());
        assert!(!RestExceptionKind::TokenLoad.always_precise());
        assert!(!RestExceptionKind::DisarmUnarmed.always_precise());
    }

    #[test]
    fn display_contains_kind_addr_pc() {
        let e = RestException::new(RestExceptionKind::TokenLoad, 0x1000, 0x40, false);
        let s = e.to_string();
        assert!(s.contains("token-load"), "{s}");
        assert!(s.contains("0x1000"), "{s}");
        assert!(s.contains("0x40"), "{s}");
        assert!(s.contains("imprecise"), "{s}");
    }

    #[test]
    fn names_are_unique() {
        use std::collections::HashSet;
        let kinds = [
            RestExceptionKind::TokenLoad,
            RestExceptionKind::TokenStore,
            RestExceptionKind::DisarmUnarmed,
            RestExceptionKind::MisalignedArm,
            RestExceptionKind::MisalignedDisarm,
            RestExceptionKind::ForwardFromArm,
            RestExceptionKind::StoreHitInflightArm,
            RestExceptionKind::DoubleInflightDisarm,
        ];
        let names: HashSet<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }
}
