use std::fmt;

use rand::Rng;

use crate::mode::{Mode, Privilege, PrivilegeError};
use crate::LINE_BYTES;

/// Width of a REST token.
///
/// The paper's default is a full cache line (64 B = 512 bits), giving a
/// false-positive probability below 2⁻⁵¹². Narrower 32 B and 16 B tokens
/// are supported for finer-grained blacklisting (§III-B "Modifying Token
/// Width", evaluated in Figure 8); they raise the number of token bits
/// per L1-D line to 2 and 4 respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TokenWidth {
    /// 16-byte (128-bit) tokens: 4 token bits per 64 B line.
    B16,
    /// 32-byte (256-bit) tokens: 2 token bits per 64 B line.
    B32,
    /// 64-byte (512-bit) tokens: 1 token bit per 64 B line (the default).
    B64,
}

impl TokenWidth {
    /// Token width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            TokenWidth::B16 => 16,
            TokenWidth::B32 => 32,
            TokenWidth::B64 => 64,
        }
    }

    /// Number of token-aligned slots (and therefore token metadata bits)
    /// in one 64-byte cache line.
    pub fn slots_per_line(self) -> usize {
        LINE_BYTES / self.bytes() as usize
    }

    /// Whether `addr` satisfies the token alignment requirement.
    pub fn is_aligned(self, addr: u64) -> bool {
        addr.is_multiple_of(self.bytes())
    }

    /// Rounds `len` up to a whole number of tokens.
    pub fn round_up(self, len: u64) -> u64 {
        len.div_ceil(self.bytes()) * self.bytes()
    }

    /// All supported widths, narrowest first.
    pub const ALL: [TokenWidth; 3] = [TokenWidth::B16, TokenWidth::B32, TokenWidth::B64];
}

impl fmt::Display for TokenWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

/// A REST token value: `width` bytes of cryptographically-random data.
///
/// Detection is *content-based*: a memory location is armed exactly when
/// its bytes equal the token value, so no out-of-band metadata ever needs
/// to be fetched. [`Token::match_offsets_in_line`] is the comparator the
/// L1-D fill path implements.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Token {
    width: TokenWidth,
    /// Token value, padded with zeroes beyond `width` bytes.
    bytes: [u8; LINE_BYTES],
}

impl Token {
    /// Generates a fresh random token of the given width.
    pub fn generate<R: Rng + ?Sized>(width: TokenWidth, rng: &mut R) -> Token {
        let mut bytes = [0u8; LINE_BYTES];
        rng.fill(&mut bytes[..width.bytes() as usize]);
        // An all-zero token would collide with ordinary zeroed memory;
        // the probability is 2^-128 at minimum but regenerating is free.
        if bytes[..width.bytes() as usize].iter().all(|&b| b == 0) {
            bytes[0] = 1;
        }
        Token { width, bytes }
    }

    /// Builds a token from explicit bytes (used by tests and by the
    /// privileged memory-mapped store sequence that sets the value).
    ///
    /// # Panics
    ///
    /// Panics if `value.len()` does not equal the width.
    pub fn from_bytes(width: TokenWidth, value: &[u8]) -> Token {
        assert_eq!(
            value.len(),
            width.bytes() as usize,
            "token value length must equal token width"
        );
        let mut bytes = [0u8; LINE_BYTES];
        bytes[..value.len()].copy_from_slice(value);
        Token { width, bytes }
    }

    /// The token's width.
    pub fn width(&self) -> TokenWidth {
        self.width
    }

    /// The token value (exactly `width` bytes).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes[..self.width.bytes() as usize]
    }

    /// The token value padded with zeroes to a full cache line. With the
    /// default 64 B width this *is* the line image an armed line holds.
    pub fn bytes_padded(&self) -> &[u8; LINE_BYTES] {
        &self.bytes
    }

    /// Whether the `width` bytes at the start of `slot` equal the token.
    pub fn matches_slot(&self, slot: &[u8]) -> bool {
        slot.len() >= self.width.bytes() as usize && slot[..self.width.bytes() as usize] == *self.bytes()
    }

    /// The fill-path comparator: scans a 64-byte line and returns the
    /// byte offsets of every token-aligned slot whose content equals the
    /// token value. One returned offset per token bit that must be set.
    pub fn match_offsets_in_line(&self, line: &[u8; LINE_BYTES]) -> Vec<usize> {
        let w = self.width.bytes() as usize;
        (0..self.width.slots_per_line())
            .filter(|&slot| line[slot * w..(slot + 1) * w] == *self.bytes())
            .map(|slot| slot * w)
            .collect()
    }

    /// The fill-path comparator as the hardware implements it: one pass
    /// over a 64-byte line producing the per-slot token bit mask (bit
    /// *i* set when token-aligned slot *i* equals the token value).
    /// Allocation-free equivalent of [`Token::match_offsets_in_line`];
    /// this is what runs on every L1-D fill.
    pub fn line_token_mask(&self, line: &[u8; LINE_BYTES]) -> u8 {
        let w = self.width.bytes() as usize;
        let mut mask = 0u8;
        for slot in 0..self.width.slots_per_line() {
            if line[slot * w..(slot + 1) * w] == *self.bytes() {
                mask |= 1u8 << slot;
            }
        }
        mask
    }

    /// Whether any aligned slot of `line` holds the token.
    pub fn line_contains_token(&self, line: &[u8; LINE_BYTES]) -> bool {
        self.line_token_mask(line) != 0
    }
}

impl fmt::Debug for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the full secret; show width and a short prefix so
        // Debug output is non-empty but the value stays unguessable.
        write!(
            f,
            "Token({}, {:02x}{:02x}..)",
            self.width, self.bytes[0], self.bytes[1]
        )
    }
}

/// The token-configuration register (§III-A).
///
/// Holds the system token value and the operating-mode bit. It is not
/// directly accessible to user-level code: the value is set through
/// privileged memory-mapped stores, and both mutators here therefore
/// demand [`Privilege::Supervisor`].
///
/// # Example
///
/// ```
/// use rest_core::{Mode, Privilege, Token, TokenRegister, TokenWidth};
///
/// let token = Token::generate(TokenWidth::B64, &mut rand::thread_rng());
/// let mut reg = TokenRegister::new(token.clone(), Mode::Secure);
/// assert!(reg.set_token(Privilege::User, token.clone()).is_err());
/// assert!(reg.set_token(Privilege::Supervisor, token).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct TokenRegister {
    token: Token,
    mode: Mode,
}

impl TokenRegister {
    /// Creates a register holding `token` in `mode`.
    pub fn new(token: Token, mode: Mode) -> TokenRegister {
        TokenRegister { token, mode }
    }

    /// The current token value. Reading the register contents is a
    /// hardware-internal operation (the comparator's input); guest code
    /// has no instruction that reaches it.
    pub fn token(&self) -> &Token {
        &self.token
    }

    /// Current operating mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Replaces the token value (e.g. per-boot rotation).
    ///
    /// # Errors
    ///
    /// Returns [`PrivilegeError`] unless called at supervisor privilege.
    pub fn set_token(&mut self, privilege: Privilege, token: Token) -> Result<(), PrivilegeError> {
        privilege.require_supervisor()?;
        self.token = token;
        Ok(())
    }

    /// Sets the operating-mode bit.
    ///
    /// # Errors
    ///
    /// Returns [`PrivilegeError`] unless called at supervisor privilege.
    pub fn set_mode(&mut self, privilege: Privilege, mode: Mode) -> Result<(), PrivilegeError> {
        privilege.require_supervisor()?;
        self.mode = mode;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::mock::StepRng;
    use rand::SeedableRng;

    fn token64() -> Token {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        Token::generate(TokenWidth::B64, &mut rng)
    }

    #[test]
    fn width_properties() {
        assert_eq!(TokenWidth::B16.bytes(), 16);
        assert_eq!(TokenWidth::B16.slots_per_line(), 4);
        assert_eq!(TokenWidth::B32.slots_per_line(), 2);
        assert_eq!(TokenWidth::B64.slots_per_line(), 1);
        assert!(TokenWidth::B32.is_aligned(64));
        assert!(TokenWidth::B32.is_aligned(32));
        assert!(!TokenWidth::B32.is_aligned(16));
        assert_eq!(TokenWidth::B64.round_up(1), 64);
        assert_eq!(TokenWidth::B64.round_up(64), 64);
        assert_eq!(TokenWidth::B16.round_up(17), 32);
        assert_eq!(TokenWidth::B16.round_up(0), 0);
    }

    #[test]
    fn generated_token_is_never_all_zero() {
        // StepRng with increment 0 yields all-zero fills, hitting the
        // regeneration guard.
        let mut rng = StepRng::new(0, 0);
        let t = Token::generate(TokenWidth::B16, &mut rng);
        assert!(t.bytes().iter().any(|&b| b != 0));
    }

    #[test]
    fn full_line_token_matches_only_exact_content() {
        let t = token64();
        let mut line = [0u8; LINE_BYTES];
        assert!(!t.line_contains_token(&line));
        line.copy_from_slice(t.bytes_padded());
        assert_eq!(t.match_offsets_in_line(&line), vec![0]);
        line[63] ^= 1;
        assert!(!t.line_contains_token(&line));
    }

    #[test]
    fn narrow_tokens_match_per_slot() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let t = Token::generate(TokenWidth::B16, &mut rng);
        let mut line = [0u8; LINE_BYTES];
        line[16..32].copy_from_slice(t.bytes());
        line[48..64].copy_from_slice(t.bytes());
        assert_eq!(t.match_offsets_in_line(&line), vec![16, 48]);
        assert_eq!(t.line_token_mask(&line), 0b1010);
        // Token content at an unaligned offset is NOT detected — condition
        // (2) of §V-B requires alignment.
        let mut line2 = [0u8; LINE_BYTES];
        line2[8..24].copy_from_slice(t.bytes());
        assert!(t.match_offsets_in_line(&line2).is_empty());
        assert_eq!(t.line_token_mask(&line2), 0);
    }

    #[test]
    fn line_token_mask_agrees_with_match_offsets() {
        for width in TokenWidth::ALL {
            let mut rng = rand::rngs::StdRng::seed_from_u64(11);
            let t = Token::generate(width, &mut rng);
            let w = width.bytes() as usize;
            // Every subset of armed slots produces the matching bit mask.
            for pattern in 0u8..(1 << width.slots_per_line()) {
                let mut line = [0u8; LINE_BYTES];
                for slot in 0..width.slots_per_line() {
                    if pattern & (1 << slot) != 0 {
                        line[slot * w..(slot + 1) * w].copy_from_slice(t.bytes());
                    }
                }
                assert_eq!(t.line_token_mask(&line), pattern);
                let offsets: Vec<usize> = t.match_offsets_in_line(&line);
                let from_offsets = offsets
                    .iter()
                    .fold(0u8, |m, off| m | 1 << (off / w));
                assert_eq!(from_offsets, pattern);
            }
        }
    }

    #[test]
    fn matches_slot_requires_full_width() {
        let t = token64();
        assert!(t.matches_slot(t.bytes_padded()));
        assert!(!t.matches_slot(&t.bytes()[..32]));
    }

    #[test]
    fn register_enforces_privilege() {
        let t = token64();
        let mut reg = TokenRegister::new(t.clone(), Mode::Secure);
        assert_eq!(reg.mode(), Mode::Secure);
        assert!(reg.set_mode(Privilege::User, Mode::Debug).is_err());
        assert_eq!(reg.mode(), Mode::Secure);
        reg.set_mode(Privilege::Supervisor, Mode::Debug).unwrap();
        assert_eq!(reg.mode(), Mode::Debug);

        let t2 = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(8);
            Token::generate(TokenWidth::B64, &mut rng)
        };
        assert!(reg.set_token(Privilege::User, t2.clone()).is_err());
        reg.set_token(Privilege::Supervisor, t2.clone()).unwrap();
        assert_eq!(reg.token(), &t2);
    }

    #[test]
    fn debug_output_hides_secret() {
        let t = token64();
        let s = format!("{t:?}");
        assert!(s.len() < 30, "debug output leaks too much: {s}");
        assert!(s.starts_with("Token(64B"));
    }

    #[test]
    fn from_bytes_round_trips() {
        let value = [0xabu8; 32];
        let t = Token::from_bytes(TokenWidth::B32, &value);
        assert_eq!(t.bytes(), &value);
        assert_eq!(t.width(), TokenWidth::B32);
    }

    #[test]
    #[should_panic(expected = "length must equal")]
    fn from_bytes_rejects_wrong_length() {
        let _ = Token::from_bytes(TokenWidth::B32, &[0u8; 16]);
    }
}
