//! System-level token management (§IV-B).
//!
//! The paper proposes two deployment models: a single system-wide token
//! rotated periodically (e.g. at reboot), which needs no OS changes and
//! works for legacy binaries; or a token per process, which the OS swaps
//! on context switches. Both are modelled here so the system-level
//! trade-offs can be exercised in tests.

use std::collections::HashMap;

use rand::Rng;

use crate::token::{Token, TokenWidth};

/// Identifier of a simulated process.
pub type Pid = u32;

/// Single system-wide token, rotated on demand (e.g. per boot).
///
/// # Example
///
/// ```
/// use rest_core::policy::SystemTokenPolicy;
/// use rest_core::TokenWidth;
///
/// let mut policy = SystemTokenPolicy::new(TokenWidth::B64, &mut rand::thread_rng());
/// let before = policy.token().clone();
/// policy.rotate(&mut rand::thread_rng());
/// assert_ne!(policy.token(), &before);
/// assert_eq!(policy.rotations(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SystemTokenPolicy {
    token: Token,
    rotations: u64,
}

impl SystemTokenPolicy {
    /// Creates the policy with a freshly generated token.
    pub fn new<R: Rng + ?Sized>(width: TokenWidth, rng: &mut R) -> SystemTokenPolicy {
        SystemTokenPolicy {
            token: Token::generate(width, rng),
            rotations: 0,
        }
    }

    /// The current system token.
    pub fn token(&self) -> &Token {
        &self.token
    }

    /// Rotates the token (models a reboot-time refresh). The REST heap
    /// design allows this without recompiling protected programs, because
    /// no token value is ever baked into program text.
    pub fn rotate<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.token = Token::generate(self.token.width(), rng);
        self.rotations += 1;
    }

    /// Number of rotations performed.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }
}

/// Per-process tokens maintained by the OS across context switches.
///
/// Requires OS support: token generation at process creation and swap of
/// the token-configuration register on context switch. Cloned processes
/// inherit the parent token so shared pages keep a consistent meaning.
#[derive(Debug, Clone, Default)]
pub struct PerProcessTokenPolicy {
    tokens: HashMap<Pid, Token>,
    /// Currently loaded process, if any.
    current: Option<Pid>,
    context_switches: u64,
}

impl PerProcessTokenPolicy {
    /// Creates an empty policy.
    pub fn new() -> PerProcessTokenPolicy {
        PerProcessTokenPolicy::default()
    }

    /// Registers a new process with a fresh token.
    pub fn spawn<R: Rng + ?Sized>(&mut self, pid: Pid, width: TokenWidth, rng: &mut R) {
        self.tokens.insert(pid, Token::generate(width, rng));
    }

    /// Clones `parent` into `child`, inheriting the parent's token (so
    /// copy-on-write pages containing tokens stay armed for both).
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not registered.
    pub fn clone_process(&mut self, parent: Pid, child: Pid) {
        let t = self.tokens[&parent].clone();
        self.tokens.insert(child, t);
    }

    /// Context-switches to `pid`, returning the token that must be loaded
    /// into the token-configuration register, or `None` for unknown pids.
    pub fn switch_to(&mut self, pid: Pid) -> Option<&Token> {
        if self.tokens.contains_key(&pid) {
            self.current = Some(pid);
            self.context_switches += 1;
            self.tokens.get(&pid)
        } else {
            None
        }
    }

    /// Token of `pid`, if registered.
    pub fn token_of(&self, pid: Pid) -> Option<&Token> {
        self.tokens.get(&pid)
    }

    /// Currently loaded process.
    pub fn current(&self) -> Option<Pid> {
        self.current
    }

    /// Removes a terminated process.
    pub fn reap(&mut self, pid: Pid) {
        self.tokens.remove(&pid);
        if self.current == Some(pid) {
            self.current = None;
        }
    }

    /// Number of context switches served.
    pub fn context_switches(&self) -> u64 {
        self.context_switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rotation_changes_token_and_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = SystemTokenPolicy::new(TokenWidth::B64, &mut rng);
        let t0 = p.token().clone();
        p.rotate(&mut rng);
        assert_ne!(p.token(), &t0);
        p.rotate(&mut rng);
        assert_eq!(p.rotations(), 2);
        assert_eq!(p.token().width(), TokenWidth::B64);
    }

    #[test]
    fn per_process_tokens_are_distinct_and_switchable() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = PerProcessTokenPolicy::new();
        p.spawn(1, TokenWidth::B64, &mut rng);
        p.spawn(2, TokenWidth::B64, &mut rng);
        assert_ne!(p.token_of(1), p.token_of(2));

        assert!(p.switch_to(1).is_some());
        assert_eq!(p.current(), Some(1));
        assert!(p.switch_to(3).is_none());
        assert_eq!(p.current(), Some(1));
        assert_eq!(p.context_switches(), 1);
    }

    #[test]
    fn cloned_processes_share_the_token() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = PerProcessTokenPolicy::new();
        p.spawn(1, TokenWidth::B32, &mut rng);
        p.clone_process(1, 7);
        assert_eq!(p.token_of(1), p.token_of(7));
    }

    #[test]
    fn reap_clears_current() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = PerProcessTokenPolicy::new();
        p.spawn(5, TokenWidth::B64, &mut rng);
        p.switch_to(5);
        p.reap(5);
        assert_eq!(p.current(), None);
        assert!(p.token_of(5).is_none());
    }
}
