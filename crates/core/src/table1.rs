//! Executable specification of the paper's **Table I**: the actions taken
//! by the LSQ and the L1-D cache for every REST-relevant operation, split
//! by cache hit/miss.
//!
//! The timing simulator (`rest-cpu`, `rest-mem`) implements these rules;
//! its unit tests check each implementation decision against this module,
//! and `rest-bench`'s `table1` binary prints the full matrix alongside
//! the observed simulator behaviour.

use crate::exception::RestExceptionKind;

/// Row of Table I: the operation arriving at the LSQ / L1-D.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// REST `arm`.
    Arm,
    /// REST `disarm`.
    Disarm,
    /// Regular load.
    Load,
    /// Regular store in secure mode.
    StoreSecure,
    /// Regular store in debug mode.
    StoreDebug,
    /// Incoming coherence message.
    CoherenceMsg,
    /// Line eviction from the L1-D.
    Eviction,
}

impl Action {
    /// All rows of the table, in paper order.
    pub const ALL: [Action; 7] = [
        Action::Arm,
        Action::Disarm,
        Action::Load,
        Action::StoreSecure,
        Action::StoreDebug,
        Action::CoherenceMsg,
        Action::Eviction,
    ];

    /// Row label as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Action::Arm => "Arm",
            Action::Disarm => "Disarm",
            Action::Load => "Load",
            Action::StoreSecure => "Store (Secure)",
            Action::StoreDebug => "Store (Debug)",
            Action::CoherenceMsg => "Coherence Msgs.",
            Action::Eviction => "Eviction",
        }
    }
}

/// How an entry inserted into the store queue is tagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqTag {
    /// Ordinary store carrying a data value.
    Store,
    /// `arm` — value implicit (the token), never forwarded.
    Arm,
    /// `disarm` — value implicit (zero), never forwarded.
    Disarm,
}

/// The "LSQ" column of Table I for one operation, given the relevant
/// store-queue state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsqDecision {
    /// Exception to raise instead of proceeding, if any.
    pub exception: Option<RestExceptionKind>,
    /// Entry to insert into the store queue (loads insert none).
    pub insert: Option<SqTag>,
    /// Whether a load may take a forwarded value from a matching,
    /// ordinary store-queue entry (never from arm/disarm).
    pub may_forward: bool,
}

/// Evaluates the LSQ column.
///
/// * `sq_has_arm_same_loc` — an in-flight `arm` to the same location
///   exists in the store queue.
/// * `sq_has_disarm_same_loc` — an in-flight `disarm` to the same
///   location exists.
/// * `would_forward_from_arm` — for loads only: the normal forwarding
///   logic found its match to be an `arm` entry.
pub fn lsq_decision(
    action: Action,
    sq_has_arm_same_loc: bool,
    sq_has_disarm_same_loc: bool,
    would_forward_from_arm: bool,
) -> LsqDecision {
    match action {
        Action::Arm => LsqDecision {
            exception: None,
            insert: Some(SqTag::Arm),
            may_forward: false,
        },
        Action::Disarm => {
            if sq_has_disarm_same_loc {
                LsqDecision {
                    exception: Some(RestExceptionKind::DoubleInflightDisarm),
                    insert: None,
                    may_forward: false,
                }
            } else {
                LsqDecision {
                    exception: None,
                    insert: Some(SqTag::Disarm),
                    may_forward: false,
                }
            }
        }
        Action::Load => {
            if would_forward_from_arm {
                LsqDecision {
                    exception: Some(RestExceptionKind::ForwardFromArm),
                    insert: None,
                    may_forward: false,
                }
            } else {
                LsqDecision {
                    exception: None,
                    insert: None,
                    may_forward: true,
                }
            }
        }
        Action::StoreSecure | Action::StoreDebug => {
            if sq_has_arm_same_loc {
                LsqDecision {
                    exception: Some(RestExceptionKind::StoreHitInflightArm),
                    insert: None,
                    may_forward: false,
                }
            } else {
                LsqDecision {
                    exception: None,
                    insert: Some(SqTag::Store),
                    may_forward: false,
                }
            }
        }
        // Coherence and eviction never traverse the LSQ.
        Action::CoherenceMsg | Action::Eviction => LsqDecision {
            exception: None,
            insert: None,
            may_forward: false,
        },
    }
}

/// The "Cache Hit" / "Cache Miss" columns of Table I for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheDecision {
    /// Exception to raise instead of completing the access.
    pub exception: Option<RestExceptionKind>,
    /// Line must be fetched from the next level first (miss path).
    pub fetch_line: bool,
    /// After a fetch, run the token detector and set token bit(s) if the
    /// incoming line contains the token.
    pub detect_token_on_fill: bool,
    /// Unconditionally set the token bit of the accessed slot (arm).
    pub set_token_bit: bool,
    /// Zero the accessed slot and unset its token bit (disarm).
    pub clear_slot_unset_bit: bool,
    /// Complete the ordinary data read/write.
    pub access_data: bool,
    /// Debug-mode stores: hold the ROB commit until the L1-D acks.
    pub delay_commit_until_ack: bool,
    /// Eviction of a token-bit line: materialise the token value in the
    /// outgoing packet (arm writes the value lazily, on eviction).
    pub fill_token_in_outgoing: bool,
}

/// Evaluates the cache column.
///
/// * `hit` — the accessed line is present in the L1-D.
/// * `token_bit_set` — the token bit of the accessed slot is set
///   (meaningful on hits, and on misses *after* the fill-path detector
///   has run — pass the post-fill value).
pub fn cache_decision(action: Action, hit: bool, token_bit_set: bool) -> CacheDecision {
    let mut d = CacheDecision {
        fetch_line: !hit,
        detect_token_on_fill: !hit,
        ..CacheDecision::default()
    };
    match action {
        Action::Arm => {
            // Arm sets the token bit but does not write the token value;
            // the value is written when the line is evicted (§III-B).
            d.set_token_bit = true;
        }
        Action::Disarm => {
            if token_bit_set {
                d.clear_slot_unset_bit = true;
            } else {
                d.exception = Some(RestExceptionKind::DisarmUnarmed);
            }
        }
        Action::Load => {
            if token_bit_set {
                d.exception = Some(RestExceptionKind::TokenLoad);
            } else {
                d.access_data = true;
            }
        }
        Action::StoreSecure | Action::StoreDebug => {
            if token_bit_set {
                d.exception = Some(RestExceptionKind::TokenStore);
            } else {
                d.access_data = true;
                if action == Action::StoreDebug && !hit {
                    d.delay_commit_until_ack = true;
                }
            }
        }
        Action::CoherenceMsg => {
            // "As usual": coherence is unmodified.
            d.fetch_line = false;
            d.detect_token_on_fill = false;
        }
        Action::Eviction => {
            d.fetch_line = false;
            d.detect_token_on_fill = false;
            if hit && token_bit_set {
                d.fill_token_in_outgoing = true;
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_row() {
        let l = lsq_decision(Action::Arm, false, false, false);
        assert_eq!(l.insert, Some(SqTag::Arm));
        assert!(l.exception.is_none());
        assert!(!l.may_forward);

        let hit = cache_decision(Action::Arm, true, false);
        assert!(hit.set_token_bit && !hit.fetch_line);
        let miss = cache_decision(Action::Arm, false, false);
        assert!(miss.set_token_bit && miss.fetch_line && miss.detect_token_on_fill);
    }

    #[test]
    fn disarm_row() {
        // Double in-flight disarm raises.
        let l = lsq_decision(Action::Disarm, false, true, false);
        assert_eq!(
            l.exception,
            Some(RestExceptionKind::DoubleInflightDisarm)
        );
        // Otherwise inserted tagged, with no value.
        let l = lsq_decision(Action::Disarm, false, false, false);
        assert_eq!(l.insert, Some(SqTag::Disarm));

        // Cache hit, token bit unset → exception.
        let d = cache_decision(Action::Disarm, true, false);
        assert_eq!(d.exception, Some(RestExceptionKind::DisarmUnarmed));
        // Cache hit, token bit set → clear line, unset bit.
        let d = cache_decision(Action::Disarm, true, true);
        assert!(d.clear_slot_unset_bit && d.exception.is_none());
        // Miss: fetch, detect, then proceed as hit.
        let d = cache_decision(Action::Disarm, false, true);
        assert!(d.fetch_line && d.detect_token_on_fill && d.clear_slot_unset_bit);
    }

    #[test]
    fn load_row() {
        // Forward from armed SQ entry → exception.
        let l = lsq_decision(Action::Load, true, false, true);
        assert_eq!(l.exception, Some(RestExceptionKind::ForwardFromArm));
        // As usual otherwise.
        let l = lsq_decision(Action::Load, false, false, false);
        assert!(l.exception.is_none() && l.may_forward);

        let d = cache_decision(Action::Load, true, true);
        assert_eq!(d.exception, Some(RestExceptionKind::TokenLoad));
        let d = cache_decision(Action::Load, true, false);
        assert!(d.access_data);
        let d = cache_decision(Action::Load, false, false);
        assert!(d.fetch_line && d.detect_token_on_fill && d.access_data);
    }

    #[test]
    fn store_rows() {
        for action in [Action::StoreSecure, Action::StoreDebug] {
            let l = lsq_decision(action, true, false, false);
            assert_eq!(
                l.exception,
                Some(RestExceptionKind::StoreHitInflightArm),
                "{action:?}"
            );
            let l = lsq_decision(action, false, false, false);
            assert_eq!(l.insert, Some(SqTag::Store));

            let d = cache_decision(action, true, true);
            assert_eq!(d.exception, Some(RestExceptionKind::TokenStore));
            let d = cache_decision(action, true, false);
            assert!(d.access_data && !d.delay_commit_until_ack);
        }
        // Debug-mode store miss delays commit until the L1-D ack.
        let d = cache_decision(Action::StoreDebug, false, false);
        assert!(d.delay_commit_until_ack);
        let d = cache_decision(Action::StoreSecure, false, false);
        assert!(!d.delay_commit_until_ack);
    }

    #[test]
    fn coherence_and_eviction_rows() {
        let l = lsq_decision(Action::CoherenceMsg, false, false, false);
        assert_eq!(l, lsq_decision(Action::Eviction, false, false, false));
        assert!(l.exception.is_none() && l.insert.is_none());

        let d = cache_decision(Action::CoherenceMsg, true, true);
        assert_eq!(d, CacheDecision::default());

        let d = cache_decision(Action::Eviction, true, true);
        assert!(d.fill_token_in_outgoing);
        let d = cache_decision(Action::Eviction, true, false);
        assert!(!d.fill_token_in_outgoing);
    }

    #[test]
    fn action_names_match_paper() {
        assert_eq!(Action::StoreSecure.name(), "Store (Secure)");
        assert_eq!(Action::CoherenceMsg.name(), "Coherence Msgs.");
        assert_eq!(Action::ALL.len(), 7);
    }
}
