//! Static check-elision maps.
//!
//! The `rest-verify` elision pass proves, per memory-access PC, that the
//! REST (or ASan) check at that PC can never fire: either the access is
//! in-bounds of a live, never-freed allocation or frame slot on every
//! path ([`ElideClass::MustBeSafe`]), or an identical covering check
//! already ran at a dominating PC with no intervening token mutation
//! ([`ElideClass::Redundant`]). The emulator consumes the resulting
//! [`ElisionMap`] and skips the per-access check machinery at those PCs,
//! counting each skip in `CoreStats::elided_checks`.
//!
//! The map lives in `rest-core` — not in the verifier — because the CPU
//! crate must consume it without depending on the analysis that produced
//! it. It is a plain sorted PC→class table; producing a *sound* one is
//! entirely the producer's burden, and the repo's differential suites
//! machine-check that burden on every run.

use std::collections::BTreeMap;

/// Why a checked access may skip its runtime check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ElideClass {
    /// The access can never touch armed/tokened memory on any path:
    /// in-bounds of a live, never-freed allocation or frame slot.
    MustBeSafe,
    /// The same base/offset range was already checked at a dominating PC
    /// with no intervening free, DISARM/ARM, or base redefinition.
    Redundant,
}

impl ElideClass {
    /// Stable serialization name.
    pub fn name(self) -> &'static str {
        match self {
            ElideClass::MustBeSafe => "must-be-safe",
            ElideClass::Redundant => "redundant",
        }
    }

    /// Inverse of [`ElideClass::name`].
    pub fn from_name(s: &str) -> Option<ElideClass> {
        match s {
            "must-be-safe" => Some(ElideClass::MustBeSafe),
            "redundant" => Some(ElideClass::Redundant),
            _ => None,
        }
    }
}

/// Per-program elision verdicts: every memory-access PC the static pass
/// proved safe, with the class of proof. PCs absent from the map are
/// `MayFault` and keep their runtime checks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ElisionMap {
    entries: BTreeMap<u64, ElideClass>,
}

impl ElisionMap {
    /// An empty map (nothing elided).
    pub fn new() -> ElisionMap {
        ElisionMap::default()
    }

    /// Records the verdict for one access PC. Later inserts win, but a
    /// sound producer never classifies one PC twice.
    pub fn insert(&mut self, pc: u64, class: ElideClass) {
        self.entries.insert(pc, class);
    }

    /// The verdict at `pc`, if the PC was proven elidable.
    pub fn class_at(&self, pc: u64) -> Option<ElideClass> {
        self.entries.get(&pc).copied()
    }

    /// Whether the check at `pc` may be skipped.
    pub fn elides(&self, pc: u64) -> bool {
        self.entries.contains_key(&pc)
    }

    /// Number of elided PCs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no PC is elided.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in ascending PC order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, ElideClass)> + '_ {
        self.entries.iter().map(|(&pc, &c)| (pc, c))
    }

    /// Count of entries with the given class.
    pub fn count_of(&self, class: ElideClass) -> usize {
        self.entries.values().filter(|&&c| c == class).count()
    }
}

impl FromIterator<(u64, ElideClass)> for ElisionMap {
    fn from_iter<T: IntoIterator<Item = (u64, ElideClass)>>(iter: T) -> ElisionMap {
        ElisionMap {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_and_counts() {
        let mut m = ElisionMap::new();
        assert!(m.is_empty() && !m.elides(0x100));
        m.insert(0x110, ElideClass::Redundant);
        m.insert(0x100, ElideClass::MustBeSafe);
        m.insert(0x120, ElideClass::MustBeSafe);
        assert_eq!(m.len(), 3);
        assert_eq!(m.class_at(0x110), Some(ElideClass::Redundant));
        assert_eq!(m.class_at(0x108), None);
        assert_eq!(m.count_of(ElideClass::MustBeSafe), 2);
        // Iteration is PC-sorted regardless of insertion order.
        let pcs: Vec<u64> = m.iter().map(|(pc, _)| pc).collect();
        assert_eq!(pcs, vec![0x100, 0x110, 0x120]);
    }

    #[test]
    fn class_names_round_trip() {
        for c in [ElideClass::MustBeSafe, ElideClass::Redundant] {
            assert_eq!(ElideClass::from_name(c.name()), Some(c));
        }
        assert_eq!(ElideClass::from_name("may-fault"), None);
    }
}
