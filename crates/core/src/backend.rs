//! Pluggable protection backends.
//!
//! The simulator originally hard-wired REST's token check into the L1-D
//! fill path, the emulator's access check, and the allocator. This
//! module extracts those ad-hoc operations into one seam — the
//! [`ProtectionBackend`] trait — so competing hardware defenses can be
//! slotted into the *same* pipeline, allocator machinery, and harness:
//!
//! * **metadata placement** on allocate/free — token write
//!   ([`RestBackend`], performed in software by the allocator through
//!   the armed set) vs tag set ([`MteBackend`]) vs pointer sign
//!   ([`PacBackend`]),
//! * **per-access check semantics** — line-fill token compare vs
//!   lock-and-key tag compare vs pointer authentication,
//! * **detection timing** — precise vs imprecise vs deferred-to-exit
//!   ([`DetectTiming`]), modeling MTE's sync/async/asymmetric modes,
//! * **per-access cost** — injected check micro-ops
//!   ([`ProtectionBackend::check_uops`] / [`CheckUopKind`]).
//!
//! The MTE model follows the lock-and-key design of "Memory Tagging and
//! how it improves C/C++ memory safety" (Serebryany et al.) and the
//! sync/async trade-off measured in "ARM MTE Performance in Practice":
//! 4-bit tags per 16-byte granule, the pointer's tag in its top byte,
//! and uniform random tags giving an honest 1-in-16 aliasing
//! false-negative rate from a seeded RNG. The PA model signs heap
//! pointers on allocation with an 8-bit PAC in the unused upper address
//! bits and authenticates every use against the allocation registry;
//! generation bumps on free make dangling authentications fail, with a
//! 1-in-256 PAC-field collision probability.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::{ArmedSet, Mode, RestException, RestExceptionKind, TokenWidth};

/// Bytes of application memory covered by one MTE tag (ARM MTE's
/// granule size).
pub const TAG_GRANULE: u64 = 16;

/// Bit position of the 4-bit MTE pointer tag (the top byte of the
/// pointer, as on AArch64 with top-byte-ignore).
pub const TAG_SHIFT: u32 = 56;

/// Bit position of the 8-bit PAC field (the unused virtual-address bits
/// below the tag byte).
pub const PAC_SHIFT: u32 = 48;

/// Mask selecting the canonical (metadata-free) part of a pointer. The
/// simulated address space ends far below bit 48, so both the tag byte
/// and the PAC field sit in otherwise-unused bits.
pub const CANONICAL_MASK: u64 = (1u64 << PAC_SHIFT) - 1;

/// When a flagged access is reported relative to the access itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectTiming {
    /// Reported at the faulting instruction with exact machine state
    /// (REST debug mode, MTE synchronous, PA authentication).
    Precise,
    /// Reported immediately but the machine may have run past the
    /// faulting instruction (REST secure mode).
    Imprecise,
    /// Recorded by the hardware and reported later — modelled as
    /// delivery at program exit (MTE asynchronous: the TFSR syndrome is
    /// polled at a context switch, so the program runs to completion).
    Deferred,
}

/// MTE checking mode (sync/async/asymmetric, as exposed by real cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MteMode {
    /// Every access checks synchronously: precise faults, highest cost.
    Sync,
    /// Checks are recorded in the fault-status register and delivered
    /// at exit: no per-access cost, but the attack completes first.
    Async,
    /// Loads check synchronously, stores asynchronously (the hardware
    /// compromise: reads are the exfiltration path).
    Asymm,
}

impl MteMode {
    /// Label fragment used by the harness (`mte-sync`, …).
    pub fn name(self) -> &'static str {
        match self {
            MteMode::Sync => "sync",
            MteMode::Async => "async",
            MteMode::Asymm => "asymm",
        }
    }
}

impl fmt::Display for MteMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A lock-and-key tag mismatch (MTE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagFault {
    /// Canonical faulting address.
    pub addr: u64,
    /// PC of the faulting access.
    pub pc: u64,
    /// Tag carried in the pointer's top byte.
    pub ptr_tag: u8,
    /// Tag stored for the granule.
    pub mem_tag: u8,
    /// Whether the access was a store.
    pub store: bool,
    /// Whether the fault is delivered precisely.
    pub precise: bool,
}

impl fmt::Display for TagFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MTE tag mismatch: {} at addr {:#x} (pc {:#x}, ptr tag {:#x}, mem tag {:#x}, {})",
            if self.store { "store" } else { "load" },
            self.addr,
            self.pc,
            self.ptr_tag,
            self.mem_tag,
            if self.precise { "sync" } else { "async" },
        )
    }
}

/// A failed pointer authentication (PA).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacFault {
    /// Canonical faulting address.
    pub addr: u64,
    /// PC of the faulting access.
    pub pc: u64,
    /// PAC the registry expects for the address's allocation (0 when
    /// the address belongs to no signed allocation).
    pub expected: u8,
    /// PAC field carried by the pointer.
    pub found: u8,
    /// Whether the access was a store.
    pub store: bool,
}

impl fmt::Display for PacFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PA authentication failure: {} at addr {:#x} (pc {:#x}, pac {:#x}, expected {:#x})",
            if self.store { "store" } else { "load" },
            self.addr,
            self.pc,
            self.found,
            self.expected,
        )
    }
}

/// A violation detected by a backend, in backend-specific terms. The
/// runtime layer converts this into its `Violation` type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendFault {
    /// REST token-slot overlap.
    Token(RestException),
    /// MTE lock-and-key tag mismatch.
    Tag(TagFault),
    /// PA pointer-authentication failure.
    Pac(PacFault),
}

impl BackendFault {
    /// Faulting data address.
    pub fn addr(&self) -> u64 {
        match self {
            BackendFault::Token(e) => e.addr,
            BackendFault::Tag(f) => f.addr,
            BackendFault::Pac(f) => f.addr,
        }
    }

    /// PC of the faulting access.
    pub fn pc(&self) -> u64 {
        match self {
            BackendFault::Token(e) => e.pc,
            BackendFault::Tag(f) => f.pc,
            BackendFault::Pac(f) => f.pc,
        }
    }
}

/// The shape of the micro-op a backend injects per checked access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckUopKind {
    /// A load of the access's tag-storage line: the tag fetch travels
    /// through the cache hierarchy like ASan's shadow load does.
    TagLoad,
    /// A register-only authentication computation (PA's QARMA-style
    /// MAC), no memory traffic.
    AuthAlu,
}

/// One protection mechanism behind a uniform seam.
///
/// Implementations own their metadata state (armed set, tag map,
/// signing registry); callers own memory, traffic recording, and fault
/// delivery. Backends whose detection is deferred ([`DetectTiming::
/// Deferred`]) record the first fault internally and surface it through
/// [`ProtectionBackend::take_deferred`] when the program stops.
pub trait ProtectionBackend: fmt::Debug + Send {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// The architectural armed-token set, for backends whose metadata
    /// is memory *content* (REST). `None` for tag/signature backends.
    fn armed_set(&self) -> Option<&ArmedSet> {
        None
    }

    /// Mutable access to the armed-token set.
    fn armed_set_mut(&mut self) -> Option<&mut ArmedSet> {
        None
    }

    /// Whether the L1-D fill path compares line content against the
    /// token (REST's detector). Backends returning `false` skip the
    /// fill comparator entirely.
    fn uses_line_fill_detection(&self) -> bool {
        false
    }

    /// Metadata placement on allocation: assign granule tags or sign
    /// the pointer. Returns the pointer value the application receives
    /// (REST returns `base` unchanged — its metadata is the token
    /// content the allocator arms separately).
    fn on_alloc(&mut self, base: u64, len: u64) -> u64 {
        let _ = len;
        base
    }

    /// Metadata retirement on free: retag the granules or bump the
    /// allocation generation so dangling uses fail.
    fn on_free(&mut self, base: u64, len: u64) {
        let _ = (base, len);
    }

    /// Strips pointer metadata (tag byte, PAC field) for addressing.
    fn canonical_addr(&self, ptr: u64) -> u64 {
        ptr
    }

    /// Whether pointers carry metadata in their upper bits (so callers
    /// must canonicalize before using a pointer as an address).
    fn tags_pointers(&self) -> bool {
        false
    }

    /// Checks one application access. Returning `Some` raises the fault
    /// at this access; deferred-timing backends record the fault
    /// internally and return `None`.
    fn check_access(&mut self, ptr: u64, len: u64, store: bool, pc: u64) -> Option<BackendFault> {
        let _ = (ptr, len, store, pc);
        None
    }

    /// Takes the deferred fault recorded by an async-timing backend, if
    /// any (delivered when the program stops).
    fn take_deferred(&mut self) -> Option<BackendFault> {
        None
    }

    /// Whether a deferred fault is currently latched (without taking
    /// it). Lets callers attribute the latch event to the access that
    /// caused it.
    fn has_deferred(&self) -> bool {
        false
    }

    /// Total `check_access` invocations this backend has performed,
    /// for reconciliation against site-attributed check counts.
    fn check_count(&self) -> u64 {
        0
    }

    /// Detection timing for a flagged access of the given kind.
    fn timing(&self, store: bool) -> DetectTiming;

    /// Micro-ops injected per application access of the given kind.
    fn check_uops(&self, store: bool) -> u32 {
        let _ = store;
        0
    }

    /// Shape of the injected check micro-op, when `check_uops` > 0.
    fn check_uop_kind(&self) -> CheckUopKind {
        CheckUopKind::TagLoad
    }

    /// Bytes of application memory covered by one recorded metadata
    /// store when the runtime places tags (`None`: no tag traffic).
    /// MTE's `DC GVA`-style instructions tag a cache line per store.
    fn meta_store_span(&self) -> Option<u64> {
        None
    }
}

/// No protection (the plain baseline) or software-only protection
/// (ASan, whose shadow checks live outside the hardware seam).
#[derive(Debug, Default)]
pub struct NullBackend;

impl ProtectionBackend for NullBackend {
    fn name(&self) -> &'static str {
        "null"
    }

    fn timing(&self, _store: bool) -> DetectTiming {
        DetectTiming::Precise
    }
}

/// REST: content-based blacklisting. The backend owns the architectural
/// armed-location set; the allocator places tokens through it, and the
/// per-access check is the armed-set overlap the L1-D fill comparator
/// implements in hardware.
#[derive(Debug)]
pub struct RestBackend {
    armed: ArmedSet,
    mode: Mode,
    /// Accesses checked against the armed set (for reports).
    pub checks: u64,
}

impl RestBackend {
    /// A REST backend for the given token width and exception mode.
    pub fn new(width: TokenWidth, mode: Mode) -> RestBackend {
        RestBackend {
            armed: ArmedSet::new(width),
            mode,
            checks: 0,
        }
    }

    /// The armed-location set (always present for REST).
    pub fn armed(&self) -> &ArmedSet {
        &self.armed
    }

    /// Mutable armed-location set.
    pub fn armed_mut(&mut self) -> &mut ArmedSet {
        &mut self.armed
    }
}

impl ProtectionBackend for RestBackend {
    fn name(&self) -> &'static str {
        "rest"
    }

    fn armed_set(&self) -> Option<&ArmedSet> {
        Some(&self.armed)
    }

    fn armed_set_mut(&mut self) -> Option<&mut ArmedSet> {
        Some(&mut self.armed)
    }

    fn uses_line_fill_detection(&self) -> bool {
        true
    }

    fn check_access(&mut self, ptr: u64, len: u64, store: bool, pc: u64) -> Option<BackendFault> {
        self.checks += 1;
        let slot = self.armed.first_overlap(ptr, len)?;
        let kind = if store {
            RestExceptionKind::TokenStore
        } else {
            RestExceptionKind::TokenLoad
        };
        Some(BackendFault::Token(RestException::new(
            kind,
            slot,
            pc,
            self.mode.precise_exceptions(),
        )))
    }

    fn timing(&self, _store: bool) -> DetectTiming {
        if self.mode.precise_exceptions() {
            DetectTiming::Precise
        } else {
            DetectTiming::Imprecise
        }
    }

    fn check_count(&self) -> u64 {
        self.checks
    }
}

/// Deterministic splitmix64 step, used for seeded tag/PAC draws.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// MTE-style 4-bit lock-and-key tagger.
///
/// Every 16-byte granule of a live allocation carries a 4-bit tag; the
/// matching key rides in the pointer's top byte. Untagged memory
/// (stack, statics, headers) and unadorned pointers both carry tag 0,
/// so only heap accesses are checked in anger. Tags are drawn uniformly
/// from all 16 values by a seeded splitmix64 stream, so two adjacent
/// allocations alias with probability exactly 1/16 — the model's honest
/// false-negative rate. Frees retag the granules with a fresh draw,
/// which is what catches dangling pointers and double frees.
#[derive(Debug)]
pub struct MteBackend {
    mode: MteMode,
    tags: HashMap<u64, u8>,
    rng: u64,
    pending: Option<TagFault>,
    /// Accesses checked (for tests and reports).
    pub checks: u64,
    /// Mismatches observed, including deferred ones.
    pub mismatches: u64,
}

impl MteBackend {
    /// A tagger in the given checking mode. The tag stream is seeded
    /// from `seed` only — sync and async runs of the same program
    /// assign identical tags, which is what makes their detection sets
    /// comparable in lockstep.
    pub fn new(mode: MteMode, seed: u64) -> MteBackend {
        MteBackend {
            mode,
            tags: HashMap::new(),
            rng: seed ^ 0x4D54_4531_4D54_4531, // "MTE1MTE1"
            pending: None,
            checks: 0,
            mismatches: 0,
        }
    }

    /// Draws the next allocation tag (uniform over all 16 values).
    pub fn next_tag(&mut self) -> u8 {
        (splitmix64(&mut self.rng) & 0xF) as u8
    }

    /// Tag stored for the granule containing `addr` (0 if untagged).
    pub fn granule_tag(&self, addr: u64) -> u8 {
        self.tags
            .get(&(addr / TAG_GRANULE))
            .copied()
            .unwrap_or(0)
    }

    fn set_range_tag(&mut self, base: u64, len: u64, tag: u8) {
        let first = base / TAG_GRANULE;
        let last = (base + len.max(1) - 1) / TAG_GRANULE;
        for g in first..=last {
            if tag == 0 {
                self.tags.remove(&g);
            } else {
                self.tags.insert(g, tag);
            }
        }
    }
}

impl ProtectionBackend for MteBackend {
    fn name(&self) -> &'static str {
        "mte"
    }

    fn on_alloc(&mut self, base: u64, len: u64) -> u64 {
        let tag = self.next_tag();
        self.set_range_tag(base, len, tag);
        base | (u64::from(tag) << TAG_SHIFT)
    }

    fn on_free(&mut self, base: u64, len: u64) {
        // Retag with a fresh draw: a dangling pointer now mismatches
        // with probability 15/16 (the 1/16 remainder is the honest
        // aliasing false negative).
        let tag = self.next_tag();
        self.set_range_tag(base, len, tag);
    }

    fn canonical_addr(&self, ptr: u64) -> u64 {
        ptr & CANONICAL_MASK
    }

    fn tags_pointers(&self) -> bool {
        true
    }

    fn check_access(&mut self, ptr: u64, len: u64, store: bool, pc: u64) -> Option<BackendFault> {
        self.checks += 1;
        let ptr_tag = ((ptr >> TAG_SHIFT) & 0xF) as u8;
        let addr = ptr & CANONICAL_MASK;
        let first = addr / TAG_GRANULE;
        let last = (addr + len.max(1) - 1) / TAG_GRANULE;
        for g in first..=last {
            let mem_tag = self.tags.get(&g).copied().unwrap_or(0);
            if mem_tag != ptr_tag {
                self.mismatches += 1;
                let fault = TagFault {
                    addr: g * TAG_GRANULE,
                    pc,
                    ptr_tag,
                    mem_tag,
                    store,
                    precise: self.timing(store) == DetectTiming::Precise,
                };
                if self.timing(store) == DetectTiming::Deferred {
                    // The fault-status register records the *first*
                    // asynchronous fault; later ones are lost.
                    self.pending.get_or_insert(fault);
                    return None;
                }
                return Some(BackendFault::Tag(fault));
            }
        }
        None
    }

    fn take_deferred(&mut self) -> Option<BackendFault> {
        self.pending.take().map(BackendFault::Tag)
    }

    fn has_deferred(&self) -> bool {
        self.pending.is_some()
    }

    fn check_count(&self) -> u64 {
        self.checks
    }

    fn timing(&self, store: bool) -> DetectTiming {
        match self.mode {
            MteMode::Sync => DetectTiming::Precise,
            MteMode::Async => DetectTiming::Deferred,
            MteMode::Asymm => {
                if store {
                    DetectTiming::Deferred
                } else {
                    DetectTiming::Precise
                }
            }
        }
    }

    fn check_uops(&self, store: bool) -> u32 {
        // Synchronous checks stall the access on the tag fetch; the
        // asynchronous path checks in the background at no issue cost.
        u32::from(self.timing(store) == DetectTiming::Precise)
    }

    fn check_uop_kind(&self) -> CheckUopKind {
        CheckUopKind::TagLoad
    }

    fn meta_store_span(&self) -> Option<u64> {
        // DC GVA-style tagging writes one tag block per cache line.
        Some(64)
    }
}

/// One signed allocation in the PA registry.
#[derive(Debug, Clone, Copy)]
struct PacChunk {
    /// Padded allocation length in bytes.
    len: u64,
    /// Generation, bumped on every free so dangling auths fail.
    generation: u64,
    /// Whether the allocation is currently live.
    live: bool,
}

/// PA-style pointer signing.
///
/// Allocation signs the returned pointer with an 8-bit PAC computed as
/// a keyed MAC over (base, generation); every use authenticates the
/// pointer's PAC against the registry entry covering the canonical
/// address. A pointer walked out of its allocation lands in a region
/// whose expected PAC differs (or in unsigned memory with a nonzero PAC
/// field), and a dangling pointer authenticates against a bumped
/// generation — both fail unless the two 8-bit PACs collide (1/256).
/// Unsigned pointers (stack, statics) never authenticate, so the scheme
/// is heap-targeted, like Table III's "Targeted" row for ARM PA.
#[derive(Debug)]
pub struct PacBackend {
    key: u64,
    chunks: BTreeMap<u64, PacChunk>,
    /// Authentications performed (for tests and reports).
    pub checks: u64,
    /// Authentication failures observed.
    pub failures: u64,
}

impl PacBackend {
    /// A signing backend keyed from `seed`.
    pub fn new(seed: u64) -> PacBackend {
        PacBackend {
            key: seed ^ 0x5041_4331_5041_4331, // "PAC1PAC1"
            chunks: BTreeMap::new(),
            checks: 0,
            failures: 0,
        }
    }

    /// The 8-bit PAC for (base, generation) under this backend's key.
    pub fn pac_for(&self, base: u64, generation: u64) -> u8 {
        let mut state = self.key ^ base ^ generation.rotate_left(48);
        (splitmix64(&mut state) & 0xFF) as u8
    }

    /// The registry entry covering canonical address `addr`.
    fn chunk_at(&self, addr: u64) -> Option<(u64, PacChunk)> {
        let (&base, info) = self.chunks.range(..=addr).next_back()?;
        (addr < base + info.len).then_some((base, *info))
    }
}

impl ProtectionBackend for PacBackend {
    fn name(&self) -> &'static str {
        "pa"
    }

    fn on_alloc(&mut self, base: u64, len: u64) -> u64 {
        let generation = match self.chunks.get_mut(&base) {
            Some(c) => {
                c.len = len;
                c.live = true;
                c.generation
            }
            None => {
                self.chunks.insert(
                    base,
                    PacChunk {
                        len,
                        generation: 0,
                        live: true,
                    },
                );
                0
            }
        };
        base | (u64::from(self.pac_for(base, generation)) << PAC_SHIFT)
    }

    fn on_free(&mut self, base: u64, _len: u64) {
        if let Some(c) = self.chunks.get_mut(&base) {
            c.live = false;
            c.generation += 1;
        }
    }

    fn canonical_addr(&self, ptr: u64) -> u64 {
        ptr & CANONICAL_MASK
    }

    fn tags_pointers(&self) -> bool {
        true
    }

    fn check_access(&mut self, ptr: u64, len: u64, store: bool, pc: u64) -> Option<BackendFault> {
        self.checks += 1;
        let found = ((ptr >> PAC_SHIFT) & 0xFF) as u8;
        let addr = ptr & CANONICAL_MASK;
        let end = addr + len.max(1) - 1;
        let expected = match self.chunk_at(addr) {
            Some((base, info)) if end < base + info.len => {
                self.pac_for(base, info.generation)
            }
            // Part of the access lies outside any signed allocation: an
            // unsigned pointer (PAC field 0) is not authenticated; a
            // signed pointer walked out of its allocation cannot
            // re-authenticate.
            _ => 0,
        };
        if expected == found {
            return None;
        }
        self.failures += 1;
        Some(BackendFault::Pac(PacFault {
            addr,
            pc,
            expected,
            found,
            store,
        }))
    }

    fn timing(&self, _store: bool) -> DetectTiming {
        DetectTiming::Precise
    }

    fn check_uops(&self, _store: bool) -> u32 {
        // One AUT-style computation per use.
        1
    }

    fn check_uop_kind(&self) -> CheckUopKind {
        CheckUopKind::AuthAlu
    }

    fn check_count(&self) -> u64 {
        self.checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rest_backend_check_matches_armed_set_semantics() {
        let mut b = RestBackend::new(TokenWidth::B64, Mode::Secure);
        b.armed_mut().arm(0x4000_0040).unwrap();
        let f = b.check_access(0x4000_0040, 8, false, 0x10).unwrap();
        match f {
            BackendFault::Token(e) => {
                assert_eq!(e.kind, RestExceptionKind::TokenLoad);
                assert_eq!(e.addr, 0x4000_0040);
                assert!(!e.precise, "secure mode is imprecise");
            }
            other => panic!("unexpected fault {other:?}"),
        }
        let f = b.check_access(0x4000_0078, 8, true, 0x10).unwrap();
        assert!(matches!(
            f,
            BackendFault::Token(e) if e.kind == RestExceptionKind::TokenStore
        ));
        assert!(b.check_access(0x4000_0080, 8, false, 0x10).is_none());
        assert_eq!(b.timing(false), DetectTiming::Imprecise);
        assert_eq!(
            RestBackend::new(TokenWidth::B64, Mode::Debug).timing(false),
            DetectTiming::Precise
        );
    }

    #[test]
    fn mte_tags_travel_in_the_pointer_and_gate_access() {
        let mut b = MteBackend::new(MteMode::Sync, 7);
        let p = b.on_alloc(0x4000_0100, 64);
        let tag = ((p >> TAG_SHIFT) & 0xF) as u8;
        assert_eq!(b.canonical_addr(p), 0x4000_0100);
        assert_eq!(b.granule_tag(0x4000_0100), tag);
        // Matching key: no fault anywhere in the allocation.
        assert!(b.check_access(p, 8, false, 0).is_none());
        assert!(b.check_access(p + 48, 16, true, 0).is_none());
        // Walking past the allocation reaches untagged granules.
        let oob = b.check_access(p + 64, 8, false, 0x20);
        if tag == 0 {
            assert!(oob.is_none(), "tag 0 aliases untagged memory");
        } else {
            let BackendFault::Tag(f) = oob.unwrap() else {
                panic!()
            };
            assert_eq!(f.ptr_tag, tag);
            assert_eq!(f.mem_tag, 0);
            assert!(f.precise);
        }
    }

    #[test]
    fn mte_retag_on_free_catches_dangling_uses() {
        let mut b = MteBackend::new(MteMode::Sync, 1);
        let p = b.on_alloc(0x4000_0000, 128);
        let old = ((p >> TAG_SHIFT) & 0xF) as u8;
        b.on_free(0x4000_0000, 128);
        let new = b.granule_tag(0x4000_0000);
        if old == new {
            // Seeded draw happened to alias: the documented 1/16 miss.
            assert!(b.check_access(p, 8, false, 0).is_none());
        } else {
            assert!(b.check_access(p, 8, false, 0).is_some());
        }
    }

    #[test]
    fn mte_async_defers_the_first_fault_to_exit() {
        let mut b = MteBackend::new(MteMode::Async, 3);
        let p = b.on_alloc(0x4000_0000, 16);
        let tag = ((p >> TAG_SHIFT) & 0xF) as u8;
        // Ensure a mismatch regardless of the drawn tag by using a
        // wrong-key pointer.
        let wrong = 0x4000_0000 | (u64::from((tag + 1) & 0xF) << TAG_SHIFT);
        assert!(
            b.check_access(wrong, 8, true, 0x30).is_none(),
            "async faults must not stop the access"
        );
        assert!(b.check_access(wrong, 8, true, 0x40).is_none());
        let BackendFault::Tag(f) = b.take_deferred().unwrap() else {
            panic!()
        };
        assert_eq!(f.pc, 0x30, "only the first fault is recorded");
        assert!(!f.precise);
        assert!(b.take_deferred().is_none());
    }

    #[test]
    fn mte_asymmetric_mode_splits_loads_and_stores() {
        let b = MteBackend::new(MteMode::Asymm, 0);
        assert_eq!(b.timing(false), DetectTiming::Precise);
        assert_eq!(b.timing(true), DetectTiming::Deferred);
        assert_eq!(b.check_uops(false), 1);
        assert_eq!(b.check_uops(true), 0);
    }

    #[test]
    fn mte_sync_and_async_draw_identical_tags_from_one_seed() {
        let mut sync = MteBackend::new(MteMode::Sync, 0xC0FFEE);
        let mut async_ = MteBackend::new(MteMode::Async, 0xC0FFEE);
        for i in 0..64 {
            let base = 0x4000_0000 + i * 0x100;
            assert_eq!(sync.on_alloc(base, 48), async_.on_alloc(base, 48));
        }
    }

    #[test]
    fn tag_aliasing_converges_on_one_in_sixteen() {
        // Seeded statistical test: the probability that two independent
        // draws collide (adjacent chunks, or old and new tag of a freed
        // chunk) must converge on 1/16.
        let mut b = MteBackend::new(MteMode::Sync, 0x5EED);
        const TRIALS: u64 = 100_000;
        let mut collisions = 0u64;
        for _ in 0..TRIALS {
            if b.next_tag() == b.next_tag() {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / TRIALS as f64;
        let expected = 1.0 / 16.0;
        assert!(
            (rate - expected).abs() < 0.005,
            "aliasing rate {rate:.4} should be within ±0.005 of {expected:.4}"
        );
    }

    #[test]
    fn pac_signing_authenticates_live_uses_and_rejects_dangling_ones() {
        let mut b = PacBackend::new(42);
        let p = b.on_alloc(0x4000_0000, 112);
        assert_eq!(b.canonical_addr(p), 0x4000_0000);
        assert!(b.check_access(p, 8, false, 0).is_none());
        assert!(b.check_access(p + 104, 8, true, 0).is_none());
        // Out of the allocation: the signed pointer cannot
        // re-authenticate.
        assert!(b.check_access(p + 112, 8, false, 0).is_some());
        // Free bumps the generation: dangling auth fails unless the two
        // PACs collide (1/256, deterministic under the seed).
        let old_pac = ((p >> PAC_SHIFT) & 0xFF) as u8;
        b.on_free(0x4000_0000, 112);
        let new_pac = b.pac_for(0x4000_0000, 1);
        let dangling = b.check_access(p, 8, false, 0);
        if old_pac == new_pac {
            assert!(dangling.is_none());
        } else {
            let BackendFault::Pac(f) = dangling.unwrap() else {
                panic!()
            };
            assert_eq!(f.found, old_pac);
        }
        // Reallocation signs with the bumped generation.
        let p2 = b.on_alloc(0x4000_0000, 112);
        assert_eq!(((p2 >> PAC_SHIFT) & 0xFF) as u8, new_pac);
        assert!(b.check_access(p2, 8, false, 0).is_none());
    }

    #[test]
    fn pac_unsigned_pointers_pass_in_unsigned_memory() {
        let mut b = PacBackend::new(9);
        // Stack/static accesses carry no PAC and hit no registry entry.
        assert!(b.check_access(0x7fff_0000, 8, true, 0).is_none());
        assert!(b.check_access(0x0010_0000, 4, false, 0).is_none());
    }

    #[test]
    fn null_backend_checks_nothing() {
        let mut b = NullBackend;
        assert!(b.check_access(0xdead, 8, true, 0).is_none());
        assert_eq!(b.check_uops(true), 0);
        assert!(b.armed_set().is_none());
        assert!(!b.uses_line_fill_detection());
    }
}
