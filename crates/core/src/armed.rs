use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

use crate::exception::RestExceptionKind;
use crate::token::TokenWidth;

/// Multiplicative hasher for armed-slot addresses. The membership probe
/// in [`ArmedSet::first_overlap`] sits on the per-access hot path of
/// every REST simulation, where SipHash's per-lookup cost dominates;
/// slot addresses are token-width aligned and low-entropy, and a single
/// Fibonacci multiply spreads them well. [`ArmedSet::iter`] order is
/// explicitly unspecified and never reaches deterministic artifacts, so
/// the hash function cannot leak into results.
#[derive(Default)]
struct SlotHasher(u64);

impl Hasher for SlotHasher {
    fn write(&mut self, _: &[u8]) {
        unreachable!("slot addresses hash via write_u64");
    }

    fn write_u64(&mut self, slot: u64) {
        self.0 = slot.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Armed-slot membership set with the fast multiplicative hasher.
type SlotSet = HashSet<u64, BuildHasherDefault<SlotHasher>>;

/// The architectural set of armed (token-holding) locations.
///
/// The hardware's ground truth is content-based — a location is armed iff
/// it holds the token value — but architecturally the two are equivalent
/// because the token is secret and 2¹²⁸⁺ bits of entropy make accidental
/// collisions impossible (§V-B). The functional emulator uses this set to
/// decide program-visible REST exceptions, while the cache model performs
/// the genuine content comparison; the two are cross-checked in tests.
///
/// # Example
///
/// ```
/// use rest_core::{ArmedSet, TokenWidth};
///
/// let mut armed = ArmedSet::new(TokenWidth::B64);
/// armed.arm(0x1000).unwrap();
/// assert!(armed.overlaps(0x1008, 8));
/// assert!(!armed.overlaps(0x0fc0, 64));
/// armed.disarm(0x1000).unwrap();
/// assert!(!armed.overlaps(0x1000, 1));
/// ```
#[derive(Debug, Clone)]
pub struct ArmedSet {
    width: TokenWidth,
    /// Base addresses of armed slots (each `width.bytes()` long).
    slots: SlotSet,
    arms: u64,
    disarms: u64,
    /// When true, every arm's slot address is appended to `recent` so a
    /// fault injector can observe architectural arms (including the
    /// allocator's redzone arms, which never pass through `Inst::Arm`).
    recording: bool,
    recent: Vec<u64>,
}

impl ArmedSet {
    /// Creates an empty set for tokens of `width`.
    pub fn new(width: TokenWidth) -> ArmedSet {
        ArmedSet {
            width,
            slots: SlotSet::default(),
            arms: 0,
            disarms: 0,
            recording: false,
            recent: Vec::new(),
        }
    }

    /// Token width in force.
    pub fn width(&self) -> TokenWidth {
        self.width
    }

    /// Arms the slot at `addr`.
    ///
    /// # Errors
    ///
    /// [`RestExceptionKind::MisalignedArm`] if `addr` is not aligned to
    /// the token width. Re-arming an armed slot is idempotent (the store
    /// queue sees two arm entries, but architecturally the location
    /// simply holds the token).
    pub fn arm(&mut self, addr: u64) -> Result<(), RestExceptionKind> {
        if !self.width.is_aligned(addr) {
            return Err(RestExceptionKind::MisalignedArm);
        }
        self.slots.insert(addr);
        self.arms += 1;
        if self.recording {
            self.recent.push(addr);
        }
        Ok(())
    }

    /// Disarms the slot at `addr`.
    ///
    /// # Errors
    ///
    /// [`RestExceptionKind::MisalignedDisarm`] on misalignment;
    /// [`RestExceptionKind::DisarmUnarmed`] if the slot does not hold a
    /// token — the rule that defeats brute-force disarm sweeps (§V-C).
    pub fn disarm(&mut self, addr: u64) -> Result<(), RestExceptionKind> {
        if !self.width.is_aligned(addr) {
            return Err(RestExceptionKind::MisalignedDisarm);
        }
        if !self.slots.remove(&addr) {
            return Err(RestExceptionKind::DisarmUnarmed);
        }
        self.disarms += 1;
        Ok(())
    }

    /// Whether the slot at exactly `addr` is armed.
    #[inline]
    pub fn is_armed(&self, addr: u64) -> bool {
        self.slots.contains(&addr)
    }

    /// Whether `[addr, addr+size)` overlaps any armed slot. This is the
    /// architectural counterpart of "the access touches a line slot whose
    /// token bit is set".
    #[inline]
    pub fn overlaps(&self, addr: u64, size: u64) -> bool {
        self.first_overlap(addr, size).is_some()
    }

    /// Base address of the first armed slot overlapped by
    /// `[addr, addr+size)`, if any.
    #[inline]
    pub fn first_overlap(&self, addr: u64, size: u64) -> Option<u64> {
        if size == 0 {
            return None;
        }
        let w = self.width.bytes();
        let first_slot = addr / w * w;
        let last = addr + size - 1;
        let mut slot = first_slot;
        loop {
            if self.slots.contains(&slot) {
                return Some(slot);
            }
            if slot + w > last {
                return None;
            }
            slot += w;
        }
    }

    /// Number of currently armed slots.
    pub fn armed_count(&self) -> usize {
        self.slots.len()
    }

    /// Total arm operations performed.
    pub fn total_arms(&self) -> u64 {
        self.arms
    }

    /// Total successful disarm operations performed.
    pub fn total_disarms(&self) -> u64 {
        self.disarms
    }

    /// Iterates over armed slot base addresses (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots.iter().copied()
    }

    /// Enables (or disables) recording of arm slot addresses for fault
    /// injection. Off by default; costs nothing when disabled.
    pub fn set_recording(&mut self, on: bool) {
        self.recording = on;
        if !on {
            self.recent.clear();
        }
    }

    /// Drains the slot addresses armed since the last call, in program
    /// order. Empty unless recording is enabled.
    pub fn take_recent_arms(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.recent)
    }

    /// Silently drops a slot from the set without counting a disarm and
    /// without the `DisarmUnarmed` check. This models *hardware* loss of
    /// the token (a corrupted stored token no longer matches, a dropped
    /// eviction decays it) — not an architectural disarm, so the paper's
    /// disarm discipline and the arm/disarm counters are unaffected.
    pub fn forget(&mut self, addr: u64) -> bool {
        self.slots.remove(&addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_requires_alignment() {
        let mut a = ArmedSet::new(TokenWidth::B64);
        assert_eq!(a.arm(0x1001), Err(RestExceptionKind::MisalignedArm));
        assert_eq!(a.arm(0x1040), Ok(()));
        let mut a16 = ArmedSet::new(TokenWidth::B16);
        assert_eq!(a16.arm(0x1010), Ok(()));
        assert_eq!(a16.arm(0x1008), Err(RestExceptionKind::MisalignedArm));
    }

    #[test]
    fn disarm_of_unarmed_fails() {
        let mut a = ArmedSet::new(TokenWidth::B64);
        assert_eq!(a.disarm(0x1000), Err(RestExceptionKind::DisarmUnarmed));
        a.arm(0x1000).unwrap();
        assert_eq!(a.disarm(0x1000), Ok(()));
        assert_eq!(a.disarm(0x1000), Err(RestExceptionKind::DisarmUnarmed));
        assert_eq!(a.disarm(0x1001), Err(RestExceptionKind::MisalignedDisarm));
    }

    #[test]
    fn overlap_detection_across_slot_boundaries() {
        let mut a = ArmedSet::new(TokenWidth::B64);
        a.arm(0x1040).unwrap();
        assert!(a.overlaps(0x1040, 1));
        assert!(a.overlaps(0x107f, 1));
        assert!(!a.overlaps(0x1080, 8));
        assert!(!a.overlaps(0x103f, 1));
        // Straddling access.
        assert!(a.overlaps(0x1038, 16));
        // Wide range spanning far past the slot.
        assert!(a.overlaps(0x1000, 0x100));
        assert_eq!(a.first_overlap(0x1000, 0x100), Some(0x1040));
        // Zero-size never overlaps.
        assert!(!a.overlaps(0x1040, 0));
    }

    #[test]
    fn rearm_is_idempotent_and_counted() {
        let mut a = ArmedSet::new(TokenWidth::B32);
        a.arm(0x2000).unwrap();
        a.arm(0x2000).unwrap();
        assert_eq!(a.armed_count(), 1);
        assert_eq!(a.total_arms(), 2);
    }

    #[test]
    fn recording_captures_arms_in_order_and_drains() {
        let mut a = ArmedSet::new(TokenWidth::B64);
        a.arm(0x1000).unwrap();
        assert!(a.take_recent_arms().is_empty(), "off by default");
        a.set_recording(true);
        a.arm(0x1040).unwrap();
        a.arm(0x1080).unwrap();
        assert_eq!(a.take_recent_arms(), vec![0x1040, 0x1080]);
        assert!(a.take_recent_arms().is_empty(), "drained");
        a.set_recording(false);
        a.arm(0x10c0).unwrap();
        assert!(a.take_recent_arms().is_empty());
    }

    #[test]
    fn forget_drops_silently_without_counting_a_disarm() {
        let mut a = ArmedSet::new(TokenWidth::B64);
        a.arm(0x3000).unwrap();
        assert!(a.forget(0x3000));
        assert!(!a.forget(0x3000), "already gone");
        assert!(!a.overlaps(0x3000, 64));
        assert_eq!(a.total_disarms(), 0, "not an architectural disarm");
        // A later architectural disarm of the forgotten slot now fails,
        // exactly as hardware would behave once the token decayed.
        assert_eq!(a.disarm(0x3000), Err(RestExceptionKind::DisarmUnarmed));
    }
}
