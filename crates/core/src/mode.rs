use std::error::Error;
use std::fmt;

/// REST operating mode (§III-A), configured by a bit in the
/// token-configuration register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Deployment mode: REST exceptions may be imprecise — the machine
    /// state at delivery is not guaranteed to be the state at the
    /// faulting instruction. Store commit is eager and loads release from
    /// the MSHRs on the critical word, so the primitive costs nearly
    /// nothing (paper: 2% total, all from software).
    #[default]
    Secure,
    /// Development mode: exceptions are precise. Store commit is delayed
    /// until the write completes at the L1-D, and a load whose delivered
    /// critical word partially matches the token is held in the MSHR
    /// until the full line is checked (paper: 23–25% overhead).
    Debug,
}

impl Mode {
    /// Short static name ("secure"/"debug"), for reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Secure => "secure",
            Mode::Debug => "debug",
        }
    }

    /// Whether REST exceptions are reported precisely in this mode.
    pub fn precise_exceptions(self) -> bool {
        matches!(self, Mode::Debug)
    }

    /// Whether stores may commit from the ROB before their write is
    /// acknowledged by the L1-D.
    pub fn eager_store_commit(self) -> bool {
        matches!(self, Mode::Secure)
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Privilege level of the agent performing an operation.
///
/// REST exceptions are always handled by the next higher privilege level
/// and cannot be masked from the faulting level; the token value can only
/// be set from supervisor mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Privilege {
    /// User-level application code.
    User,
    /// Kernel / next-higher privilege level.
    Supervisor,
}

impl Privilege {
    /// Errors unless `self` is [`Privilege::Supervisor`].
    pub fn require_supervisor(self) -> Result<(), PrivilegeError> {
        match self {
            Privilege::Supervisor => Ok(()),
            Privilege::User => Err(PrivilegeError),
        }
    }
}

/// Returned when a privileged REST operation (setting the token value or
/// mode) is attempted from user level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrivilegeError;

impl fmt::Display for PrivilegeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("operation requires supervisor privilege")
    }
}

impl Error for PrivilegeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_properties() {
        assert!(!Mode::Secure.precise_exceptions());
        assert!(Mode::Secure.eager_store_commit());
        assert!(Mode::Debug.precise_exceptions());
        assert!(!Mode::Debug.eager_store_commit());
        assert_eq!(Mode::default(), Mode::Secure);
    }

    #[test]
    fn privilege_gate() {
        assert!(Privilege::Supervisor.require_supervisor().is_ok());
        let err = Privilege::User.require_supervisor().unwrap_err();
        assert!(err.to_string().contains("supervisor"));
    }

    #[test]
    fn display_names() {
        assert_eq!(Mode::Secure.to_string(), "secure");
        assert_eq!(Mode::Debug.to_string(), "debug");
    }
}
