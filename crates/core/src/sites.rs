//! Per-allocation-site check attribution.
//!
//! The defense matrix reports *how much* each scheme's checks cost in
//! aggregate; this table records *where* that cost lands. Every
//! successful `malloc` registers its user range under the guest PC of
//! the allocating call (the allocation *site*), and every
//! [`crate::ProtectionBackend::check_access`] outcome — plus ASan's
//! shadow classifications, which bypass the backend seam — is charged
//! to the site owning the checked address. Accesses outside any
//! registered allocation (stack, statics, wild pointers) fall into the
//! pseudo-site `0`.
//!
//! Freed ranges stay registered until their base address is reused, so
//! use-after-free probes are still attributed to the allocation they
//! dangle from — exactly the provenance a profiler wants for a UAF.
//!
//! All counters are derived from deterministic simulation state, so a
//! serialized table is byte-identical across runs and worker counts.

use std::collections::BTreeMap;

/// Counters accumulated for one allocation site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteCounters {
    /// Successful allocations made at this site.
    pub allocs: u64,
    /// Frees of chunks allocated at this site.
    pub frees: u64,
    /// Total user bytes handed out at this site.
    pub bytes: u64,
    /// Check invocations (backend `check_access` or ASan shadow
    /// classification) against this site's memory.
    pub checks: u64,
    /// Check micro-ops injected into the pipeline for those checks.
    pub check_uops: u64,
    /// Pointer canonicalisations performed (tag/PAC strip) while
    /// checking this site's memory.
    pub canonicalizations: u64,
    /// Deferred faults latched (MTE-async TFSR) by accesses here.
    pub deferred_latches: u64,
    /// Faults raised synchronously by accesses here.
    pub faults: u64,
}

impl SiteCounters {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &SiteCounters) {
        self.allocs += other.allocs;
        self.frees += other.frees;
        self.bytes += other.bytes;
        self.checks += other.checks;
        self.check_uops += other.check_uops;
        self.canonicalizations += other.canonicalizations;
        self.deferred_latches += other.deferred_latches;
        self.faults += other.faults;
    }
}

/// Site-keyed attribution table: allocation ranges map addresses back
/// to the guest PC that allocated them, and per-site counters accumulate
/// check outcomes.
#[derive(Debug, Default)]
pub struct SiteTable {
    /// Site PC -> counters. Site 0 is the unattributed pseudo-site.
    sites: BTreeMap<u64, SiteCounters>,
    /// Canonical base -> (exclusive end, site PC). Kept after free (see
    /// module docs); replaced when the base is reused.
    ranges: BTreeMap<u64, (u64, u64)>,
    /// Site PC -> checks statically elided against its memory. Kept out
    /// of [`SiteCounters`] so existing artifact serializations (which
    /// enumerate counter fields) are unchanged by elision-off runs.
    elided: BTreeMap<u64, u64>,
}

impl SiteTable {
    /// An empty table.
    pub fn new() -> SiteTable {
        SiteTable::default()
    }

    /// Registers an allocation of `len` user bytes at canonical `base`,
    /// made from guest PC `site`.
    pub fn note_alloc(&mut self, site: u64, base: u64, len: u64) {
        let c = self.sites.entry(site).or_default();
        c.allocs += 1;
        c.bytes += len;
        self.ranges.insert(base, (base + len.max(1), site));
    }

    /// Records a free of the allocation at canonical `base`.
    pub fn note_free(&mut self, base: u64) {
        if let Some(&(_, site)) = self.ranges.get(&base) {
            self.sites.entry(site).or_default().frees += 1;
        }
    }

    /// The site owning canonical address `addr` (0 when unattributed).
    pub fn site_of(&self, addr: u64) -> u64 {
        match self.ranges.range(..=addr).next_back() {
            Some((_, &(end, site))) if addr < end => site,
            _ => 0,
        }
    }

    /// Charges one check of canonical `addr` to its owning site.
    /// `uops` is the number of injected check micro-ops and
    /// `canonicalized` whether the pointer needed metadata stripped.
    pub fn note_check(&mut self, addr: u64, uops: u64, canonicalized: bool) {
        let site = self.site_of(addr);
        let c = self.sites.entry(site).or_default();
        c.checks += 1;
        c.check_uops += uops;
        c.canonicalizations += u64::from(canonicalized);
    }

    /// Records one statically elided check of canonical `addr`,
    /// attributed to its owning site like [`SiteTable::note_check`].
    pub fn note_elided(&mut self, addr: u64) {
        let site = self.site_of(addr);
        *self.elided.entry(site).or_default() += 1;
    }

    /// Checks elided against `site`'s memory (0 when none recorded).
    pub fn elided_at(&self, site: u64) -> u64 {
        self.elided.get(&site).copied().unwrap_or(0)
    }

    /// Total statically elided checks across all sites.
    pub fn total_elided(&self) -> u64 {
        self.elided.values().sum()
    }

    /// Records a deferred-fault latch (MTE-async TFSR capture) for
    /// canonical `addr`.
    pub fn note_deferred(&mut self, addr: u64) {
        let site = self.site_of(addr);
        self.sites.entry(site).or_default().deferred_latches += 1;
    }

    /// Records a synchronously raised fault for canonical `addr`.
    pub fn note_fault(&mut self, addr: u64) {
        let site = self.site_of(addr);
        self.sites.entry(site).or_default().faults += 1;
    }

    /// Total check invocations across all sites.
    pub fn total_checks(&self) -> u64 {
        self.sites.values().map(|c| c.checks).sum()
    }

    /// Total injected check micro-ops across all sites.
    pub fn total_check_uops(&self) -> u64 {
        self.sites.values().map(|c| c.check_uops).sum()
    }

    /// Sites in ascending PC order (site 0 first when present).
    pub fn rows(&self) -> impl Iterator<Item = (u64, &SiteCounters)> {
        self.sites.iter().map(|(&pc, c)| (pc, c))
    }

    /// Number of distinct sites (including the pseudo-site).
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no site has recorded anything.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Per-site elided-check rows, ascending by site PC (only sites
    /// with at least one elided check appear).
    pub fn elided_rows(&self) -> Vec<(u64, u64)> {
        self.elided.iter().map(|(&pc, &n)| (pc, n)).collect()
    }

    /// Drains the table into a sorted row vector.
    pub fn into_rows(self) -> Vec<(u64, SiteCounters)> {
        self.sites.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_attribute_checks_to_the_allocating_site() {
        let mut t = SiteTable::new();
        t.note_alloc(0x100, 0x8000, 64);
        t.note_alloc(0x200, 0x9000, 32);
        t.note_check(0x8000, 1, false);
        t.note_check(0x8003, 0, true);
        t.note_check(0x9010, 2, false);
        t.note_check(0x7fff, 1, false); // below every range
        t.note_check(0x9020, 1, false); // past the 32-byte range
        let rows: Vec<_> = t.rows().map(|(pc, c)| (pc, *c)).collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, 0); // unattributed pseudo-site
        assert_eq!(rows[0].1.checks, 2);
        assert_eq!(rows[1].0, 0x100);
        assert_eq!(rows[1].1.checks, 2);
        assert_eq!(rows[1].1.check_uops, 1);
        assert_eq!(rows[1].1.canonicalizations, 1);
        assert_eq!(rows[2].0, 0x200);
        assert_eq!(rows[2].1.checks, 1);
        assert_eq!(rows[2].1.check_uops, 2);
        assert_eq!(t.total_checks(), 5);
        assert_eq!(t.total_check_uops(), 5);
    }

    #[test]
    fn freed_ranges_still_attribute_until_reused() {
        let mut t = SiteTable::new();
        t.note_alloc(0xaa, 0x8000, 64);
        t.note_free(0x8000);
        // The dangling probe is charged to the original allocation.
        t.note_deferred(0x8010);
        t.note_fault(0x8020);
        // Reuse of the base rebinds the range to the new site.
        t.note_alloc(0xbb, 0x8000, 64);
        t.note_check(0x8010, 1, false);
        let rows: Vec<_> = t.rows().map(|(pc, c)| (pc, *c)).collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 0xaa);
        assert_eq!(rows[0].1.frees, 1);
        assert_eq!(rows[0].1.deferred_latches, 1);
        assert_eq!(rows[0].1.faults, 1);
        assert_eq!(rows[1].0, 0xbb);
        assert_eq!(rows[1].1.checks, 1);
    }

    #[test]
    fn elided_checks_attribute_separately_from_counters() {
        let mut t = SiteTable::new();
        t.note_alloc(0x100, 0x8000, 64);
        t.note_check(0x8000, 0, false);
        t.note_elided(0x8008);
        t.note_elided(0x8010);
        t.note_elided(0x7000); // outside every range → pseudo-site 0
        assert_eq!(t.elided_at(0x100), 2);
        assert_eq!(t.elided_at(0), 1);
        assert_eq!(t.total_elided(), 3);
        // The per-site counter rows are untouched by elided bookkeeping.
        let (_, c) = t.rows().find(|(pc, _)| *pc == 0x100).unwrap();
        assert_eq!(c.checks, 1);
        assert_eq!(t.total_checks(), 1);
    }

    #[test]
    fn zero_length_allocations_still_own_their_base() {
        let mut t = SiteTable::new();
        t.note_alloc(0x42, 0x8000, 0);
        assert_eq!(t.site_of(0x8000), 0x42);
        assert_eq!(t.site_of(0x8001), 0);
    }
}
