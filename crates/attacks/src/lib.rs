//! Memory-error attack scenarios for the REST reproduction.
//!
//! Each [`Attack`] builds a guest program containing a *planted secret*
//! and a memory-safety bug, runs it under a protection scheme, and
//! reports whether the violation was detected and whether the secret
//! leaked into the program's output. The suite covers:
//!
//! * the paper's motivating example (Listing 1 / Figure 1): a
//!   Heartbleed-style out-of-bounds read through an
//!   attacker-controlled `memcpy` length,
//! * linear heap overflow writes and stack overflows (the tripwire
//!   access pattern REST targets),
//! * temporal errors: use-after-free and double free,
//! * the §V-C security discussion, as executable facts: the
//!   padding-gap false negative, brute-force `disarm` probing,
//!   uninitialised-data leaks (prevented by REST's zeroed free pool),
//!   and composability with uninstrumented third-party libraries.
//!
//! # Example
//!
//! ```
//! use rest_attacks::Attack;
//! use rest_runtime::RtConfig;
//! use rest_core::Mode;
//!
//! // Heartbleed leaks under the plain build…
//! let plain = Attack::Heartbleed.run(RtConfig::plain());
//! assert!(plain.leaked_secret && !plain.detected);
//! // …and is stopped by REST.
//! let rest = Attack::Heartbleed.run(RtConfig::rest(Mode::Secure, false));
//! assert!(rest.detected && !rest.leaked_secret);
//! ```

#![forbid(unsafe_code)]

mod programs;
pub mod regress;

use rest_cpu::{Emulator, ExecEngine, SimConfig, StopReason};
use rest_isa::Program;
use rest_runtime::{RtConfig, Scheme, StackScheme};

/// The planted secret every scenario hides near its vulnerable buffer.
pub const SECRET: &[u8; 8] = b"S3CR3T!!";

/// One attack scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Attack {
    /// Listing 1: over-long `memcpy` from a heap buffer leaks adjacent
    /// secrets (read overflow — canaries don't help).
    Heartbleed,
    /// Linear heap overflow *write* walking past the end of a buffer.
    HeapOverflowWrite,
    /// Linear stack-buffer overflow write within a frame.
    StackOverflow,
    /// Read through a dangling pointer after `free`.
    UseAfterFree,
    /// `free` called twice on the same allocation.
    DoubleFree,
    /// §V-C false negative: an overflow small enough to stay inside the
    /// token-alignment padding.
    PaddingGapOverread,
    /// §V-C brute-force disarm: an attacker-controlled `disarm` gadget
    /// sweeping memory without knowing what is armed.
    BruteForceDisarm,
    /// Uninitialised-data leak through heap reuse (REST's zeroed free
    /// pool prevents this; plain/ASan reuse leaves old bytes).
    UninitLeak,
    /// Overflowing copy performed by an *uninstrumented* library
    /// routine: ASan's compile-time checks don't exist there, but REST's
    /// tokens are checked by hardware regardless of who issues the
    /// access (§V-C composability).
    UncheckedLibraryOverflow,
    /// §V-C predictability: strided probes that jump *over* redzones at
    /// the allocator's chunk stride. Undetected by every scheme unless
    /// REST's decoy-token sprinkling is enabled.
    JumpOverRedzone,
}

/// What a scheme is expected to do with an attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// The violation is detected and the program stopped.
    Detected,
    /// The attack proceeds silently (and leaks where applicable).
    Undetected,
    /// Documented false negative: undetected, but harmless here (e.g.
    /// the padding gap reads zeroes).
    FalseNegative,
    /// The attack is neutralised by construction rather than detected
    /// (e.g. REST's zeroed free pool turns an uninitialised-data leak
    /// into a read of zeroes).
    Prevented,
    /// Lock-and-key schemes with small keys (MTE's 4-bit tags): the
    /// attack is detected unless the random metadata happens to collide
    /// (1 in 16 for MTE). Either outcome is within spec, but a miss
    /// must not be *worse* than the unprotected build.
    AliasingProne,
    /// The scenario does not apply to this scheme (e.g. disarm probing
    /// without REST hardware).
    NotApplicable,
}

impl Expectation {
    /// Serialisation name (kebab-case, stable across reports).
    pub fn name(self) -> &'static str {
        match self {
            Expectation::Detected => "detected",
            Expectation::Undetected => "undetected",
            Expectation::FalseNegative => "false-negative",
            Expectation::Prevented => "prevented",
            Expectation::AliasingProne => "aliasing-prone",
            Expectation::NotApplicable => "not-applicable",
        }
    }

    /// Inverse of [`Expectation::name`], for deserialising regression
    /// sidecars (`expect <scheme> <name>` lines).
    pub fn from_name(name: &str) -> Option<Expectation> {
        Some(match name {
            "detected" => Expectation::Detected,
            "undetected" => Expectation::Undetected,
            "false-negative" => Expectation::FalseNegative,
            "prevented" => Expectation::Prevented,
            "aliasing-prone" => Expectation::AliasingProne,
            "not-applicable" => Expectation::NotApplicable,
            _ => return None,
        })
    }

    /// Whether `out` is within this expectation's spec — the single
    /// predicate [`verify`] and the defense-matrix harness both apply.
    pub fn admits(self, out: &AttackOutcome) -> bool {
        match self {
            // A *delayed* detection still counts as detected, but cannot
            // promise the secret stayed in: async MTE reports after the
            // access has gone through.
            Expectation::Detected => out.detected && (out.delayed || !out.leaked_secret),
            Expectation::Undetected => !out.detected,
            Expectation::FalseNegative | Expectation::Prevented => {
                !out.detected && !out.leaked_secret
            }
            // Either the check fired (possibly after the fact) or the
            // aliased miss at least denied the secret.
            Expectation::AliasingProne => out.detected || !out.leaked_secret,
            Expectation::NotApplicable => true,
        }
    }
}

/// Result of running one attack under one configuration.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// How the program stopped.
    pub stop: StopReason,
    /// Whether a violation was detected — immediately (the run stopped
    /// on it) or after the fact (a deferred MTE-async fault latched
    /// during the run and surfaced at program stop).
    pub detected: bool,
    /// The detection was deferred: the program ran to completion and
    /// the fault was only reported at stop (MTE async/asymm TFSR
    /// semantics). Always false when the run stopped on the violation.
    pub delayed: bool,
    /// Whether the planted secret reached the program output.
    pub leaked_secret: bool,
}

impl Attack {
    /// All scenarios.
    pub const ALL: [Attack; 10] = [
        Attack::Heartbleed,
        Attack::HeapOverflowWrite,
        Attack::StackOverflow,
        Attack::UseAfterFree,
        Attack::DoubleFree,
        Attack::PaddingGapOverread,
        Attack::BruteForceDisarm,
        Attack::UninitLeak,
        Attack::UncheckedLibraryOverflow,
        Attack::JumpOverRedzone,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Attack::Heartbleed => "heartbleed-oob-read",
            Attack::HeapOverflowWrite => "heap-overflow-write",
            Attack::StackOverflow => "stack-overflow-write",
            Attack::UseAfterFree => "use-after-free",
            Attack::DoubleFree => "double-free",
            Attack::PaddingGapOverread => "padding-gap-overread",
            Attack::BruteForceDisarm => "brute-force-disarm",
            Attack::UninitLeak => "uninit-data-leak",
            Attack::UncheckedLibraryOverflow => "unchecked-library-overflow",
            Attack::JumpOverRedzone => "jump-over-redzone",
        }
    }

    /// Builds the scenario's guest program for the given stack scheme.
    pub fn build(self, stack: StackScheme) -> Program {
        match self {
            Attack::Heartbleed => programs::heartbleed(),
            Attack::HeapOverflowWrite => programs::heap_overflow_write(),
            Attack::StackOverflow => programs::stack_overflow(stack),
            Attack::UseAfterFree => programs::use_after_free(),
            Attack::DoubleFree => programs::double_free(),
            Attack::PaddingGapOverread => programs::padding_gap_overread(),
            Attack::BruteForceDisarm => programs::brute_force_disarm(),
            Attack::UninitLeak => programs::uninit_leak(),
            Attack::UncheckedLibraryOverflow => programs::heartbleed(),
            Attack::JumpOverRedzone => programs::jump_over_redzone(),
        }
    }

    /// Expected behaviour of `scheme` against this attack, per the
    /// paper's §V analysis.
    pub fn expectation(self, scheme: Scheme) -> Expectation {
        use Attack::*;
        use Expectation::*;
        match (self, scheme) {
            (_, Scheme::Plain) => match self {
                BruteForceDisarm => NotApplicable,
                // The plain allocator has no secret to zero and no
                // checks: every attack proceeds.
                _ => Undetected,
            },
            (PaddingGapOverread, Scheme::Rest) => FalseNegative,
            // ASan's byte-precise shadow catches the padding overread
            // (its granule is 8 B, the redzone starts right after the
            // partially-valid granule).
            (PaddingGapOverread, Scheme::Asan) => Detected,
            (BruteForceDisarm, Scheme::Asan) => NotApplicable,
            (UninitLeak, Scheme::Asan) => Undetected, // ASan does not zero
            (UninitLeak, Scheme::Rest) => Prevented, // zeroed pool: no leak
            (UncheckedLibraryOverflow, Scheme::Asan) => Undetected,
            // MTE: every heap access is a 4-bit lock-and-key check, so
            // the spatial and temporal heap attacks are caught unless
            // the random tags alias (1/16). The 16-byte granule also
            // covers most of what REST's 64-byte alignment pad gives
            // away, and tagged pointers break the stride arithmetic of
            // redzone-jumping (ptr subtraction mixes tag bits).
            (StackOverflow, Scheme::Mte) => Undetected, // heap-only tags
            (UninitLeak, Scheme::Mte) => Undetected,    // MTE does not zero
            (BruteForceDisarm, Scheme::Mte) => NotApplicable,
            (_, Scheme::Mte) => AliasingProne,
            // PA: the 8-bit PAC over (base, generation) authenticates
            // every dereference against the live-allocation registry —
            // deterministic detection for the heap attacks, including
            // the padding overread (the registry is granule-exact, so
            // reads past the padded area fail authentication).
            (StackOverflow, Scheme::Pa) => Undetected, // heap pointers only
            (UninitLeak, Scheme::Pa) => Undetected,    // fresh signature, old bytes
            (BruteForceDisarm, Scheme::Pa) => NotApplicable,
            (PaddingGapOverread, Scheme::Pa) => Detected,
            (_, Scheme::Pa) => Detected,
            // Both redzone schemes share the predictability weakness:
            // probes that leap the redzones land in valid neighbouring
            // data (countered by REST's sprinkling, tested separately).
            (JumpOverRedzone, _) => Undetected,
            _ => Detected,
        }
    }

    /// The per-scenario runtime adjustments applied before a run: the
    /// library overflow models an *uninstrumented* routine (libc
    /// interception off) and the uninit leak forces heap reuse within
    /// the run (tiny quarantine). [`Attack::run`] and the bench
    /// defense-matrix harness both apply this, so the two measurement
    /// paths stage the same scenario.
    pub fn rt_for(self, rt: RtConfig) -> RtConfig {
        match self {
            // Model an uninstrumented library: interception off.
            Attack::UncheckedLibraryOverflow => RtConfig {
                intercept_libc: false,
                ..rt
            },
            // Force heap reuse within the run (any freed chunk exceeds
            // this budget and is recycled immediately).
            Attack::UninitLeak => rt.with_quarantine(64),
            _ => rt,
        }
    }

    /// Runs the scenario under `rt` (functionally) and reports the
    /// outcome. Stack protection follows the configuration's scheme and
    /// scope.
    pub fn run(self, rt: RtConfig) -> AttackOutcome {
        let stack = if rt.stack_protection {
            match rt.scheme {
                Scheme::Plain => StackScheme::None,
                Scheme::Asan => StackScheme::Asan,
                Scheme::Rest => StackScheme::Rest,
                // Heap-granule schemes: no stack instrumentation.
                Scheme::Mte | Scheme::Pa => StackScheme::None,
            }
        } else {
            StackScheme::None
        };
        let rt = self.rt_for(rt);
        let program = self.build(stack);
        let cfg = SimConfig::isca2018(rt);
        let mut emu = Emulator::new(program, &cfg);
        emu.run_functional();
        let stop = emu.take_stop().expect("run_functional stops");
        let delayed = emu.take_deferred().is_some();
        let detected = matches!(stop, StopReason::Violation(_)) || delayed;
        let output = emu.runtime().output().to_vec();
        let leaked_secret = output
            .windows(SECRET.len())
            .any(|w| w == SECRET.as_slice());
        AttackOutcome {
            stop,
            detected,
            delayed,
            leaked_secret,
        }
    }
}

impl std::fmt::Display for Attack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Convenience for harnesses: checks one attack under one config against
/// the paper's expectation, returning a human-readable verdict line.
pub fn verify(attack: Attack, rt: RtConfig) -> Result<String, String> {
    let scheme = rt.scheme;
    let expect = attack.expectation(scheme);
    if expect == Expectation::NotApplicable {
        return Ok(format!("{attack}: n/a under {}", scheme.name()));
    }
    let out = attack.run(rt);
    let ok = expect.admits(&out);
    let line = format!(
        "{attack}: scheme={} expected={expect:?} detected={} delayed={} leaked={}",
        scheme.name(),
        out.detected,
        out.delayed,
        out.leaked_secret
    );
    if ok {
        Ok(line)
    } else {
        Err(format!("{line} stop={:?}", out.stop))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rest_core::Mode;
    use rest_core::RestExceptionKind;
    use rest_runtime::Violation;

    #[test]
    fn jump_over_redzone_beats_redzones_but_not_sprinkling() {
        // The strided probe leaks under plain, ASan, and vanilla REST…
        for cfg in [
            RtConfig::plain(),
            RtConfig::asan(),
            RtConfig::rest(Mode::Secure, false),
        ] {
            let out = Attack::JumpOverRedzone.run(cfg.clone());
            assert!(!out.detected, "{}: {:?}", cfg.label(), out.stop);
            assert!(out.leaked_secret, "{}: probe must reach the secret", cfg.label());
        }
        // …but decoy sprinkling (§V-C) breaks the stride lattice.
        let out = Attack::JumpOverRedzone.run(RtConfig::rest(Mode::Secure, false).with_sprinkle());
        assert!(
            !out.leaked_secret,
            "sprinkling must deny the secret: {:?}",
            out.stop
        );
        assert!(out.detected, "a probe must land on a decoy: {:?}", out.stop);
    }

    fn rest_full() -> RtConfig {
        RtConfig::rest(Mode::Secure, true)
    }

    #[test]
    fn heartbleed_matrix() {
        let plain = Attack::Heartbleed.run(RtConfig::plain());
        assert!(!plain.detected, "{:?}", plain.stop);
        assert!(plain.leaked_secret, "plain build must leak");

        let asan = Attack::Heartbleed.run(RtConfig::asan());
        assert!(asan.detected && !asan.leaked_secret, "{:?}", asan.stop);

        let rest = Attack::Heartbleed.run(rest_full());
        assert!(rest.detected && !rest.leaked_secret, "{:?}", rest.stop);
    }

    #[test]
    fn heap_overflow_write_matrix() {
        assert!(!Attack::HeapOverflowWrite.run(RtConfig::plain()).detected);
        assert!(Attack::HeapOverflowWrite.run(RtConfig::asan()).detected);
        let rest = Attack::HeapOverflowWrite.run(rest_full());
        assert!(rest.detected);
        match rest.stop {
            StopReason::Violation(Violation::Rest(e)) => {
                assert_eq!(e.kind, RestExceptionKind::TokenStore);
            }
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stack_overflow_needs_full_protection() {
        // Heap-only REST misses stack smashing…
        let heap_only = Attack::StackOverflow.run(RtConfig::rest(Mode::Secure, false));
        assert!(!heap_only.detected, "{:?}", heap_only.stop);
        // …full REST catches it.
        let full = Attack::StackOverflow.run(rest_full());
        assert!(full.detected, "{:?}", full.stop);
        // ASan full catches it as a stack redzone.
        let asan = Attack::StackOverflow.run(RtConfig::asan());
        assert!(asan.detected, "{:?}", asan.stop);
    }

    #[test]
    fn temporal_errors_matrix() {
        for attack in [Attack::UseAfterFree, Attack::DoubleFree] {
            assert!(!attack.run(RtConfig::plain()).detected, "{attack}");
            assert!(attack.run(RtConfig::asan()).detected, "{attack}");
            assert!(attack.run(rest_full()).detected, "{attack}");
        }
        // The plain use-after-free actually leaks the secret.
        assert!(Attack::UseAfterFree.run(RtConfig::plain()).leaked_secret);
    }

    #[test]
    fn padding_gap_is_rest_false_negative_but_asan_detects() {
        let rest = Attack::PaddingGapOverread.run(rest_full());
        assert!(!rest.detected, "{:?}", rest.stop);
        assert!(!rest.leaked_secret, "pad must read zeroes, not secrets");
        let asan = Attack::PaddingGapOverread.run(RtConfig::asan());
        assert!(asan.detected, "{:?}", asan.stop);
    }

    #[test]
    fn brute_force_disarm_raises_immediately() {
        let rest = Attack::BruteForceDisarm.run(rest_full());
        assert!(rest.detected);
        match rest.stop {
            StopReason::Violation(Violation::Rest(e)) => {
                assert_eq!(e.kind, RestExceptionKind::DisarmUnarmed);
            }
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn uninit_leak_prevented_only_by_rest() {
        let plain = Attack::UninitLeak.run(RtConfig::plain());
        assert!(plain.leaked_secret, "plain reuse leaks: {:?}", plain.stop);
        let asan = Attack::UninitLeak.run(RtConfig::asan());
        assert!(
            asan.leaked_secret,
            "ASan does not zero reused chunks: {:?}",
            asan.stop
        );
        let rest = Attack::UninitLeak.run(RtConfig::rest(Mode::Secure, false));
        assert!(
            !rest.leaked_secret && !rest.detected,
            "REST's zeroed free pool reads back zeroes: {:?}",
            rest.stop
        );
    }

    #[test]
    fn unchecked_library_is_caught_by_rest_not_asan() {
        let asan = Attack::UncheckedLibraryOverflow.run(RtConfig::asan());
        assert!(
            !asan.detected && asan.leaked_secret,
            "uninstrumented library bypasses ASan: {:?}",
            asan.stop
        );
        let rest = Attack::UncheckedLibraryOverflow.run(rest_full());
        assert!(rest.detected && !rest.leaked_secret, "{:?}", rest.stop);
    }

    #[test]
    fn verify_matrix_is_consistent() {
        use rest_core::MteMode;
        use rest_runtime::Scheme;
        for attack in Attack::ALL {
            for (scheme, cfg) in [
                (Scheme::Plain, RtConfig::plain()),
                (Scheme::Asan, RtConfig::asan()),
                (Scheme::Rest, rest_full()),
                (Scheme::Mte, RtConfig::mte(MteMode::Sync)),
                (Scheme::Mte, RtConfig::mte(MteMode::Async)),
                (Scheme::Mte, RtConfig::mte(MteMode::Asymm)),
                (Scheme::Pa, RtConfig::pa()),
            ] {
                let _ = scheme;
                if let Err(e) = verify(attack, cfg.clone()) {
                    panic!("expectation mismatch: {e}");
                }
            }
        }
    }

    #[test]
    fn mte_catches_heap_overflow_with_tag_mismatch() {
        use rest_core::MteMode;
        let out = Attack::HeapOverflowWrite.run(RtConfig::mte(MteMode::Sync));
        assert!(out.detected, "{:?}", out.stop);
        assert!(!out.delayed, "sync mode stops at the access");
        match out.stop {
            StopReason::Violation(Violation::Tag(f)) => {
                assert_ne!(f.ptr_tag, f.mem_tag);
                assert!(f.precise);
            }
            ref other => panic!("expected tag fault, got {other:?}"),
        }
    }

    #[test]
    fn pa_catches_spatial_and_temporal_heap_errors() {
        for attack in [
            Attack::Heartbleed,
            Attack::HeapOverflowWrite,
            Attack::UseAfterFree,
            Attack::DoubleFree,
        ] {
            let out = attack.run(RtConfig::pa());
            assert!(out.detected, "{attack}: {:?}", out.stop);
            assert!(!out.leaked_secret, "{attack} must not leak");
            assert!(
                matches!(out.stop, StopReason::Violation(Violation::Pac(_))),
                "{attack}: {:?}",
                out.stop
            );
        }
    }

    #[test]
    fn pa_granularity_beats_rests_padding_gap() {
        // The overread that slips inside REST's 64-byte alignment pad
        // (§V-C) crosses the PA registry's 16-byte granule boundary and
        // fails authentication.
        let out = Attack::PaddingGapOverread.run(RtConfig::pa());
        assert!(out.detected, "{:?}", out.stop);
    }

    #[test]
    fn mte_sync_and_async_flag_the_same_attacks() {
        // Lockstep differential: the tag *stream* is seeded identically
        // in both modes, so the set of flagged attacks must be equal —
        // only the timing (stop-at-access vs report-at-exit) and the
        // leak window may differ.
        use rest_core::MteMode;
        for attack in Attack::ALL {
            if attack.expectation(Scheme::Mte) == Expectation::NotApplicable {
                continue;
            }
            let sync = attack.run(RtConfig::mte(MteMode::Sync));
            let async_ = attack.run(RtConfig::mte(MteMode::Async));
            assert_eq!(
                sync.detected, async_.detected,
                "{attack}: sync={:?} async={:?}",
                sync.stop, async_.stop
            );
            if sync.detected {
                // Sync stops the program at the faulting access…
                assert!(
                    matches!(sync.stop, StopReason::Violation(Violation::Tag(_))),
                    "{attack}: {:?}",
                    sync.stop
                );
                assert!(!sync.delayed);
                // …async lets it run and reports at stop.
                assert!(async_.delayed, "{attack}: {:?}", async_.stop);
                assert!(
                    !matches!(async_.stop, StopReason::Violation(_)),
                    "{attack}: async must not stop on the access: {:?}",
                    async_.stop
                );
            }
        }
    }

    #[test]
    fn mte_async_widens_the_leak_window() {
        // The paper-level async trade-off as an executable fact: the
        // same Heartbleed run is flagged by both modes, but only sync
        // stops the exfiltration before the secret leaves.
        use rest_core::MteMode;
        let sync = Attack::Heartbleed.run(RtConfig::mte(MteMode::Sync));
        let async_ = Attack::Heartbleed.run(RtConfig::mte(MteMode::Async));
        assert!(sync.detected && !sync.leaked_secret, "{:?}", sync.stop);
        assert!(async_.detected && async_.delayed, "{:?}", async_.stop);
        assert!(
            async_.leaked_secret,
            "async detection is post-hoc: the copy already ran"
        );
    }
}
