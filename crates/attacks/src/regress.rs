//! Minimized regression corpus: reproducers emitted by the fuzz
//! campaign (`fuzz --emit-regress`), replayed through the same
//! [`Expectation::admits`] judging as the ten curated attacks. The
//! defense-matrix and elision campaigns load this corpus
//! automatically, so every minimized fuzzer find becomes a permanent
//! regression test the moment its files land in the tree.
//!
//! On-disk format — one case is a pair of files under
//! `tests/regress/` at the repository root:
//!
//! * `<name>.s` — the minimized guest assembly,
//! * `<name>.trace` — sidecar with `#` comment lines, `op <line>`
//!   rows documenting the originating allocator trace, and
//!   `expect <scheme-label> <expectation-name>` rows recording the
//!   empirical per-scheme verdict at emission time.
//!
//! The expectations are *measured*, not guessed: the emitter runs the
//! reproducer under every defense scheme and writes down what
//! happened, so a later behaviour change in any layer (allocator,
//! emulator, protection backend) flips `admits` and fails the
//! campaign.

use std::fs;
use std::path::{Path, PathBuf};

use rest_cpu::{Emulator, ExecEngine, SimConfig, StopReason};
use rest_runtime::RtConfig;

use crate::{AttackOutcome, Expectation, SECRET};

/// One minimized reproducer loaded from the corpus.
#[derive(Debug, Clone)]
pub struct RegressCase {
    /// File stem, e.g. `oob-write--agree-detected`.
    pub name: String,
    /// Guest assembly source (contents of `<name>.s`).
    pub asm: String,
    /// Originating allocator-trace lines (documentation only; the
    /// assembly is the replayed artifact).
    pub ops: Vec<String>,
    /// Per-scheme expectations in sidecar order.
    pub expectations: Vec<(String, Expectation)>,
}

impl RegressCase {
    /// Expectation recorded for a scheme label; `NotApplicable` when
    /// the sidecar has no row for it (new schemes added after the case
    /// was emitted are not retroactively constrained).
    pub fn expectation(&self, scheme: &str) -> Expectation {
        self.expectations
            .iter()
            .find(|(s, _)| s == scheme)
            .map(|&(_, e)| e)
            .unwrap_or(Expectation::NotApplicable)
    }
}

/// `tests/regress/` at the repository root, resolved from this crate's
/// manifest so it works from any working directory.
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/regress")
}

/// Loads every `<name>.s` + `<name>.trace` pair in `dir`, sorted by
/// name. A `.s` without its sidecar (or vice versa), an unknown
/// sidecar line, or an unknown expectation name is an error — a
/// half-committed reproducer must fail loudly, not silently shrink
/// the corpus.
pub fn load_dir(dir: &Path) -> Result<Vec<RegressCase>, String> {
    let mut stems: Vec<String> = Vec::new();
    let entries =
        fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| format!("{}: {e}", dir.display()))?.path();
        match path.extension().and_then(|e| e.to_str()) {
            Some("s") => {
                let stem = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .ok_or_else(|| format!("{}: non-utf8 name", path.display()))?;
                stems.push(stem.to_string());
            }
            Some("trace") => {
                let sibling = path.with_extension("s");
                if !sibling.is_file() {
                    return Err(format!(
                        "{}: sidecar without its .s program",
                        path.display()
                    ));
                }
            }
            _ => {}
        }
    }
    stems.sort();
    let mut cases = Vec::with_capacity(stems.len());
    for stem in stems {
        cases.push(load_case(dir, &stem)?);
    }
    Ok(cases)
}

fn load_case(dir: &Path, stem: &str) -> Result<RegressCase, String> {
    let asm_path = dir.join(format!("{stem}.s"));
    let trace_path = dir.join(format!("{stem}.trace"));
    let asm = fs::read_to_string(&asm_path)
        .map_err(|e| format!("{}: {e}", asm_path.display()))?;
    let trace = fs::read_to_string(&trace_path)
        .map_err(|e| format!("{}: {e}", trace_path.display()))?;
    let mut ops = Vec::new();
    let mut expectations: Vec<(String, Expectation)> = Vec::new();
    for raw in trace.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(op) = line.strip_prefix("op ") {
            ops.push(op.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("expect ") {
            let mut it = rest.split_whitespace();
            let scheme = it
                .next()
                .ok_or_else(|| format!("{stem}.trace: bare expect line"))?;
            let name = it.next().ok_or_else(|| {
                format!("{stem}.trace: expect {scheme} has no verdict")
            })?;
            let expect = Expectation::from_name(name).ok_or_else(|| {
                format!("{stem}.trace: unknown expectation {name:?}")
            })?;
            if it.next().is_some() {
                return Err(format!(
                    "{stem}.trace: trailing tokens on expect line {line:?}"
                ));
            }
            if expectations.iter().any(|(s, _)| s == scheme) {
                return Err(format!(
                    "{stem}.trace: duplicate expect row for {scheme}"
                ));
            }
            expectations.push((scheme.to_string(), expect));
        } else {
            return Err(format!("{stem}.trace: unrecognised line {line:?}"));
        }
    }
    if expectations.is_empty() {
        return Err(format!("{stem}.trace: no expect rows"));
    }
    Ok(RegressCase {
        name: stem.to_string(),
        asm,
        ops,
        expectations,
    })
}

/// The committed corpus. `Ok(vec![])` when `tests/regress/` does not
/// exist yet (pre-seed trees); any malformed file is an `Err`.
pub fn corpus() -> Result<Vec<RegressCase>, String> {
    let dir = corpus_dir();
    if !dir.is_dir() {
        return Ok(Vec::new());
    }
    load_dir(&dir)
}

/// Functionally replays a case under `rt` and derives an
/// [`AttackOutcome`] exactly the way [`crate::Attack::run`] does, so
/// [`Expectation::admits`] judges both with one predicate.
pub fn replay(case: &RegressCase, rt: RtConfig) -> Result<AttackOutcome, String> {
    let program = rest_isa::parse_asm(&case.asm)
        .map_err(|e| format!("{}: {e:?}", case.name))?;
    let cfg = SimConfig::isca2018(rt);
    let mut emu = Emulator::new(program, &cfg);
    emu.run_functional();
    let stop = emu
        .take_stop()
        .ok_or_else(|| format!("{}: run did not stop", case.name))?;
    let delayed = emu.take_deferred().is_some();
    let detected = matches!(stop, StopReason::Violation(_)) || delayed;
    let leaked_secret = emu
        .runtime()
        .output()
        .windows(SECRET.len())
        .any(|w| w == SECRET.as_slice());
    Ok(AttackOutcome {
        stop,
        detected,
        delayed,
        leaked_secret,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expectation_names_round_trip() {
        for e in [
            Expectation::Detected,
            Expectation::Undetected,
            Expectation::FalseNegative,
            Expectation::Prevented,
            Expectation::AliasingProne,
            Expectation::NotApplicable,
        ] {
            assert_eq!(Expectation::from_name(e.name()), Some(e));
        }
        assert_eq!(Expectation::from_name("bogus"), None);
    }

    #[test]
    fn sidecar_parse_rejects_malformed_lines() {
        let dir = std::env::temp_dir().join("rest-regress-parse-test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("case.s"), "halt\n").unwrap();
        fs::write(
            dir.join("case.trace"),
            "# header\nop malloc slot=3 size=8\nexpect plain undetected\n",
        )
        .unwrap();
        let cases = load_dir(&dir).unwrap();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].ops, ["malloc slot=3 size=8"]);
        assert_eq!(
            cases[0].expectation("plain"),
            Expectation::Undetected
        );
        assert_eq!(
            cases[0].expectation("never-heard-of-it"),
            Expectation::NotApplicable
        );

        fs::write(dir.join("case.trace"), "expect plain what-is-this\n").unwrap();
        assert!(load_dir(&dir).unwrap_err().contains("unknown expectation"));
        fs::write(dir.join("case.trace"), "verdicts go here\n").unwrap();
        assert!(load_dir(&dir).unwrap_err().contains("unrecognised line"));
        fs::write(dir.join("case.trace"), "# only comments\n").unwrap();
        assert!(load_dir(&dir).unwrap_err().contains("no expect rows"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn committed_corpus_loads_parses_and_replays_within_spec() {
        let cases = corpus().expect("corpus must load");
        assert!(
            !cases.is_empty(),
            "tests/regress/ must hold at least one minimized reproducer"
        );
        for case in &cases {
            rest_isa::parse_asm(&case.asm)
                .unwrap_or_else(|e| panic!("{}: {e:?}", case.name));
            assert!(
                !case.expectations.is_empty(),
                "{}: empty expectations",
                case.name
            );
            for (scheme, expect) in &case.expectations {
                let rt = RtConfig::from_label(scheme)
                    .unwrap_or_else(|| panic!("{}: unknown scheme {scheme}", case.name));
                let out = replay(case, rt).unwrap();
                assert!(
                    expect.admits(&out),
                    "{} under {scheme}: expected {} but got \
                     detected={} delayed={} leaked={} stop={:?}",
                    case.name,
                    expect.name(),
                    out.detected,
                    out.delayed,
                    out.leaked_secret,
                    out.stop
                );
            }
        }
    }
}
