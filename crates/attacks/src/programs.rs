//! Guest programs for the attack scenarios.
//!
//! Every program plants [`SECRET`](crate::SECRET) somewhere an attacker
//! should not be able to read, triggers its bug, and attempts to
//! exfiltrate what it read through `PutChar` — so leak detection is
//! end-to-end, not inferred.

use rest_core::TokenWidth;
use rest_isa::{EcallNum, MemSize, Program, ProgramBuilder, Reg};
use rest_runtime::{FrameGuard, StackScheme};

use crate::SECRET;

fn secret_imm() -> i64 {
    i64::from_le_bytes(*SECRET)
}

fn startup(stack: StackScheme) -> (ProgramBuilder, FrameGuard) {
    let guard = FrameGuard::new(stack, TokenWidth::B64);
    let mut p = ProgramBuilder::new();
    guard.emit_startup(&mut p);
    (p, guard)
}

fn exit0(mut p: ProgramBuilder) -> Program {
    p.li(Reg::A0, 0);
    p.ecall(EcallNum::Exit);
    p.build()
}

/// Emits: `putchar` every byte of `[base, base+len)`. Clobbers
/// `A0`, `A7`, `T0`, `T1`.
fn exfil_region(p: &mut ProgramBuilder, base: Reg, len: i64) {
    p.li(Reg::T0, 0);
    let lp = p.label_here();
    p.add(Reg::T1, base, Reg::T0);
    p.load(Reg::A0, Reg::T1, 0, MemSize::B1);
    p.ecall(EcallNum::PutChar);
    p.addi(Reg::T0, Reg::T0, 1);
    p.li(Reg::T1, len);
    p.blt(Reg::T0, Reg::T1, lp);
}

/// Listing 1: benign request buffer, adjacent secrets, and a `memcpy`
/// whose length the attacker controls.
pub fn heartbleed() -> Program {
    let (mut p, _) = startup(StackScheme::None);
    // Request buffer (the benign payload).
    p.li(Reg::A0, 64);
    p.ecall(EcallNum::Malloc);
    p.mv(Reg::S0, Reg::A0);
    // Fill it with 'A' via its own stores (in-bounds, must not trip).
    p.li(Reg::T2, b'A' as i64);
    p.li(Reg::T0, 0);
    let fill = p.label_here();
    p.add(Reg::T1, Reg::S0, Reg::T0);
    p.store(Reg::T2, Reg::T1, 0, MemSize::B1);
    p.addi(Reg::T0, Reg::T0, 1);
    p.li(Reg::T1, 64);
    p.blt(Reg::T0, Reg::T1, fill);
    // Sensitive data (keys, credentials) allocated next.
    p.li(Reg::A0, 64);
    p.ecall(EcallNum::Malloc);
    p.mv(Reg::S1, Reg::A0);
    p.li(Reg::T0, secret_imm());
    p.sd(Reg::T0, Reg::S1, 0);
    // Response buffer.
    p.li(Reg::A0, 4096);
    p.ecall(EcallNum::Malloc);
    p.mv(Reg::S2, Reg::A0);
    // The bug: attacker-controlled payload length of 2048.
    p.mv(Reg::A0, Reg::S2);
    p.mv(Reg::A1, Reg::S0);
    p.li(Reg::A2, 2048);
    p.ecall(EcallNum::Memcpy);
    // Send the "response" to the client.
    exfil_region(&mut p, Reg::S2, 2048);
    exit0(p)
}

/// Linear heap overflow write: walks stores past the end of a 64-byte
/// allocation (the sweeping pattern tripwires are designed for).
pub fn heap_overflow_write() -> Program {
    let (mut p, _) = startup(StackScheme::None);
    p.li(Reg::A0, 64);
    p.ecall(EcallNum::Malloc);
    p.mv(Reg::S0, Reg::A0);
    p.li(Reg::T0, 0);
    let lp = p.label_here();
    p.add(Reg::T1, Reg::S0, Reg::T0);
    p.sd(Reg::T0, Reg::T1, 0);
    p.addi(Reg::T0, Reg::T0, 8);
    p.li(Reg::T1, 512);
    p.blt(Reg::T0, Reg::T1, lp);
    exit0(p)
}

/// Stack-buffer overflow inside a protected frame.
pub fn stack_overflow(stack: StackScheme) -> Program {
    let (mut p, guard) = startup(stack);
    let f = p.new_label();
    let done = p.new_label();
    p.call(f);
    p.j(done);
    p.bind(f);
    let layout = guard.layout(&[16], 16);
    let boff = layout.buffers[0].offset as i64;
    guard.emit_prologue(&mut p, &layout);
    p.sd(Reg::RA, Reg::SP, 0);
    // The bug: write 0..160 bytes into a 16-byte buffer.
    p.li(Reg::T0, 0);
    let lp = p.label_here();
    p.addi(Reg::T1, Reg::SP, boff);
    p.add(Reg::T1, Reg::T1, Reg::T0);
    p.store(Reg::T0, Reg::T1, 0, MemSize::B1);
    p.addi(Reg::T0, Reg::T0, 1);
    p.li(Reg::T1, 160);
    p.blt(Reg::T0, Reg::T1, lp);
    p.ld(Reg::RA, Reg::SP, 0);
    guard.emit_epilogue(&mut p, &layout);
    p.ret();
    p.bind(done);
    exit0(p)
}

/// Use-after-free read of a freed secret-holding chunk.
pub fn use_after_free() -> Program {
    let (mut p, _) = startup(StackScheme::None);
    p.li(Reg::A0, 64);
    p.ecall(EcallNum::Malloc);
    p.mv(Reg::S0, Reg::A0);
    p.li(Reg::T0, secret_imm());
    p.sd(Reg::T0, Reg::S0, 0);
    p.mv(Reg::A0, Reg::S0);
    p.ecall(EcallNum::Free);
    // Dangling read + exfiltration.
    exfil_region(&mut p, Reg::S0, 8);
    exit0(p)
}

/// Double free, followed by the aliasing exploitation it enables on a
/// plain allocator.
pub fn double_free() -> Program {
    let (mut p, _) = startup(StackScheme::None);
    p.li(Reg::A0, 64);
    p.ecall(EcallNum::Malloc);
    p.mv(Reg::S0, Reg::A0);
    p.mv(Reg::A0, Reg::S0);
    p.ecall(EcallNum::Free);
    p.mv(Reg::A0, Reg::S0);
    p.ecall(EcallNum::Free); // hardened allocators stop here
    // Plain allocator: the corrupted bin now hands out the same chunk
    // twice; "two" objects alias.
    p.li(Reg::A0, 64);
    p.ecall(EcallNum::Malloc);
    p.mv(Reg::S1, Reg::A0); // victim object
    p.li(Reg::A0, 64);
    p.ecall(EcallNum::Malloc);
    p.mv(Reg::S2, Reg::A0); // attacker object — same address
    p.li(Reg::T0, secret_imm());
    p.sd(Reg::T0, Reg::S1, 0); // victim writes its secret
    exfil_region(&mut p, Reg::S2, 8); // attacker reads it back
    exit0(p)
}

/// §V-C false negative: overread just past a 100-byte allocation. Under
/// 64 B tokens the pad runs to byte 128, so a 16-byte read at offset 100
/// stays inside the (zeroed) pad and goes undetected; under 16 B tokens
/// the pad ends at byte 112 and the same read hits a token. Nothing
/// leaks either way.
pub fn padding_gap_overread() -> Program {
    let (mut p, _) = startup(StackScheme::None);
    p.li(Reg::A0, 100);
    p.ecall(EcallNum::Malloc);
    p.mv(Reg::S0, Reg::A0);
    // A secret elsewhere on the heap (must stay unreachable).
    p.li(Reg::A0, 64);
    p.ecall(EcallNum::Malloc);
    p.li(Reg::T0, secret_imm());
    p.sd(Reg::T0, Reg::A0, 0);
    // Overread 16 bytes at offset 100: inside the 64 B-token pad, but
    // crossing the 16 B-token boundary at offset 112.
    p.addi(Reg::S1, Reg::S0, 100);
    exfil_region(&mut p, Reg::S1, 16);
    exit0(p)
}

/// §V-C brute-force disarm: the attacker controls a disarm gadget but
/// not the knowledge of which locations are armed; the first disarm of
/// an unarmed location raises.
pub fn brute_force_disarm() -> Program {
    let (mut p, _) = startup(StackScheme::None);
    // Defender arms one slot of a mapped region.
    p.li(Reg::A0, 1024);
    p.ecall(EcallNum::Sbrk);
    p.mv(Reg::S0, Reg::A0);
    // Align to the token width.
    p.addi(Reg::S0, Reg::S0, 63);
    p.li(Reg::T0, !63i64);
    p.and(Reg::S0, Reg::S0, Reg::T0);
    p.arm(Reg::S0);
    // Attacker sweeps disarms from an offset it guesses.
    p.addi(Reg::S1, Reg::S0, 64);
    p.li(Reg::T0, 8);
    let lp = p.label_here();
    p.disarm(Reg::S1); // unarmed -> REST exception
    p.addi(Reg::S1, Reg::S1, 64);
    p.addi(Reg::T0, Reg::T0, -1);
    p.bne(Reg::T0, Reg::ZERO, lp);
    exit0(p)
}

/// Uninitialised-data leak through allocator reuse: a freed
/// secret-holding chunk is recycled into a fresh allocation that the
/// attacker reads without writing.
pub fn uninit_leak() -> Program {
    let (mut p, _) = startup(StackScheme::None);
    // Victim: secret in a 64-byte chunk, then freed.
    p.li(Reg::A0, 64);
    p.ecall(EcallNum::Malloc);
    p.mv(Reg::S0, Reg::A0);
    p.li(Reg::T0, secret_imm());
    p.sd(Reg::T0, Reg::S0, 0);
    p.mv(Reg::A0, Reg::S0);
    p.ecall(EcallNum::Free);
    // Attacker: allocate the same size class and read it uninitialised.
    // (The harness shrinks the quarantine so reuse happens immediately.)
    p.li(Reg::A0, 64);
    p.ecall(EcallNum::Malloc);
    p.mv(Reg::S1, Reg::A0);
    exfil_region(&mut p, Reg::S1, 8);
    exit0(p)
}

/// §V-C predictability weakness: the attacker jumps *over* the redzones
/// by probing at the allocator's (discoverable) chunk stride, reading the
/// user areas of neighbouring allocations without ever touching a token.
/// Works against plain, ASan, and unsprinkled REST; decoy-token
/// sprinkling breaks the stride lattice.
pub fn jump_over_redzone() -> Program {
    let (mut p, _) = startup(StackScheme::None);
    // A row of same-size allocations; the 6th holds the secret.
    // ptrs[0] -> S0, ptrs[1] -> S2 (to compute the stride), ptrs[6] -> S3.
    for i in 0..8 {
        p.li(Reg::A0, 64);
        p.ecall(EcallNum::Malloc);
        match i {
            0 => {
                p.mv(Reg::S0, Reg::A0);
            }
            1 => {
                p.mv(Reg::S2, Reg::A0);
            }
            6 => {
                p.mv(Reg::S3, Reg::A0);
            }
            _ => {}
        }
    }
    p.li(Reg::T0, secret_imm());
    p.sd(Reg::T0, Reg::S3, 0);
    // Attacker: stride = ptrs[1] - ptrs[0] (heap feng shui), then probe
    // victim + k*stride for k = 1..8, exfiltrating each probe.
    p.sub(Reg::S4, Reg::S2, Reg::S0);
    p.li(Reg::S5, 1);
    let probe = p.label_here();
    p.mul(Reg::T1, Reg::S4, Reg::S5);
    p.add(Reg::S1, Reg::S0, Reg::T1);
    exfil_region(&mut p, Reg::S1, 8);
    p.addi(Reg::S5, Reg::S5, 1);
    p.li(Reg::T0, 9);
    p.blt(Reg::S5, Reg::T0, probe);
    exit0(p)
}
