//! The repository commits `results/BENCH_baseline.json` — the host
//! wall-time profile of a `fig7 --test` run — as the perf-trajectory
//! baseline the ROADMAP's optimisation work diffs against. This test
//! keeps the committed file schema-valid so the CI observability job
//! (and future tooling) can always parse it.

use rest_obs::{HostProfile, Json};

#[test]
fn committed_baseline_is_schema_valid() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_baseline.json"
    );
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("results/BENCH_baseline.json must be committed: {e}"));
    let doc = Json::parse(&text).expect("baseline parses as JSON");
    HostProfile::validate(&doc).expect("baseline matches rest-host-profile/v1");
    assert_eq!(
        doc.get("experiment").and_then(Json::as_str),
        Some("fig7"),
        "the baseline is a fig7 profile"
    );
    // A real profile: at least the simulate phase and one job.
    let phases = doc.get("phases").and_then(Json::as_arr).unwrap();
    assert!(phases
        .iter()
        .any(|p| p.get("name").and_then(Json::as_str) == Some("simulate")));
    let jobs = doc.get("jobs").and_then(Json::as_arr).unwrap();
    assert!(!jobs.is_empty(), "baseline records per-job timings");
}
