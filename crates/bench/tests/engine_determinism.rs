//! Engine-level guarantees the harness binaries rely on:
//!
//! * the serialised JSON document is **byte-identical** regardless of
//!   the worker count (`--jobs 1` vs `--jobs 4`),
//! * a failing job surfaces as a structured `JobError` without taking
//!   down sibling jobs in the same sweep.

use rest_bench::cli::BenchCli;
use rest_bench::engine::{ColumnSpec, CoreKind, Engine, MatrixSpec, SimJob};
use rest_bench::sink::ResultSink;
use rest_bench::FigureRow;
use rest_core::Mode;
use rest_runtime::RtConfig;
use rest_workloads::{Scale, Workload};

fn test_cli() -> BenchCli {
    BenchCli {
        experiment: "engine-test".to_string(),
        scale: Scale::Test,
        jobs: 1,
        json: None,
        filter: None,
        sample_interval: 0,
        trace_out: None,
        trace_uops: 512,
        profile_out: None,
        telemetry_out: None,
        campaign_trace_out: None,
        verify: false,
        reference: false,
        trace: false,
        resume: false,
        ckpt: None,
        max_cells: None,
        fault_seed: BenchCli::DEFAULT_FAULT_SEED,
        fuzz_seed: BenchCli::DEFAULT_FUZZ_SEED,
        round_size: 2500,
        min_programs: 10_000,
        emit_regress: None,
    }
}

fn small_matrix() -> MatrixSpec {
    MatrixSpec::new(
        vec![FigureRow::of(Workload::Lbm), FigureRow::of(Workload::Sjeng)],
        vec![
            ColumnSpec::new("asan", RtConfig::asan()),
            ColumnSpec::new("rest-secure-full", RtConfig::rest(Mode::Secure, true)),
        ],
        Scale::Test,
    )
}

fn render(matrix: &rest_bench::engine::MatrixResults) -> String {
    let mut sink = ResultSink::new(&test_cli());
    sink.push_matrix("matrix", matrix);
    sink.to_json_string()
}

#[test]
fn json_is_byte_identical_across_worker_counts() {
    let spec = small_matrix();
    let sequential = render(&Engine::new(1).run_matrix(&spec));
    let parallel = render(&Engine::new(4).run_matrix(&spec));
    assert!(
        sequential.contains("\"benchmark\": \"lbm\""),
        "document should contain the lbm row:\n{sequential}"
    );
    assert!(sequential.contains("\"overhead_pct\""));
    assert!(sequential.contains("\"wtd_ari_mean_pct\""));
    assert_eq!(
        sequential, parallel,
        "JSON must not depend on worker scheduling"
    );
}

#[test]
fn failing_job_does_not_kill_siblings() {
    let row = FigureRow::of(Workload::Lbm);
    let healthy = SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test);
    let starved = SimJob {
        label: "starved".to_string(),
        // A ~hundred-kiloinstruction workload cannot finish in 40 µops:
        // the run stops with StopReason::UopLimit and must surface as a
        // JobError, not a panic or process abort.
        max_uops: Some(40),
        ..healthy.clone()
    };
    let sibling = SimJob::plain(
        &FigureRow::of(Workload::Sjeng),
        CoreKind::OutOfOrder,
        Scale::Test,
    );

    let engine = Engine::new(3);
    let outcomes = engine.run_all(&[healthy, starved, sibling]);
    assert_eq!(outcomes.len(), 3);
    assert!(outcomes[0].is_ok(), "healthy job should succeed");
    assert!(outcomes[2].is_ok(), "sibling job should succeed");
    let err = outcomes[1].as_ref().as_ref().unwrap_err();
    assert_eq!(err.kind, "uop-limit");
    assert!(err.detail.contains("lbm"), "detail names the workload: {err}");
}

#[test]
fn failed_cells_serialise_as_errors_and_keep_summaries_finite() {
    // One good column and one starved column: the matrix still renders,
    // the starved cells carry "error" objects, and the summary over the
    // surviving column stays finite.
    let spec = MatrixSpec::new(
        vec![FigureRow::of(Workload::Lbm)],
        vec![
            ColumnSpec::new("ok", RtConfig::asan()),
            ColumnSpec::new("starved", RtConfig::asan()),
        ],
        Scale::Test,
    );
    let engine = Engine::new(2);
    let mut matrix = engine.run_matrix(&spec);

    // Inject the failure deterministically by re-running the starved
    // column as its own job with a tiny micro-op budget.
    let starved_job = SimJob {
        max_uops: Some(40),
        ..SimJob::new(
            &spec.rows[0],
            "starved",
            RtConfig::asan(),
            Scale::Test,
        )
    };
    matrix.rows[0].cells[1] = engine.run_all(&[starved_job]).remove(0);

    assert!(matrix.rows[0].cell(0).is_some());
    assert!(matrix.rows[0].cell(1).is_none());
    assert!(matrix.rows[0].overhead_pct(1).is_nan());
    let summary = matrix.summary();
    assert!(summary[0].0.is_finite() && summary[0].1.is_finite());
    assert_eq!(summary[1], (0.0, 0.0), "failed column summarises to zero");

    let doc = render(&matrix);
    assert!(doc.contains("\"error\""));
    assert!(doc.contains("\"kind\": \"uop-limit\""));
}
