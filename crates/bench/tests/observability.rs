//! End-to-end observability guarantees (ISSUE 2):
//!
//! * every matrix cell's CPI stack sums **exactly** to its
//!   `core.cycles`,
//! * the interval time-series is byte-identical across `--jobs 1` and
//!   `--jobs 8` (sampling happens inside the deterministic simulation,
//!   never on the host clock),
//! * the Perfetto export is valid Chrome trace-event JSON with one
//!   slice per traced micro-op per stage track,
//! * the engine's per-job wall-time log feeds a schema-valid
//!   `rest-host-profile/v1` document.

use rest_bench::cli::BenchCli;
use rest_bench::engine::{ColumnSpec, Engine, MatrixSpec};
use rest_bench::sink::ResultSink;
use rest_bench::FigureRow;
use rest_core::Mode;
use rest_obs::{HostProfile, Json};
use rest_runtime::RtConfig;
use rest_workloads::{Scale, Workload};

fn obs_cli() -> BenchCli {
    BenchCli {
        experiment: "obs-test".to_string(),
        scale: Scale::Test,
        jobs: 1,
        json: None,
        filter: None,
        sample_interval: 2_000,
        trace_out: Some(std::path::PathBuf::from("unused.json")),
        trace_uops: 64,
        profile_out: None,
        telemetry_out: None,
        campaign_trace_out: None,
        verify: false,
        reference: false,
        trace: false,
        resume: false,
        ckpt: None,
        max_cells: None,
        fault_seed: BenchCli::DEFAULT_FAULT_SEED,
        fuzz_seed: BenchCli::DEFAULT_FUZZ_SEED,
        round_size: 2500,
        min_programs: 10_000,
        emit_regress: None,
    }
}

fn obs_spec() -> MatrixSpec {
    MatrixSpec::new(
        vec![FigureRow::of(Workload::Lbm)],
        vec![
            ColumnSpec::new("asan", RtConfig::asan()),
            ColumnSpec::new("rest-secure-heap", RtConfig::rest(Mode::Secure, false)),
        ],
        Scale::Test,
    )
    .with_observability(&obs_cli())
}

fn render(matrix: &rest_bench::engine::MatrixResults) -> String {
    let mut sink = ResultSink::new(&obs_cli());
    sink.push_matrix("matrix", matrix);
    sink.to_json_string()
}

/// Walks every successful cell object (plain + hardened) of the
/// document's matrix rows.
fn each_cell(doc: &Json, mut f: impl FnMut(&Json)) {
    let rows = doc
        .get("matrix")
        .and_then(|m| m.get("rows"))
        .and_then(Json::as_arr)
        .expect("matrix.rows");
    for row in rows {
        if let Some(plain) = row.get("plain") {
            f(plain);
        }
        for cell in row.get("cells").and_then(Json::as_arr).unwrap() {
            if cell.get("error").is_none() {
                f(cell);
            }
        }
    }
}

#[test]
fn cpi_stacks_sum_to_cycles_in_every_cell() {
    let matrix = Engine::new(2).run_matrix(&obs_spec());
    let doc = Json::parse(&render(&matrix)).expect("sink output parses");
    let mut cells = 0;
    each_cell(&doc, |cell| {
        cells += 1;
        let cycles = cell
            .get("stats")
            .and_then(|s| s.get("core.cycles"))
            .and_then(Json::as_u64)
            .expect("core.cycles");
        let cpi = cell.get("cpi").expect("cpi object");
        let total = cpi.get("total").and_then(Json::as_u64).expect("cpi.total");
        assert_eq!(total, cycles, "cpi.total must equal core.cycles");
        let component_sum: u64 = rest_obs::CpiComponent::ALL
            .iter()
            .map(|c| cpi.get(c.key()).and_then(Json::as_u64).unwrap_or(0))
            .sum();
        assert_eq!(component_sum, cycles, "components must sum to cycles");
        // Derived rates ride along in every cell.
        let derived = cell.get("derived").expect("derived object");
        assert!(derived.get("core.uipc").and_then(Json::as_f64).unwrap() > 0.0);
        let hit_rate = derived
            .get("mem.l1d_hit_rate")
            .and_then(Json::as_f64)
            .unwrap();
        assert!((0.0..=1.0).contains(&hit_rate));
        derived
            .get("tokens_per_kiloinst_l2_mem")
            .and_then(Json::as_f64)
            .unwrap();
    });
    assert_eq!(cells, 3, "plain + two hardened cells");
}

#[test]
fn time_series_is_byte_identical_across_worker_counts() {
    let spec = obs_spec();
    let sequential = render(&Engine::new(1).run_matrix(&spec));
    let parallel = render(&Engine::new(8).run_matrix(&spec));
    assert!(
        sequential.contains("\"series\""),
        "sampling must emit a series section:\n{sequential}"
    );
    assert_eq!(
        sequential, parallel,
        "time-series (and the whole document) must not depend on --jobs"
    );
    // The series carries real samples with gauges and counters.
    let doc = Json::parse(&sequential).unwrap();
    let mut saw_samples = false;
    each_cell(&doc, |cell| {
        let Some(series) = cell.get("series") else {
            return;
        };
        assert_eq!(series.get("interval").and_then(Json::as_u64), Some(2_000));
        let samples = series.get("samples").and_then(Json::as_arr).unwrap();
        if samples.is_empty() {
            return;
        }
        saw_samples = true;
        let first = &samples[0];
        assert_eq!(first.get("insts").and_then(Json::as_u64), Some(2_000));
        first.get("gauges").expect("gauges object");
        assert!(
            first
                .get("counters")
                .and_then(|c| c.get("core.cycles"))
                .and_then(Json::as_u64)
                .is_some(),
            "counters carry the full stats map"
        );
    });
    assert!(saw_samples, "test-scale lbm runs >2000 instructions");
}

#[test]
fn perfetto_trace_covers_the_first_job() {
    let matrix = Engine::new(2).run_matrix(&obs_spec());
    let trace = matrix.first_trace().expect("first job was traced");
    assert_eq!(trace.entries().len(), 64);
    let doc = trace.to_perfetto();
    assert_eq!(doc.slice_count(), 64 * 5, "one slice per uop per stage");
    let parsed = Json::parse(&doc.render()).expect("valid trace-event JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    let per_track: Vec<usize> = (1..=5)
        .map(|tid| {
            events
                .iter()
                .filter(|e| {
                    e.get("ph").and_then(Json::as_str) == Some("X")
                        && e.get("tid").and_then(Json::as_u64) == Some(tid)
                })
                .count()
        })
        .collect();
    assert_eq!(per_track, vec![64; 5], "every stage track has every uop");
}

#[test]
fn engine_timings_feed_a_schema_valid_profile() {
    let engine = Engine::new(2);
    let spec = obs_spec();
    engine.run_matrix(&spec);
    engine.run_matrix(&spec); // second run: all cache hits
    let timings = engine.take_timings();
    // 3 jobs per matrix (plain + 2 columns), second pass fully cached.
    assert_eq!(timings.len(), 6);
    assert!(timings[..3].iter().all(|t| !t.cached));
    assert!(timings[3..].iter().all(|t| t.cached));
    assert!(engine.take_timings().is_empty(), "draining resets the log");

    let mut profile = HostProfile::new("obs-test");
    profile.add_phase("simulate", std::time::Duration::from_millis(1));
    for t in timings {
        profile.add_job(t);
    }
    let doc = Json::parse(&profile.render()).expect("profile renders as JSON");
    HostProfile::validate(&doc).expect("rest-host-profile/v1 schema");
}
