//! The repository's byte-determinism contract (ISSUE 7, satellite 1):
//! committed experiment documents (`results/*.json`) must be
//! byte-identical at any `--jobs` level, which means host-dependent
//! measurements — wall times, throughput rates, worker counts, job
//! spans — may only live in `BENCH_`-prefixed files. This test walks
//! every committed non-`BENCH_` document and rejects any key that
//! could only have come from the host clock or scheduler.
//!
//! It also keeps the committed hotspot profile honest: the document
//! must validate against `rest-hotspots/v1`, whose checks include the
//! exact per-block cycle sums the profiler guarantees.

use rest_obs::Json;

/// Keys whose value depends on the host (clock, scheduler, core
/// count) and therefore must never appear in a deterministic
/// experiment document.
const FORBIDDEN_KEYS: [&str; 6] = [
    "effective_jobs",
    "speedup",
    "spans",
    "workers",
    "telemetry",
    "resilience",
];

/// Key suffixes that denote host-time or host-rate measurements.
const FORBIDDEN_SUFFIXES: [&str; 3] = ["wall_s", "_ips", "_ms"];

fn results_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Recursively walks a document, reporting every forbidden key with
/// its path.
fn scan(doc: &Json, path: &str, violations: &mut Vec<String>) {
    match doc {
        Json::Obj(members) => {
            for (key, value) in members {
                let here = format!("{path}.{key}");
                if FORBIDDEN_KEYS.contains(&key.as_str())
                    || FORBIDDEN_SUFFIXES.iter().any(|s| key.ends_with(s))
                {
                    violations.push(here.clone());
                }
                scan(value, &here, violations);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                scan(item, &format!("{path}[{i}]"), violations);
            }
        }
        _ => {}
    }
}

#[test]
fn experiment_documents_carry_no_host_dependent_keys() {
    let dir = results_dir();
    let mut scanned = 0;
    let mut violations = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("results/ directory is committed") {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if !name.ends_with(".json") || name.starts_with("BENCH_") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{name} must parse: {e}"));
        scanned += 1;
        scan(&doc, &name, &mut violations);
    }
    assert!(scanned > 0, "no committed experiment documents found");
    assert!(
        violations.is_empty(),
        "host-dependent keys belong only in BENCH_ files:\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn bench_files_are_the_only_home_for_host_measurements() {
    // The inverse direction: the committed throughput baseline really
    // does carry the host-rate keys the gate diffs on, so the scan
    // above is known to be looking for the right names.
    let text = std::fs::read_to_string(results_dir().join("BENCH_throughput.json"))
        .expect("results/BENCH_throughput.json must be committed");
    let doc = Json::parse(&text).unwrap();
    let mut violations = Vec::new();
    scan(&doc, "BENCH_throughput.json", &mut violations);
    assert!(
        violations.iter().any(|v| v.ends_with(".fast_ips")),
        "the throughput baseline carries the gated fast_ips keys"
    );
    assert!(violations.iter().any(|v| v.ends_with(".effective_jobs")));
}

#[test]
fn committed_hotspot_profile_is_schema_valid() {
    let text = std::fs::read_to_string(results_dir().join("hotspots.json"))
        .expect("results/hotspots.json must be committed");
    let doc = Json::parse(&text).expect("hotspot document parses");
    rest_obs::hotspots::validate(&doc).expect("matches rest-hotspots/v1");
    let rows = doc.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(
        rows.len(),
        16 * 2,
        "16 benchmark rows x (plain, rest-secure-full)"
    );
}
