//! The repository's byte-determinism contract (ISSUE 7, satellite 1):
//! committed experiment documents (`results/*.json`) must be
//! byte-identical at any `--jobs` level, which means host-dependent
//! measurements — wall times, throughput rates, worker counts, job
//! spans — may only live in `BENCH_`-prefixed files. This test walks
//! every committed non-`BENCH_` document and rejects any key that
//! could only have come from the host clock or scheduler.
//!
//! It also keeps the committed hotspot profile honest: the document
//! must validate against `rest-hotspots/v1`, whose checks include the
//! exact per-block cycle sums the profiler guarantees.

use rest_obs::Json;

/// Keys whose value depends on the host (clock, scheduler, core
/// count) and therefore must never appear in a deterministic
/// experiment document.
const FORBIDDEN_KEYS: [&str; 6] = [
    "effective_jobs",
    "speedup",
    "spans",
    "workers",
    "telemetry",
    "resilience",
];

/// Key suffixes that denote host-time or host-rate measurements.
const FORBIDDEN_SUFFIXES: [&str; 3] = ["wall_s", "_ips", "_ms"];

fn results_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Recursively walks a document, reporting every forbidden key with
/// its path.
fn scan(doc: &Json, path: &str, violations: &mut Vec<String>) {
    match doc {
        Json::Obj(members) => {
            for (key, value) in members {
                let here = format!("{path}.{key}");
                if FORBIDDEN_KEYS.contains(&key.as_str())
                    || FORBIDDEN_SUFFIXES.iter().any(|s| key.ends_with(s))
                {
                    violations.push(here.clone());
                }
                scan(value, &here, violations);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                scan(item, &format!("{path}[{i}]"), violations);
            }
        }
        _ => {}
    }
}

/// Whether a committed results file is exempt from the byte-determinism
/// contract. Only files matching the exact `BENCH_*.json` shape qualify
/// — a stray `bench_foo.json` or `xBENCH_foo.json` is still scanned.
fn is_bench_file(name: &str) -> bool {
    name.starts_with("BENCH_") && name.ends_with(".json")
}

#[test]
fn experiment_documents_carry_no_host_dependent_keys() {
    let dir = results_dir();
    let mut scanned = 0;
    let mut violations = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("results/ directory is committed") {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if !name.ends_with(".json") || is_bench_file(&name) {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{name} must parse: {e}"));
        scanned += 1;
        scan(&doc, &name, &mut violations);
    }
    assert!(scanned > 0, "no committed experiment documents found");
    assert!(
        violations.is_empty(),
        "host-dependent keys belong only in BENCH_ files:\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn bench_files_are_the_only_home_for_host_measurements() {
    // The inverse direction (the negative test): every committed
    // `BENCH_` document really does carry host-dependent keys — if one
    // didn't, its measurements could silently migrate into an
    // experiment document without the scan above noticing, and the
    // exemption would be hiding nothing. This also pins the exemption
    // list itself: the three nondeterministic artefacts the harness
    // writes today must all be present and all be exempt.
    let dir = results_dir();
    let mut bench_files = Vec::new();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let name = entry
            .unwrap()
            .path()
            .file_name()
            .unwrap()
            .to_string_lossy()
            .to_string();
        if is_bench_file(&name) {
            bench_files.push(name);
        }
    }
    bench_files.sort();
    for required in [
        "BENCH_elision.json",
        "BENCH_telemetry.json",
        "BENCH_throughput.json",
    ] {
        assert!(
            bench_files.iter().any(|n| n == required),
            "results/{required} must be committed (have {bench_files:?})"
        );
    }
    for name in &bench_files {
        let text = std::fs::read_to_string(dir.join(name)).unwrap();
        let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{name} must parse: {e}"));
        let mut violations = Vec::new();
        scan(&doc, name, &mut violations);
        assert!(
            !violations.is_empty(),
            "{name} carries no host-dependent keys — it does not need the BENCH_ exemption"
        );
    }

    // Spot-check the specific keys each gate relies on.
    let mut violations = Vec::new();
    let throughput =
        Json::parse(&std::fs::read_to_string(dir.join("BENCH_throughput.json")).unwrap()).unwrap();
    scan(&throughput, "BENCH_throughput.json", &mut violations);
    assert!(
        violations.iter().any(|v| v.ends_with(".fast_ips")),
        "the throughput baseline carries the gated fast_ips keys"
    );
    assert!(
        violations.iter().any(|v| v.ends_with(".trace_ips")),
        "the throughput baseline carries the gated trace_ips keys"
    );
    assert!(violations.iter().any(|v| v.ends_with(".effective_jobs")));

    violations.clear();
    let elision =
        Json::parse(&std::fs::read_to_string(dir.join("BENCH_elision.json")).unwrap()).unwrap();
    scan(&elision, "BENCH_elision.json", &mut violations);
    assert!(violations.iter().any(|v| v.ends_with("_wall_s")));

    violations.clear();
    let telemetry =
        Json::parse(&std::fs::read_to_string(dir.join("BENCH_telemetry.json")).unwrap()).unwrap();
    scan(&telemetry, "BENCH_telemetry.json", &mut violations);
    assert!(violations.iter().any(|v| v.ends_with(".spans")));
    assert!(violations.iter().any(|v| v.ends_with("_ms")));
}

#[test]
fn committed_hotspot_profile_is_schema_valid() {
    let text = std::fs::read_to_string(results_dir().join("hotspots.json"))
        .expect("results/hotspots.json must be committed");
    let doc = Json::parse(&text).expect("hotspot document parses");
    rest_obs::hotspots::validate(&doc).expect("matches rest-hotspots/v1");
    let rows = doc.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(
        rows.len(),
        16 * 2,
        "16 benchmark rows x (plain, rest-secure-full)"
    );
}
