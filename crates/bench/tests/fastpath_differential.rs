//! Differential gate for the execution tiers: the fast path (decode
//! once, replay templates), the superblock-trace tier (fused hot-loop
//! dispatch), and the reference path (re-decode every fetch) must be
//! architecturally indistinguishable — identical micro-op streams,
//! stats maps, violation logs, and program output — across every
//! benchmark row and every attack scenario.

use rest_attacks::Attack;
use rest_bench::engine::{CoreKind, SimJob};
use rest_bench::{figure_rows, stack_for};
use rest_core::Mode;
use rest_cpu::{Emulator, ExecEngine, ExecTier, SimConfig, StopReason};
use rest_isa::{DynInst, Program};
use rest_runtime::{RtConfig, StackScheme};
use rest_workloads::{Scale, WorkloadParams};

fn emulator(program: Program, rt: RtConfig, tier: ExecTier) -> Emulator {
    let mut cfg = SimConfig::isca2018(rt);
    cfg.tier = tier;
    Emulator::new(program, &cfg)
}

/// Drives a trace-tier, a fast-path, and a reference-path emulator over
/// the same program in lockstep, asserting the materialised micro-op
/// streams match chunk for chunk, and returns the (identical) stop
/// reason. The trace side decides each chunk size (a superblock pass
/// may retire a whole loop iteration at once); the per-step tiers
/// follow with exactly that many instructions.
fn lockstep(label: &str, program: Program, rt: RtConfig) -> StopReason {
    let mut trace = emulator(program.clone(), rt.clone(), ExecTier::Trace);
    let mut fast = emulator(program.clone(), rt.clone(), ExecTier::Fast);
    let mut reference = emulator(program, rt, ExecTier::Reference);

    let (mut t, mut f, mut r): (Vec<DynInst>, Vec<DynInst>, Vec<DynInst>) =
        (Vec::new(), Vec::new(), Vec::new());
    loop {
        t.clear();
        f.clear();
        r.clear();
        let ran = trace.run_chunk(&mut t, 1);
        if ran == 0 {
            assert!(!fast.step(&mut f), "{label}: fast path kept running");
            assert!(!reference.step(&mut r), "{label}: reference path kept running");
            break;
        }
        let fast_ran = fast.run_chunk(&mut f, ran);
        let reference_ran = reference.run_chunk(&mut r, ran);
        assert_eq!(ran, fast_ran, "{label}: fast path fell behind");
        assert_eq!(ran, reference_ran, "{label}: reference path fell behind");
        assert_eq!(
            t, f,
            "{label}: trace-vs-fast micro-op streams diverge at inst {} (pc {:#x})",
            fast.insts(),
            fast.pc()
        );
        assert_eq!(
            t, r,
            "{label}: trace-vs-reference micro-op streams diverge at inst {} (pc {:#x})",
            reference.insts(),
            reference.pc()
        );
        assert_eq!(trace.pc(), fast.pc(), "{label}: PCs diverge");
    }
    for (tier, e) in [("fast", &fast), ("reference", &reference)] {
        assert_eq!(trace.insts(), e.insts(), "{label}: {tier} retired counts");
        assert_eq!(trace.uops(), e.uops(), "{label}: {tier} micro-op counts");
        assert_eq!(
            trace.rt_pc_cursor(),
            e.rt_pc_cursor(),
            "{label}: {tier} synthetic-PC cursors"
        );
    }
    let trace_stop = trace.take_stop().expect("trace tier stopped");
    let fast_stop = fast.take_stop().expect("fast path stopped");
    let reference_stop = reference.take_stop().expect("reference path stopped");
    assert_eq!(trace_stop, fast_stop, "{label}: trace-vs-fast stop reasons");
    assert_eq!(fast_stop, reference_stop, "{label}: stop reasons");
    assert_eq!(
        trace.runtime().output(),
        reference.runtime().output(),
        "{label}: program output"
    );
    trace_stop
}

#[test]
fn workload_rows_produce_identical_uop_streams() {
    let rows = figure_rows();
    assert_eq!(rows.len(), 16, "figure corpus is 16 rows");
    for row in rows {
        let rt = RtConfig::rest(Mode::Secure, true);
        let params = WorkloadParams {
            scale: Scale::Test,
            stack_scheme: stack_for(&rt),
            token_width: rt.token_width,
            seed: row.seed,
        };
        let stop = lockstep(row.name, row.workload.build(&params), rt);
        assert_eq!(stop, StopReason::Exit(0), "{}: clean exit", row.name);
    }
}

#[test]
fn workload_rows_produce_identical_stats_maps() {
    for row in figure_rows() {
        let rt = RtConfig::rest(Mode::Secure, true);
        let fast = SimJob::new(&row, "fast", rt.clone(), Scale::Test)
            .execute()
            .unwrap_or_else(|e| panic!("{} fast path: {e}", row.name));
        let trace = SimJob {
            tier: ExecTier::Trace,
            ..SimJob::new(&row, "trace", rt.clone(), Scale::Test)
        }
        .execute()
        .unwrap_or_else(|e| panic!("{} trace tier: {e}", row.name));
        let reference = SimJob {
            tier: ExecTier::Reference,
            ..SimJob::new(&row, "reference", rt, Scale::Test)
        }
        .execute()
        .unwrap_or_else(|e| panic!("{} reference path: {e}", row.name));
        for (tier, result) in [("trace", &trace), ("reference", &reference)] {
            assert_eq!(
                fast.stats_map(),
                result.stats_map(),
                "{}: {tier} stats maps diverge",
                row.name
            );
            assert_eq!(fast.audit, result.audit, "{}: {tier} violation logs", row.name);
            assert_eq!(fast.output, result.output, "{}: {tier} program output", row.name);
            assert_eq!(fast.stop, result.stop, "{}: {tier} stop reasons", row.name);
        }
    }
}

#[test]
fn plain_core_kind_matches_on_all_tiers() {
    // The in-order core shares the emulator; spot-check it too.
    let row = figure_rows().into_iter().next().unwrap();
    let fast = SimJob::plain(&row, CoreKind::InOrder, Scale::Test)
        .execute()
        .unwrap();
    for tier in [ExecTier::Trace, ExecTier::Reference] {
        let other = SimJob {
            tier,
            ..SimJob::plain(&row, CoreKind::InOrder, Scale::Test)
        }
        .execute()
        .unwrap();
        assert_eq!(fast.stats_map(), other.stats_map(), "{tier:?}");
    }
}

#[test]
fn attacks_detect_identically_on_all_tiers() {
    for attack in Attack::ALL {
        let rt = RtConfig::rest(Mode::Secure, true);
        let stop = lockstep(attack.name(), attack.build(StackScheme::Rest), rt);
        // Whatever each scenario does — violate, exit, leak — every
        // tier must agree; detection parity is the point, not outcome.
        match stop {
            StopReason::Violation(_) | StopReason::Exit(_) | StopReason::Halted => {}
            other => panic!("{attack}: unexpected stop {other:?}"),
        }
    }
}

/// Satellite: the three *consumer idioms* — `step` (timing loop),
/// `step_quiet` (functional fast path), `run_functional` (whole-run
/// driver) — must observe identical architectural state on the same
/// tier, over every attack scenario. This pins the stop-handling
/// contract the consumers rely on when they mix idioms.
#[test]
fn step_idioms_agree_over_every_attack() {
    for attack in Attack::ALL {
        for tier in [ExecTier::Fast, ExecTier::Trace] {
            let rt = RtConfig::rest(Mode::Secure, true);
            let program = attack.build(StackScheme::Rest);
            let label = format!("{} ({tier:?})", attack.name());

            let mut stepped = emulator(program.clone(), rt.clone(), tier);
            let mut buf: Vec<DynInst> = Vec::new();
            while stepped.step(&mut buf) {
                buf.clear();
            }

            let mut quiet = emulator(program.clone(), rt.clone(), tier);
            while quiet.step_quiet() {}

            let mut functional = emulator(program, rt, tier);
            functional.run_functional();

            for (idiom, e) in [("step_quiet", &quiet), ("run_functional", &functional)] {
                assert_eq!(stepped.insts(), e.insts(), "{label}: {idiom} insts");
                assert_eq!(stepped.uops(), e.uops(), "{label}: {idiom} uops");
                assert_eq!(stepped.pc(), e.pc(), "{label}: {idiom} final pc");
                assert_eq!(
                    stepped.rt_pc_cursor(),
                    e.rt_pc_cursor(),
                    "{label}: {idiom} synthetic-PC cursor"
                );
                assert_eq!(
                    stepped.runtime().output(),
                    e.runtime().output(),
                    "{label}: {idiom} output"
                );
                assert_eq!(
                    stepped.runtime().allocator().stats(),
                    e.runtime().allocator().stats(),
                    "{label}: {idiom} allocator stats"
                );
            }
            let stop = stepped.take_stop().expect("stopped");
            assert_eq!(stop, quiet.take_stop().expect("stopped"), "{label}: stop");
            assert_eq!(stop, functional.take_stop().expect("stopped"), "{label}: stop");
            let deferred = stepped.take_deferred();
            assert_eq!(deferred, quiet.take_deferred(), "{label}: deferred violation");
            assert_eq!(
                deferred,
                functional.take_deferred(),
                "{label}: deferred violation"
            );
        }
    }
}
