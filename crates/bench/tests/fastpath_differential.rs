//! Differential gate for the decoded-uop cache: the fast path (decode
//! once, replay templates) and the reference path (re-decode every
//! fetch) must be architecturally indistinguishable — identical micro-op
//! streams, stats maps, violation logs, and program output — across
//! every benchmark row and every attack scenario.

use rest_attacks::Attack;
use rest_bench::engine::{CoreKind, SimJob};
use rest_bench::{figure_rows, stack_for};
use rest_core::Mode;
use rest_cpu::{Emulator, SimConfig, StopReason};
use rest_isa::{DynInst, Program};
use rest_runtime::{RtConfig, StackScheme};
use rest_workloads::{Scale, WorkloadParams};

/// Steps a fast-path and a reference-path emulator over the same
/// program in lockstep, asserting each macro instruction's micro-ops
/// match exactly, and returns the (identical) stop reason.
fn lockstep(label: &str, program: Program, rt: RtConfig) -> StopReason {
    let fast_cfg = SimConfig::isca2018(rt.clone());
    let mut reference_cfg = SimConfig::isca2018(rt);
    reference_cfg.reference_path = true;
    let mut fast = Emulator::new(program.clone(), &fast_cfg);
    let mut reference = Emulator::new(program, &reference_cfg);

    let (mut a, mut b): (Vec<DynInst>, Vec<DynInst>) = (Vec::new(), Vec::new());
    loop {
        let ka = fast.step(&mut a);
        let kb = reference.step(&mut b);
        assert_eq!(
            a, b,
            "{label}: micro-op streams diverge at inst {} (pc {:#x})",
            reference.insts(),
            reference.pc()
        );
        a.clear();
        b.clear();
        assert_eq!(ka, kb, "{label}: one path stopped before the other");
        if !ka {
            break;
        }
    }
    assert_eq!(fast.insts(), reference.insts(), "{label}: retired counts");
    assert_eq!(fast.uops(), reference.uops(), "{label}: micro-op counts");
    let fast_stop = fast.take_stop().expect("fast path stopped");
    let reference_stop = reference.take_stop().expect("reference path stopped");
    assert_eq!(fast_stop, reference_stop, "{label}: stop reasons");
    fast_stop
}

#[test]
fn workload_rows_produce_identical_uop_streams() {
    let rows = figure_rows();
    assert_eq!(rows.len(), 16, "figure corpus is 16 rows");
    for row in rows {
        let rt = RtConfig::rest(Mode::Secure, true);
        let params = WorkloadParams {
            scale: Scale::Test,
            stack_scheme: stack_for(&rt),
            token_width: rt.token_width,
            seed: row.seed,
        };
        let stop = lockstep(row.name, row.workload.build(&params), rt);
        assert_eq!(stop, StopReason::Exit(0), "{}: clean exit", row.name);
    }
}

#[test]
fn workload_rows_produce_identical_stats_maps() {
    for row in figure_rows() {
        let rt = RtConfig::rest(Mode::Secure, true);
        let fast = SimJob::new(&row, "fast", rt.clone(), Scale::Test)
            .execute()
            .unwrap_or_else(|e| panic!("{} fast path: {e}", row.name));
        let reference = SimJob {
            reference_path: true,
            ..SimJob::new(&row, "reference", rt, Scale::Test)
        }
        .execute()
        .unwrap_or_else(|e| panic!("{} reference path: {e}", row.name));
        assert_eq!(
            fast.stats_map(),
            reference.stats_map(),
            "{}: stats maps diverge",
            row.name
        );
        assert_eq!(fast.audit, reference.audit, "{}: violation logs", row.name);
        assert_eq!(fast.output, reference.output, "{}: program output", row.name);
        assert_eq!(fast.stop, reference.stop, "{}: stop reasons", row.name);
    }
}

#[test]
fn plain_core_kind_matches_on_both_paths() {
    // The in-order core shares the emulator; spot-check it too.
    let row = figure_rows().into_iter().next().unwrap();
    let fast = SimJob::plain(&row, CoreKind::InOrder, Scale::Test)
        .execute()
        .unwrap();
    let reference = SimJob {
        reference_path: true,
        ..SimJob::plain(&row, CoreKind::InOrder, Scale::Test)
    }
    .execute()
    .unwrap();
    assert_eq!(fast.stats_map(), reference.stats_map());
}

#[test]
fn attacks_detect_identically_on_both_paths() {
    for attack in Attack::ALL {
        let rt = RtConfig::rest(Mode::Secure, true);
        let stop = lockstep(attack.name(), attack.build(StackScheme::Rest), rt);
        // Whatever each scenario does — violate, exit, leak — both
        // paths must agree; detection parity is the point, not outcome.
        match stop {
            StopReason::Violation(_) | StopReason::Exit(_) | StopReason::Halted => {}
            other => panic!("{attack}: unexpected stop {other:?}"),
        }
    }
}
