//! Criterion wrapper around a Figure-7-style measurement at test scale:
//! the overhead *shape* (plain < REST secure < ASan) measured with
//! statistical rigour on two representative workloads. The full figures
//! come from the `fig3`/`fig7`/`fig8` binaries; this bench exists so
//! `cargo bench` exercises the same paths with confidence intervals.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rest_bench::run;
use rest_core::Mode;
use rest_runtime::RtConfig;
use rest_workloads::{Scale, Workload};

fn bench_figure7_shape(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_shape");
    group.sample_size(10);
    for w in [Workload::Lbm, Workload::Xalancbmk] {
        for rt in [
            RtConfig::plain(),
            RtConfig::rest(Mode::Secure, true),
            RtConfig::asan(),
        ] {
            group.bench_with_input(
                BenchmarkId::new(w.name(), rt.label()),
                &rt,
                |b, rt| b.iter(|| run(w, Scale::Test, rt.clone())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_figure7_shape);
criterion_main!(benches);
