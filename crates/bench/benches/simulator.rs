//! Criterion microbenchmarks of the simulator's hot paths: the token
//! comparator (the hardware REST adds to the fill path), the armed-set
//! overlap check, cache lookups, and end-to-end simulation throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use rest_core::{ArmedSet, Token, TokenWidth};
use rest_cpu::{SimConfig, System};
use rest_mem::{Cache, CacheConfig};
use rest_runtime::RtConfig;
use rest_workloads::{Scale, Workload, WorkloadParams};

fn bench_token_comparator(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let token = Token::generate(TokenWidth::B64, &mut rng);
    let clean = [0xabu8; 64];
    let mut armed = [0u8; 64];
    armed.copy_from_slice(token.bytes_padded());
    c.bench_function("token_match_clean_line", |b| {
        b.iter(|| token.match_offsets_in_line(black_box(&clean)))
    });
    c.bench_function("token_match_armed_line", |b| {
        b.iter(|| token.match_offsets_in_line(black_box(&armed)))
    });
}

fn bench_armed_set(c: &mut Criterion) {
    let mut set = ArmedSet::new(TokenWidth::B64);
    for i in 0..10_000u64 {
        set.arm(0x1000 + i * 128).unwrap();
    }
    c.bench_function("armed_set_overlap_miss", |b| {
        b.iter(|| set.overlaps(black_box(0x1000 + 64), 8))
    });
    c.bench_function("armed_set_overlap_hit", |b| {
        b.iter(|| set.overlaps(black_box(0x1000 + 128), 8))
    });
}

fn bench_cache(c: &mut Criterion) {
    let mut cache = Cache::new(CacheConfig::isca2018_l1d(), "L1D");
    for i in 0..1024u64 {
        cache.fill(i * 64, false, 0);
    }
    c.bench_function("l1d_lookup_hit", |b| {
        let mut a = 0u64;
        b.iter(|| {
            a = (a + 64) % (1024 * 64);
            cache.lookup(black_box(a), false)
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for (name, rt) in [
        ("lbm_plain", RtConfig::plain()),
        ("lbm_rest_secure", RtConfig::rest(rest_core::Mode::Secure, false)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let params = WorkloadParams::test(rest_runtime::StackScheme::None);
                let program = Workload::Lbm.build(&params);
                let _ = Scale::Test;
                System::new(program, SimConfig::isca2018(rt.clone())).run()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_token_comparator,
    bench_armed_set,
    bench_cache,
    bench_end_to_end
);
criterion_main!(benches);
