//! Campaign checkpoint/resume.
//!
//! Long fault-injection campaigns periodically persist their finished
//! cells to a checkpoint file (schema `rest-ckpt/v1`), so an
//! interrupted run can be resumed with `--resume` instead of starting
//! over. The file maps each cell's [`SimJob::cache_key`] to the cell's
//! serialised JSON:
//!
//! ```json
//! {
//!   "schema": "rest-ckpt/v1",
//!   "fingerprint": "faults|test|seed=0x5eedfa17|...",
//!   "cells": { "<cache key>": { ... }, ... }
//! }
//! ```
//!
//! The fingerprint binds the checkpoint to one exact campaign
//! (experiment, scale, seed, row list): resuming with any parameter
//! changed silently ignores the stale file rather than mixing
//! incompatible cells. Cell values round-trip through the JSON parser
//! on insert, so a cell rendered from a resumed checkpoint is
//! byte-identical to one rendered from a fresh simulation — the
//! determinism contract (`--resume` output equals uninterrupted
//! output) holds at the byte level.
//!
//! Checkpoint keys are serialised in sorted order (the in-memory map is
//! unordered); the final experiment document never depends on
//! checkpoint order because cells are looked up by key.
//!
//! [`SimJob::cache_key`]: crate::engine::SimJob::cache_key

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

use rest_obs::Json;

/// Checkpoint document schema identifier.
pub const CKPT_SCHEMA: &str = "rest-ckpt/v1";

/// A campaign's persisted partial results.
pub struct Checkpoint {
    path: PathBuf,
    fingerprint: String,
    cells: HashMap<String, Json>,
}

impl Checkpoint {
    /// Opens the checkpoint at `path` for the campaign identified by
    /// `fingerprint`. When `resume` is set and the file exists with a
    /// matching schema and fingerprint, its cells are loaded; anything
    /// else (fresh run, missing file, unparsable file, parameter
    /// mismatch) starts empty.
    pub fn open(path: &Path, fingerprint: &str, resume: bool) -> Checkpoint {
        let mut ckpt = Checkpoint {
            path: path.to_path_buf(),
            fingerprint: fingerprint.to_string(),
            cells: HashMap::new(),
        };
        if resume {
            ckpt.load();
        }
        ckpt
    }

    fn load(&mut self) {
        let Ok(text) = std::fs::read_to_string(&self.path) else {
            return;
        };
        let Ok(doc) = Json::parse(&text) else {
            eprintln!(
                "# checkpoint {}: unparsable, starting fresh",
                self.path.display()
            );
            return;
        };
        if doc.get("schema").and_then(Json::as_str) != Some(CKPT_SCHEMA) {
            eprintln!(
                "# checkpoint {}: wrong schema, starting fresh",
                self.path.display()
            );
            return;
        }
        if doc.get("fingerprint").and_then(Json::as_str) != Some(self.fingerprint.as_str()) {
            eprintln!(
                "# checkpoint {}: campaign parameters changed, starting fresh",
                self.path.display()
            );
            return;
        }
        if let Some(Json::Obj(members)) = doc.get("cells") {
            for (key, cell) in members {
                self.cells.insert(key.clone(), cell.clone());
            }
        }
        eprintln!(
            "# checkpoint {}: resuming with {} recorded cell(s)",
            self.path.display(),
            self.cells.len()
        );
    }

    /// The recorded cell for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.cells.get(key)
    }

    /// Number of recorded cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cell has been recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Records a finished cell. The value is canonicalised through a
    /// serialise→parse round trip so a cell read back from disk on
    /// resume is indistinguishable from one recorded in-process.
    pub fn insert(&mut self, key: String, cell: Json) {
        let canonical = Json::parse(&cell.to_string_pretty()).unwrap_or(cell);
        self.cells.insert(key, canonical);
    }

    /// Writes the checkpoint to its path (creating parent directories),
    /// with cell keys in sorted order for stable bytes.
    pub fn save(&self) -> io::Result<()> {
        let mut keys: Vec<&String> = self.cells.keys().collect();
        keys.sort();
        let cells = keys
            .into_iter()
            .map(|k| (k.clone(), self.cells[k].clone()))
            .collect();
        let doc = Json::obj(vec![
            ("schema", Json::from(CKPT_SCHEMA)),
            ("fingerprint", Json::Str(self.fingerprint.clone())),
            ("cells", Json::Obj(cells)),
        ]);
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut text = doc.to_string_pretty();
        text.push('\n');
        std::fs::write(&self.path, text)
    }

    /// Deletes the checkpoint file — the campaign completed and its
    /// final document supersedes it. A missing file is not an error.
    pub fn remove(&self) {
        match std::fs::remove_file(&self.path) {
            Ok(()) => eprintln!("# removed checkpoint {}", self.path.display()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => eprintln!(
                "# FAILED removing checkpoint {}: {e}",
                self.path.display()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rest-ckpt-test-{}-{name}.json", std::process::id()))
    }

    fn cell(n: u64) -> Json {
        Json::obj(vec![("cycles", Json::UInt(n)), ("stop", Json::from("exit-0"))])
    }

    #[test]
    fn round_trips_cells_through_disk() {
        let path = tmp("roundtrip");
        let mut ckpt = Checkpoint::open(&path, "fp-1", false);
        assert!(ckpt.is_empty());
        ckpt.insert("job-a".to_string(), cell(10));
        ckpt.insert("job-b".to_string(), cell(20));
        ckpt.save().unwrap();

        let resumed = Checkpoint::open(&path, "fp-1", true);
        assert_eq!(resumed.len(), 2);
        assert_eq!(
            resumed.get("job-a").unwrap().to_string_pretty(),
            cell(10).to_string_pretty()
        );
        assert!(resumed.get("job-c").is_none());
        ckpt.remove();
        assert!(!path.exists());
    }

    #[test]
    fn fingerprint_mismatch_starts_fresh() {
        let path = tmp("fingerprint");
        let mut ckpt = Checkpoint::open(&path, "fp-old", false);
        ckpt.insert("job-a".to_string(), cell(10));
        ckpt.save().unwrap();

        let other = Checkpoint::open(&path, "fp-new", true);
        assert!(other.is_empty(), "changed parameters must not reuse cells");
        ckpt.remove();
    }

    #[test]
    fn without_resume_existing_checkpoints_are_ignored() {
        let path = tmp("noresume");
        let mut ckpt = Checkpoint::open(&path, "fp", false);
        ckpt.insert("job-a".to_string(), cell(10));
        ckpt.save().unwrap();

        let fresh = Checkpoint::open(&path, "fp", false);
        assert!(fresh.is_empty());
        ckpt.remove();
    }

    #[test]
    fn garbage_files_are_ignored() {
        let path = tmp("garbage");
        std::fs::write(&path, "not json at all {{{").unwrap();
        let ckpt = Checkpoint::open(&path, "fp", true);
        assert!(ckpt.is_empty());
        ckpt.remove();
    }

    #[test]
    fn saved_bytes_are_stable_across_insertion_order() {
        let (pa, pb) = (tmp("order-a"), tmp("order-b"));
        let mut a = Checkpoint::open(&pa, "fp", false);
        a.insert("k1".to_string(), cell(1));
        a.insert("k2".to_string(), cell(2));
        a.save().unwrap();
        let mut b = Checkpoint::open(&pb, "fp", false);
        b.insert("k2".to_string(), cell(2));
        b.insert("k1".to_string(), cell(1));
        b.save().unwrap();
        assert_eq!(
            std::fs::read_to_string(&pa).unwrap(),
            std::fs::read_to_string(&pb).unwrap()
        );
        a.remove();
        b.remove();
    }
}
