//! Shared command-line layer for every harness binary.
//!
//! All seven experiment binaries accept the same flags:
//!
//! ```text
//! --test                 run at test scale (fast; default is reference scale)
//! --jobs N               worker threads (default: available parallelism)
//! --json PATH            JSON output path (default: results/<experiment>.json)
//! --filter SUBSTRING     keep only benchmark rows whose name contains SUBSTRING
//! --sample-interval N    snapshot counters + occupancy gauges every N committed
//!                        instructions into a "series" JSON section (0 = off)
//! --trace-out PATH       write a Chrome trace-event (Perfetto) JSON of the
//!                        first traced job's pipeline activity to PATH
//! --trace-uops N         micro-ops to trace for --trace-out (default 512)
//! --profile-out PATH     write host wall-time profiling (phases + per-job
//!                        timings) to PATH (default: results/BENCH_baseline.json)
//! --telemetry-out PATH   write campaign telemetry (per-job spans, worker
//!                        utilization, cache + resilience counters) to PATH
//!                        (default: results/BENCH_telemetry.json)
//! --campaign-trace-out PATH
//!                        write a Perfetto trace of the campaign timeline
//!                        (one track per engine worker) to PATH
//! --verify               statically lint each guest program with rest-verify
//!                        before simulating; fail fast on error-or-worse findings
//! --reference            simulate on the reference decode path (re-decode every
//!                        fetch) instead of the decoded-uop cache
//! --trace                simulate on the superblock-trace tier (decoded-uop
//!                        cache plus run-time trace compilation of hot loops)
//! --resume               resume an interrupted campaign from its checkpoint
//! --ckpt PATH            checkpoint path (default: results/<experiment>.ckpt.json)
//! --max-cells N          stop after N freshly simulated cells, keeping the
//!                        checkpoint (deterministic interruption for CI)
//! --fault-seed N         base seed for fault-injection campaigns
//! --help                 usage
//! ```
//!
//! `--jobs` is clamped to the host's available parallelism: requesting
//! more workers than cores never helps a CPU-bound simulation and the
//! determinism contract makes the clamp invisible in experiment output
//! (only the host profile and throughput reports record the effective
//! worker count).

use std::path::PathBuf;
use std::time::Instant;

use rest_cpu::ExecTier;
use rest_obs::HostProfile;
use rest_workloads::Scale;

use crate::engine::{Engine, JobOutcome, MatrixResults, MatrixSpec, SimJob};
use crate::sink::ResultSink;
use crate::FigureRow;

/// Parsed common command line of one experiment binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchCli {
    /// Experiment name (`"fig7"`, …): names the default JSON output.
    pub experiment: String,
    /// Simulation scale (`--test` ⇒ [`Scale::Test`]).
    pub scale: Scale,
    /// Worker threads for the job runner.
    pub jobs: usize,
    /// Explicit JSON output path (`--json`), if any.
    pub json: Option<PathBuf>,
    /// Row filter (`--filter`), a case-insensitive substring.
    pub filter: Option<String>,
    /// Interval sampler period in committed instructions
    /// (`--sample-interval`, 0 = off).
    pub sample_interval: u64,
    /// Perfetto trace output path (`--trace-out`), if any. Enables
    /// micro-op tracing on the first job of the experiment.
    pub trace_out: Option<PathBuf>,
    /// Micro-ops to trace when `--trace-out` is given (`--trace-uops`).
    pub trace_uops: usize,
    /// Host-profiling output path (`--profile-out`), if any.
    pub profile_out: Option<PathBuf>,
    /// Campaign-telemetry output path (`--telemetry-out`), if any.
    pub telemetry_out: Option<PathBuf>,
    /// Campaign-timeline Perfetto trace path (`--campaign-trace-out`),
    /// if any: one track per engine worker, one slice per fresh job.
    pub campaign_trace_out: Option<PathBuf>,
    /// Statically verify each program before simulating (`--verify`):
    /// jobs fail fast with error kind `"verify"` instead of running a
    /// program the linter can prove broken.
    pub verify: bool,
    /// Simulate on the reference decode path (`--reference`): re-decode
    /// every instruction on every fetch instead of replaying from the
    /// decoded-uop cache. Output must be byte-identical; CI diffs it.
    pub reference: bool,
    /// Simulate on the superblock-trace tier (`--trace`): decoded-uop
    /// cache plus run-time trace compilation of hot loops. Output must
    /// be byte-identical; CI diffs it.
    pub trace: bool,
    /// Resume an interrupted campaign from its checkpoint file
    /// (`--resume`): cells already recorded there are not re-simulated.
    pub resume: bool,
    /// Explicit checkpoint path (`--ckpt`); defaults to
    /// `results/<experiment>.ckpt.json`.
    pub ckpt: Option<PathBuf>,
    /// Stop after simulating this many fresh cells (`--max-cells`),
    /// leaving the checkpoint behind for `--resume` — used by CI to
    /// interrupt a campaign deterministically.
    pub max_cells: Option<usize>,
    /// Base seed for fault-injection campaigns (`--fault-seed`).
    pub fault_seed: u64,
    /// Seed for the adversarial-corpus generator (`--fuzz-seed`).
    pub fuzz_seed: u64,
    /// Programs per fuzz-campaign round (`--round-size`).
    pub round_size: usize,
    /// Minimum programs a fuzz campaign must generate before it may
    /// declare itself dry (`--min-programs`).
    pub min_programs: usize,
    /// Directory to write minimized regression reproducers to
    /// (`--emit-regress`), if any.
    pub emit_regress: Option<PathBuf>,
}

/// Parses a u64 with an optional `0x` prefix (seeds read naturally in
/// hex).
fn parse_u64(v: &str) -> Option<u64> {
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    }
}

impl BenchCli {
    /// Default base seed for fault campaigns: fixed so CI runs are
    /// reproducible without passing `--fault-seed`.
    pub const DEFAULT_FAULT_SEED: u64 = 0x5EED_FA17;

    /// Default seed for the adversarial-corpus generator: fixed so CI
    /// campaigns are reproducible without passing `--fuzz-seed`.
    pub const DEFAULT_FUZZ_SEED: u64 = 0xF0CC_5EED;

    /// The execution tier the flags select: `--trace` wins over
    /// `--reference` (the more-specialised tier), default is the
    /// decoded-uop cache.
    pub fn exec_tier(&self) -> ExecTier {
        if self.trace {
            ExecTier::Trace
        } else if self.reference {
            ExecTier::Reference
        } else {
            ExecTier::Fast
        }
    }

    /// Default worker count: the machine's available parallelism.
    pub fn default_jobs() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Parses the process arguments; prints usage and exits on `--help`
    /// or a malformed command line.
    pub fn parse(experiment: &str) -> BenchCli {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::from_args(experiment, &args) {
            Ok(cli) => cli,
            Err(msg) => {
                if msg == "help" {
                    eprintln!("{}", Self::usage(experiment));
                    std::process::exit(0);
                }
                eprintln!("{experiment}: {msg}");
                eprintln!("{}", Self::usage(experiment));
                std::process::exit(2);
            }
        }
    }

    /// Pure parser (testable). `Err("help")` signals a `--help` request.
    pub fn from_args(experiment: &str, args: &[String]) -> Result<BenchCli, String> {
        let mut cli = BenchCli {
            experiment: experiment.to_string(),
            scale: Scale::Ref,
            jobs: Self::default_jobs(),
            json: None,
            filter: None,
            sample_interval: 0,
            trace_out: None,
            trace_uops: 512,
            profile_out: None,
            telemetry_out: None,
            campaign_trace_out: None,
            verify: false,
            reference: false,
            trace: false,
            resume: false,
            ckpt: None,
            max_cells: None,
            fault_seed: Self::DEFAULT_FAULT_SEED,
            fuzz_seed: Self::DEFAULT_FUZZ_SEED,
            round_size: 2500,
            min_programs: 10_000,
            emit_regress: None,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--test" => cli.scale = Scale::Test,
                "--jobs" => {
                    let v = it.next().ok_or("--jobs needs a value")?;
                    cli.jobs = v
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--jobs: invalid worker count {v:?}"))?;
                }
                "--json" => {
                    let v = it.next().ok_or("--json needs a path")?;
                    cli.json = Some(PathBuf::from(v));
                }
                "--filter" => {
                    let v = it.next().ok_or("--filter needs a substring")?;
                    cli.filter = Some(v.to_string());
                }
                "--sample-interval" => {
                    let v = it.next().ok_or("--sample-interval needs a value")?;
                    cli.sample_interval = v
                        .parse::<u64>()
                        .map_err(|_| format!("--sample-interval: invalid interval {v:?}"))?;
                }
                "--trace-out" => {
                    let v = it.next().ok_or("--trace-out needs a path")?;
                    cli.trace_out = Some(PathBuf::from(v));
                }
                "--trace-uops" => {
                    let v = it.next().ok_or("--trace-uops needs a value")?;
                    cli.trace_uops = v
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--trace-uops: invalid count {v:?}"))?;
                }
                "--profile-out" => {
                    let v = it.next().ok_or("--profile-out needs a path")?;
                    cli.profile_out = Some(PathBuf::from(v));
                }
                "--telemetry-out" => {
                    let v = it.next().ok_or("--telemetry-out needs a path")?;
                    cli.telemetry_out = Some(PathBuf::from(v));
                }
                "--campaign-trace-out" => {
                    let v = it.next().ok_or("--campaign-trace-out needs a path")?;
                    cli.campaign_trace_out = Some(PathBuf::from(v));
                }
                "--verify" => cli.verify = true,
                "--reference" => cli.reference = true,
                "--trace" => cli.trace = true,
                "--resume" => cli.resume = true,
                "--ckpt" => {
                    let v = it.next().ok_or("--ckpt needs a path")?;
                    cli.ckpt = Some(PathBuf::from(v));
                }
                "--max-cells" => {
                    let v = it.next().ok_or("--max-cells needs a value")?;
                    cli.max_cells = Some(
                        v.parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| format!("--max-cells: invalid count {v:?}"))?,
                    );
                }
                "--fault-seed" => {
                    let v = it.next().ok_or("--fault-seed needs a value")?;
                    cli.fault_seed = parse_u64(v)
                        .ok_or_else(|| format!("--fault-seed: invalid seed {v:?}"))?;
                }
                "--fuzz-seed" => {
                    let v = it.next().ok_or("--fuzz-seed needs a value")?;
                    cli.fuzz_seed = parse_u64(v)
                        .ok_or_else(|| format!("--fuzz-seed: invalid seed {v:?}"))?;
                }
                "--round-size" => {
                    let v = it.next().ok_or("--round-size needs a value")?;
                    cli.round_size = v
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--round-size: invalid count {v:?}"))?;
                }
                "--min-programs" => {
                    let v = it.next().ok_or("--min-programs needs a value")?;
                    cli.min_programs = v
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--min-programs: invalid count {v:?}"))?;
                }
                "--emit-regress" => {
                    let v = it.next().ok_or("--emit-regress needs a directory")?;
                    cli.emit_regress = Some(PathBuf::from(v));
                }
                "--help" | "-h" => return Err("help".to_string()),
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        // Oversubscribing a CPU-bound job pool only adds contention; the
        // effective count is recorded in BENCH_* reports, never in
        // experiment JSON, so the clamp cannot perturb result bytes.
        cli.jobs = cli.jobs.min(Self::default_jobs());
        Ok(cli)
    }

    /// The JSON output path: `--json` if given, else
    /// `results/<experiment>.json`.
    pub fn json_path(&self) -> PathBuf {
        self.json
            .clone()
            .unwrap_or_else(|| PathBuf::from(format!("results/{}.json", self.experiment)))
    }

    /// Applies `--filter` to a row list (case-insensitive substring on
    /// the row's display name).
    pub fn filter_rows(&self, rows: Vec<FigureRow>) -> Vec<FigureRow> {
        match &self.filter {
            None => rows,
            Some(f) => {
                let needle = f.to_ascii_lowercase();
                rows.into_iter()
                    .filter(|r| r.name.to_ascii_lowercase().contains(&needle))
                    .collect()
            }
        }
    }

    /// Scale name as serialized into results (`"test"` / `"ref"`).
    pub fn scale_name(&self) -> &'static str {
        match self.scale {
            Scale::Test => "test",
            Scale::Ref => "ref",
        }
    }

    /// The host-profiling output path: `--profile-out` if given, else
    /// `results/BENCH_baseline.json`.
    pub fn profile_path(&self) -> PathBuf {
        self.profile_out
            .clone()
            .unwrap_or_else(|| PathBuf::from("results/BENCH_baseline.json"))
    }

    /// The campaign-telemetry output path: `--telemetry-out` if given,
    /// else `results/BENCH_telemetry.json`. Telemetry carries wall
    /// times, so the default follows the host-dependent `BENCH_` naming
    /// convention and is never an experiment result document.
    pub fn telemetry_path(&self) -> PathBuf {
        self.telemetry_out
            .clone()
            .unwrap_or_else(|| PathBuf::from("results/BENCH_telemetry.json"))
    }

    /// The checkpoint path: `--ckpt` if given, else
    /// `results/<experiment>.ckpt.json`.
    pub fn ckpt_path(&self) -> PathBuf {
        self.ckpt
            .clone()
            .unwrap_or_else(|| PathBuf::from(format!("results/{}.ckpt.json", self.experiment)))
    }

    fn usage(experiment: &str) -> String {
        format!(
            "usage: {experiment} [--test] [--jobs N] [--json PATH] [--filter SUBSTRING]\n\
             \x20                 [--sample-interval N] [--trace-out PATH] [--trace-uops N]\n\
             \x20                 [--profile-out PATH] [--telemetry-out PATH]\n\
             \x20                 [--campaign-trace-out PATH] [--verify] [--reference]\n\
             \x20                 [--trace] [--resume] [--ckpt PATH] [--max-cells N]\n\
             \x20                 [--fault-seed N] [--fuzz-seed N] [--round-size N]\n\
             \x20                 [--min-programs N] [--emit-regress DIR]\n\
             \n\
             --test               run at test scale (fast smoke check)\n\
             --jobs N             worker threads (default and upper bound:\n\
             \x20                    available parallelism)\n\
             --json PATH          write JSON results to PATH\n\
             \x20                    (default: results/{experiment}.json)\n\
             --filter SUBSTRING   keep only rows whose benchmark name contains SUBSTRING\n\
             --sample-interval N  sample counters + gauges every N committed\n\
             \x20                    instructions into the JSON \"series\" sections (0 = off)\n\
             --trace-out PATH     write a Perfetto/Chrome trace-event JSON of the first\n\
             \x20                    job's pipeline activity to PATH\n\
             --trace-uops N       micro-ops to trace for --trace-out (default 512)\n\
             --profile-out PATH   write host wall-time profiling to PATH\n\
             --telemetry-out PATH write campaign telemetry (per-job spans, worker\n\
             \x20                    utilization, cache + resilience counters) to PATH\n\
             \x20                    (default: results/BENCH_telemetry.json)\n\
             --campaign-trace-out PATH\n\
             \x20                    write a Perfetto trace of the campaign timeline\n\
             \x20                    (one track per engine worker) to PATH\n\
             --verify             statically lint each guest program before simulating;\n\
             \x20                    fail fast on error-or-worse findings\n\
             --reference          re-decode every fetch instead of using the\n\
             \x20                    decoded-uop cache (differential/perf baseline)\n\
             --trace              superblock-trace execution tier: decoded-uop cache\n\
             \x20                    plus run-time trace compilation of hot loops\n\
             --resume             resume an interrupted campaign from its checkpoint;\n\
             \x20                    recorded cells are not re-simulated\n\
             --ckpt PATH          checkpoint path for campaign experiments\n\
             \x20                    (default: results/{experiment}.ckpt.json)\n\
             --max-cells N        stop after N freshly simulated cells, keeping the\n\
             \x20                    checkpoint for --resume (CI interruption hook)\n\
             --fault-seed N       base seed for fault-injection campaigns\n\
             \x20                    (decimal or 0x-hex; default 0x5eedfa17)\n\
             --fuzz-seed N        seed for the adversarial-corpus generator\n\
             \x20                    (decimal or 0x-hex; default 0xf0cc5eed)\n\
             --round-size N       programs per fuzz-campaign round (default 2500)\n\
             --min-programs N     programs a fuzz campaign must reach before it may\n\
             \x20                    stop dry (default 10000)\n\
             --emit-regress DIR   write minimized fuzz reproducers (.s + .trace)\n\
             \x20                    into DIR\n\
             --help               this message"
        )
    }
}

/// Shared setup/teardown for the experiment binaries.
///
/// Every binary used to open with the same dance — parse the common
/// command line, build one [`Engine`], wrap the engine runs in a
/// "simulate" [`HostProfile`] phase, then close with a "report" phase,
/// the result sink, and the observability artefacts. `Harness` owns
/// that boilerplate so a binary reduces to *describe the experiment →
/// print the tables → finish*:
///
/// ```ignore
/// let mut h = Harness::new("fig7");
/// let matrix = h.run_matrix(&spec);
/// matrix.print_text_table();
/// let mut sink = h.sink();
/// sink.push_matrix("matrix", &matrix);
/// h.finish(sink, &matrix);
/// ```
///
/// Binaries without an engine phase (e.g. `table1`) use only
/// [`Harness::sink`]; campaign binaries (`faults`, `defense`) drive
/// [`Harness::run_all`] in checkpointed chunks.
pub struct Harness {
    /// The parsed common command line.
    pub cli: BenchCli,
    /// The shared job engine: one per process, so plain baselines are
    /// simulated once across every matrix the binary runs.
    pub engine: Engine,
    profile: HostProfile,
    /// Start of the report phase, re-based after every engine run so
    /// [`Harness::finish`] charges only actual reporting time.
    report_started: Instant,
}

impl Harness {
    /// Parses the process arguments (exiting on `--help` or a malformed
    /// command line) and sets up the engine and host profile.
    pub fn new(experiment: &str) -> Harness {
        Harness::from_cli(BenchCli::parse(experiment))
    }

    /// A harness over an already-parsed command line (testable).
    pub fn from_cli(cli: BenchCli) -> Harness {
        Harness {
            engine: Engine::new(cli.jobs),
            profile: HostProfile::new(&cli.experiment),
            report_started: Instant::now(),
            cli,
        }
    }

    /// Runs an experiment matrix on the shared engine; the wall time
    /// accrues to the profile's "simulate" phase.
    pub fn run_matrix(&mut self, spec: &MatrixSpec) -> MatrixResults {
        let started = Instant::now();
        let matrix = self.engine.run_matrix(spec);
        self.profile.add_phase("simulate", started.elapsed());
        self.report_started = Instant::now();
        matrix
    }

    /// Runs a plain job list on the shared engine; the wall time
    /// accrues to the profile's "simulate" phase.
    pub fn run_all(&mut self, jobs: &[SimJob]) -> Vec<JobOutcome> {
        let started = Instant::now();
        let outcomes = self.engine.run_all(jobs);
        self.profile.add_phase("simulate", started.elapsed());
        self.report_started = Instant::now();
        outcomes
    }

    /// A result sink pre-populated with this experiment's identity.
    pub fn sink(&self) -> ResultSink {
        ResultSink::new(&self.cli)
    }

    /// Writes the finished sink, closes the "report" phase, and emits
    /// the observability artefacts (Perfetto trace from `matrix` when
    /// `--trace-out` was given, host profile with the engine's per-job
    /// timing log).
    pub fn finish(mut self, sink: ResultSink, matrix: &MatrixResults) {
        sink.finish();
        self.profile
            .add_phase("report", self.report_started.elapsed());
        crate::finish_observability(&self.cli, &self.engine, matrix, self.profile);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let cli = BenchCli::from_args("fig7", &[]).unwrap();
        assert_eq!(cli.scale, Scale::Ref);
        assert_eq!(cli.jobs, BenchCli::default_jobs());
        assert!(cli.jobs >= 1);
        assert_eq!(cli.json, None);
        assert_eq!(cli.filter, None);
        assert_eq!(cli.json_path(), PathBuf::from("results/fig7.json"));
        assert_eq!(cli.scale_name(), "ref");
        assert_eq!(cli.sample_interval, 0);
        assert_eq!(cli.trace_out, None);
        assert_eq!(cli.trace_uops, 512);
        assert_eq!(cli.profile_out, None);
        assert_eq!(
            cli.profile_path(),
            PathBuf::from("results/BENCH_baseline.json")
        );
        assert_eq!(cli.telemetry_out, None);
        assert_eq!(
            cli.telemetry_path(),
            PathBuf::from("results/BENCH_telemetry.json")
        );
        assert_eq!(cli.campaign_trace_out, None);
        assert!(!cli.verify);
        assert!(!cli.reference);
        assert!(!cli.trace);
        assert!(!cli.resume);
        assert_eq!(cli.ckpt, None);
        assert_eq!(cli.ckpt_path(), PathBuf::from("results/fig7.ckpt.json"));
        assert_eq!(cli.max_cells, None);
        assert_eq!(cli.fault_seed, BenchCli::DEFAULT_FAULT_SEED);
        assert_eq!(cli.fuzz_seed, BenchCli::DEFAULT_FUZZ_SEED);
        assert_eq!(cli.round_size, 2500);
        assert_eq!(cli.min_programs, 10_000);
        assert_eq!(cli.emit_regress, None);
    }

    #[test]
    fn campaign_flags_parse() {
        let cli = BenchCli::from_args(
            "faults",
            &argv(&[
                "--resume",
                "--ckpt",
                "/tmp/f.ckpt.json",
                "--max-cells",
                "5",
                "--fault-seed",
                "0x1234",
            ]),
        )
        .unwrap();
        assert!(cli.resume);
        assert_eq!(cli.ckpt_path(), PathBuf::from("/tmp/f.ckpt.json"));
        assert_eq!(cli.max_cells, Some(5));
        assert_eq!(cli.fault_seed, 0x1234);
        let decimal = BenchCli::from_args("faults", &argv(&["--fault-seed", "42"])).unwrap();
        assert_eq!(decimal.fault_seed, 42);
    }

    #[test]
    fn fuzz_flags_parse() {
        let cli = BenchCli::from_args(
            "fuzz",
            &argv(&[
                "--fuzz-seed",
                "0xabc",
                "--round-size",
                "250",
                "--min-programs",
                "500",
                "--emit-regress",
                "/tmp/regress",
            ]),
        )
        .unwrap();
        assert_eq!(cli.fuzz_seed, 0xabc);
        assert_eq!(cli.round_size, 250);
        assert_eq!(cli.min_programs, 500);
        assert_eq!(cli.emit_regress, Some(PathBuf::from("/tmp/regress")));
        let decimal = BenchCli::from_args("fuzz", &argv(&["--fuzz-seed", "7"])).unwrap();
        assert_eq!(decimal.fuzz_seed, 7);
    }

    #[test]
    fn all_flags_parse() {
        let cli = BenchCli::from_args(
            "fig8",
            &argv(&["--test", "--jobs", "3", "--json", "/tmp/x.json", "--filter", "gobmk"]),
        )
        .unwrap();
        assert_eq!(cli.scale, Scale::Test);
        assert_eq!(cli.jobs, 3.min(BenchCli::default_jobs()));
        assert_eq!(cli.json_path(), PathBuf::from("/tmp/x.json"));
        assert_eq!(cli.filter.as_deref(), Some("gobmk"));
        assert_eq!(cli.scale_name(), "test");
    }

    #[test]
    fn jobs_clamp_to_available_parallelism() {
        let cli = BenchCli::from_args("fig7", &argv(&["--jobs", "100000"])).unwrap();
        assert_eq!(cli.jobs, BenchCli::default_jobs());
        let cli = BenchCli::from_args("fig7", &argv(&["--jobs", "1"])).unwrap();
        assert_eq!(cli.jobs, 1, "requests at or under the limit pass through");
    }

    #[test]
    fn reference_flag_parses() {
        let cli = BenchCli::from_args("fig7", &argv(&["--reference"])).unwrap();
        assert!(cli.reference);
        assert_eq!(cli.exec_tier(), ExecTier::Reference);
    }

    #[test]
    fn trace_flag_parses_and_wins_tier_selection() {
        let cli = BenchCli::from_args("fig7", &argv(&[])).unwrap();
        assert_eq!(cli.exec_tier(), ExecTier::Fast);
        let cli = BenchCli::from_args("fig7", &argv(&["--trace"])).unwrap();
        assert!(cli.trace);
        assert_eq!(cli.exec_tier(), ExecTier::Trace);
        // Both flags: the more-specialised tier wins deterministically.
        let cli = BenchCli::from_args("fig7", &argv(&["--reference", "--trace"])).unwrap();
        assert_eq!(cli.exec_tier(), ExecTier::Trace);
    }

    #[test]
    fn observability_flags_parse() {
        let cli = BenchCli::from_args(
            "fig7",
            &argv(&[
                "--sample-interval",
                "5000",
                "--trace-out",
                "/tmp/trace.json",
                "--trace-uops",
                "128",
                "--profile-out",
                "/tmp/prof.json",
                "--telemetry-out",
                "/tmp/tele.json",
                "--campaign-trace-out",
                "/tmp/campaign.json",
                "--verify",
            ]),
        )
        .unwrap();
        assert_eq!(cli.sample_interval, 5000);
        assert_eq!(cli.trace_out, Some(PathBuf::from("/tmp/trace.json")));
        assert_eq!(cli.trace_uops, 128);
        assert_eq!(cli.profile_path(), PathBuf::from("/tmp/prof.json"));
        assert_eq!(cli.telemetry_path(), PathBuf::from("/tmp/tele.json"));
        assert_eq!(
            cli.campaign_trace_out,
            Some(PathBuf::from("/tmp/campaign.json"))
        );
        assert!(cli.verify);
    }

    #[test]
    fn errors_are_reported() {
        assert!(BenchCli::from_args("fig7", &argv(&["--jobs"])).is_err());
        assert!(BenchCli::from_args("fig7", &argv(&["--jobs", "0"])).is_err());
        assert!(BenchCli::from_args("fig7", &argv(&["--jobs", "x"])).is_err());
        assert!(BenchCli::from_args("fig7", &argv(&["--frobnicate"])).is_err());
        assert!(BenchCli::from_args("fig7", &argv(&["--sample-interval"])).is_err());
        assert!(BenchCli::from_args("fig7", &argv(&["--sample-interval", "x"])).is_err());
        assert!(BenchCli::from_args("fig7", &argv(&["--trace-uops", "0"])).is_err());
        assert!(BenchCli::from_args("fig7", &argv(&["--trace-out"])).is_err());
        assert!(BenchCli::from_args("fig7", &argv(&["--telemetry-out"])).is_err());
        assert!(BenchCli::from_args("fig7", &argv(&["--campaign-trace-out"])).is_err());
        assert!(BenchCli::from_args("fig7", &argv(&["--ckpt"])).is_err());
        assert!(BenchCli::from_args("fig7", &argv(&["--max-cells", "0"])).is_err());
        assert!(BenchCli::from_args("fig7", &argv(&["--fault-seed", "0xzz"])).is_err());
        assert!(BenchCli::from_args("fig7", &argv(&["--fuzz-seed", "0xzz"])).is_err());
        assert!(BenchCli::from_args("fig7", &argv(&["--round-size", "0"])).is_err());
        assert!(BenchCli::from_args("fig7", &argv(&["--min-programs", "0"])).is_err());
        assert!(BenchCli::from_args("fig7", &argv(&["--emit-regress"])).is_err());
        assert_eq!(
            BenchCli::from_args("fig7", &argv(&["--help"])).unwrap_err(),
            "help"
        );
    }

    #[test]
    fn harness_shares_one_engine_and_profiles_simulate_time() {
        let cli = BenchCli::from_args("harness-test", &argv(&["--test", "--jobs", "1"])).unwrap();
        let mut h = Harness::from_cli(cli);
        let job = SimJob::plain(
            &FigureRow::of(rest_workloads::Workload::Lbm),
            crate::engine::CoreKind::OutOfOrder,
            Scale::Test,
        );
        let first = h.run_all(std::slice::from_ref(&job));
        let again = h.run_all(std::slice::from_ref(&job));
        assert!(first[0].is_ok());
        // The harness engine caches across calls like a bare Engine.
        assert!(std::sync::Arc::ptr_eq(&first[0], &again[0]));
        // Both runs accrued into the one "simulate" phase, and the
        // engine's per-job log recorded the cache hit.
        assert_eq!(h.engine.take_timings().len(), 2);
        assert!(!h.sink().to_json_string().is_empty());
    }

    #[test]
    fn filter_selects_rows_case_insensitively() {
        let cli = BenchCli::from_args("fig7", &argv(&["--filter", "GOBMK"])).unwrap();
        let rows = cli.filter_rows(crate::figure_rows());
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.name.starts_with("gobmk")));
        let none = BenchCli::from_args("fig7", &argv(&["--filter", "zzz"]))
            .unwrap()
            .filter_rows(crate::figure_rows());
        assert!(none.is_empty());
    }
}
