//! Guest hotspot-profiler campaign (`hotspots` binary).
//!
//! Runs the full benchmark set under `plain` and the paper's headline
//! `rest-secure-full` configuration with guest profiling on, then rolls
//! the simulator's dense per-PC cycle/uop/check counters up through
//! `rest-verify`'s CFG recovery into per-basic-block and per-function
//! reports, alongside the per-allocation-site check-attribution table.
//!
//! Three artefacts come out of one campaign:
//!
//! * `results/hotspots.json` — the `rest-hotspots/v1` document
//!   (schema + validator in [`rest_obs::hotspots`]), byte-identical at
//!   any `--jobs` level;
//! * `results/hotspots.folded` — folded-stack text
//!   (`benchmark;scheme;function;block N`), ready for
//!   `flamegraph.pl`/inferno;
//! * `results/hotspots.perfetto.json` — Perfetto counter tracks: per
//!   row, the cycle and check-uop density over the code segment
//!   (timestamp = block start PC).
//!
//! Every rollup re-derives the CFG from an identically parameterised
//! program build, so block boundaries always match what actually
//! simulated. The rollup *asserts* the exact-sum invariants the
//! validator re-checks: per-block cycles sum to `core.cycles` (the
//! profiler attributes every committed cycle to a guest PC and the CFG
//! partitions the code segment), and per-site check micro-ops sum to
//! the per-PC check-uop total.

use rest_core::SiteCounters;
use rest_cpu::SimResult;
use rest_obs::{Json, PerfettoTrace};
use rest_runtime::RtConfig;
use rest_verify::Cfg;
use rest_workloads::{Scale, WorkloadParams};

use crate::cli::Harness;
use crate::engine::{ColumnSpec, MatrixSpec};
use crate::{stack_for, FigureRow};

/// The profiled configurations, by harness label: the baseline and the
/// paper's headline REST configuration.
pub const SCHEMES: [&str; 2] = ["plain", "rest-secure-full"];

/// The campaign's scheme set, resolved through [`RtConfig::from_label`].
pub fn scheme_configs() -> Vec<(&'static str, RtConfig)> {
    SCHEMES
        .iter()
        .map(|&label| {
            let rt = RtConfig::from_label(label).expect("hotspot scheme labels are canonical");
            (label, rt)
        })
        .collect()
}

/// One basic block's share of the profile.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockRollup {
    /// First PC of the block.
    pub start: u64,
    /// Exclusive end PC.
    pub end: u64,
    /// Committed cycles attributed to the block's PCs.
    pub cycles: u64,
    /// Retired micro-ops attributed to the block's PCs.
    pub uops: u64,
    /// Check invocations at the block's PCs.
    pub checks: u64,
    /// Injected check micro-ops at the block's PCs.
    pub check_uops: u64,
}

/// One recovered function's share of the profile. Blocks reachable from
/// two entries are reported under both, so function totals may overlap;
/// the per-block table is the partition.
#[derive(Debug, Clone)]
pub struct FunctionRollup {
    /// Entry PC.
    pub entry: u64,
    /// Display symbol (`main` for the program entry, `fn_<pc>` else).
    pub symbol: String,
    /// Number of blocks the function owns.
    pub blocks: u64,
    /// Cycle/uop/check sums over those blocks.
    pub cycles: u64,
    /// Retired micro-ops over those blocks.
    pub uops: u64,
    /// Check invocations over those blocks.
    pub checks: u64,
    /// Injected check micro-ops over those blocks.
    pub check_uops: u64,
}

/// One (benchmark × scheme) row of the hotspot report.
#[derive(Debug, Clone)]
pub struct HotspotRow {
    /// Row display name.
    pub benchmark: String,
    /// Workload kernel name.
    pub workload: &'static str,
    /// Input seed.
    pub seed: u64,
    /// Scheme label.
    pub scheme: String,
    /// Committed macro instructions.
    pub insts: u64,
    /// Total committed cycles (== per-block sum, asserted).
    pub cycles: u64,
    /// Total retired micro-ops.
    pub uops: u64,
    /// Total per-PC check invocations.
    pub checks: u64,
    /// Total injected check micro-ops.
    pub check_uops: u64,
    /// Total checks in the site table (includes runtime-internal
    /// validations the per-PC table does not see).
    pub site_checks: u64,
    /// Total check micro-ops in the site table (== `check_uops`,
    /// asserted — runtime-internal checks inject nothing).
    pub site_check_uops: u64,
    /// The backend's own `check_access` count, for reconciliation.
    pub backend_checks: u64,
    /// Per-block partition of the code segment, ascending by start PC.
    pub blocks: Vec<BlockRollup>,
    /// Per-block owning symbol (first claiming function), parallel to
    /// `blocks` — feeds the folded-stack output.
    pub block_symbols: Vec<String>,
    /// Recovered functions with their rollups.
    pub functions: Vec<FunctionRollup>,
    /// Per-allocation-site attribution rows, ascending by site PC.
    pub sites: Vec<(u64, SiteCounters)>,
}

/// Rolls one profiled run up into a [`HotspotRow`], re-deriving the CFG
/// from an identically parameterised program build and asserting the
/// exact-sum invariants. Errors are collection bugs, not data.
pub fn rollup(
    row: &FigureRow,
    scheme: &str,
    rt: &RtConfig,
    scale: Scale,
    result: &SimResult,
) -> Result<HotspotRow, String> {
    let cell = format!("{} {scheme}", row.name);
    let prof = result
        .profile
        .as_ref()
        .ok_or_else(|| format!("{cell}: result carries no guest profile"))?;
    for (what, other) in [
        ("cycles", prof.cycles.other()),
        ("uops", prof.uops.other()),
        ("checks", prof.checks.other()),
        ("check_uops", prof.check_uops.other()),
    ] {
        if other != 0 {
            return Err(format!(
                "{cell}: {other} {what} landed outside the code segment"
            ));
        }
    }

    let params = WorkloadParams {
        scale,
        stack_scheme: stack_for(rt),
        token_width: rt.token_width,
        seed: row.seed,
    };
    let program = row.workload.build(&params);
    let cfg = Cfg::build(&program);

    let blocks: Vec<BlockRollup> = cfg
        .blocks
        .iter()
        .map(|b| {
            let mut r = BlockRollup {
                start: b.start,
                end: b.end,
                ..BlockRollup::default()
            };
            for pc in b.pcs() {
                r.cycles += prof.cycles.get(pc);
                r.uops += prof.uops.get(pc);
                r.checks += prof.checks.get(pc);
                r.check_uops += prof.check_uops.get(pc);
            }
            r
        })
        .collect();

    // The CFG's blocks partition the code segment and `other` is zero,
    // so the block sums must reproduce the per-PC totals exactly — and
    // the cycle total is `core.cycles` by the profiler's construction.
    let cycle_sum: u64 = blocks.iter().map(|b| b.cycles).sum();
    if cycle_sum != result.core.cycles {
        return Err(format!(
            "{cell}: block cycle sum {cycle_sum} != core.cycles {}",
            result.core.cycles
        ));
    }
    let uop_sum: u64 = blocks.iter().map(|b| b.uops).sum();
    if uop_sum != prof.uops.total() {
        return Err(format!(
            "{cell}: block uop sum {uop_sum} != profiled total {}",
            prof.uops.total()
        ));
    }

    let mut block_symbols = vec![String::new(); blocks.len()];
    let functions: Vec<FunctionRollup> = cfg
        .functions
        .iter()
        .map(|f| {
            let symbol = if f.entry == program.entry() {
                "main".to_string()
            } else {
                format!("fn_{:#x}", f.entry)
            };
            let mut r = FunctionRollup {
                entry: f.entry,
                symbol: symbol.clone(),
                blocks: f.blocks.len() as u64,
                cycles: 0,
                uops: 0,
                checks: 0,
                check_uops: 0,
            };
            for &bi in &f.blocks {
                let b = &blocks[bi];
                r.cycles += b.cycles;
                r.uops += b.uops;
                r.checks += b.checks;
                r.check_uops += b.check_uops;
                if block_symbols[bi].is_empty() {
                    block_symbols[bi] = symbol.clone();
                }
            }
            r
        })
        .collect();
    for s in &mut block_symbols {
        if s.is_empty() {
            // Blocks no function entry reaches (padding, dead code).
            *s = "_unreached".to_string();
        }
    }

    let site_checks: u64 = prof.sites.iter().map(|(_, c)| c.checks).sum();
    let site_check_uops: u64 = prof.sites.iter().map(|(_, c)| c.check_uops).sum();
    // Check micro-ops reconcile exactly: only pipeline-visible checks
    // inject them. Check *counts* may exceed the per-PC table — the
    // runtime's hardened-free validations charge the owning site but
    // have no checked-access PC.
    if site_check_uops != prof.check_uops.total() {
        return Err(format!(
            "{cell}: site check-uop sum {site_check_uops} != per-PC total {}",
            prof.check_uops.total()
        ));
    }
    if prof.checks.total() > site_checks {
        return Err(format!(
            "{cell}: per-PC checks {} exceed site checks {site_checks}",
            prof.checks.total()
        ));
    }
    // Backend schemes route every access check through the seam, so the
    // site table and the backend's own count must agree.
    if prof.backend_checks > 0 && site_checks != prof.backend_checks {
        return Err(format!(
            "{cell}: site checks {site_checks} != backend checks {}",
            prof.backend_checks
        ));
    }

    Ok(HotspotRow {
        benchmark: row.name.to_string(),
        workload: row.workload.name(),
        seed: row.seed,
        scheme: scheme.to_string(),
        insts: result.core.insts,
        cycles: result.core.cycles,
        uops: prof.uops.total(),
        checks: prof.checks.total(),
        check_uops: prof.check_uops.total(),
        site_checks,
        site_check_uops,
        backend_checks: prof.backend_checks,
        blocks,
        block_symbols,
        functions,
        sites: prof.sites.clone(),
    })
}

impl HotspotRow {
    /// The row as a `rest-hotspots/v1` row object.
    pub fn to_json(&self) -> Json {
        let total = Json::obj(vec![
            ("cycles", Json::UInt(self.cycles)),
            ("uops", Json::UInt(self.uops)),
            ("insts", Json::UInt(self.insts)),
            ("checks", Json::UInt(self.checks)),
            ("check_uops", Json::UInt(self.check_uops)),
            ("site_checks", Json::UInt(self.site_checks)),
            ("site_check_uops", Json::UInt(self.site_check_uops)),
            ("backend_checks", Json::UInt(self.backend_checks)),
        ]);
        let blocks = self
            .blocks
            .iter()
            .map(|b| {
                Json::obj(vec![
                    ("start", Json::UInt(b.start)),
                    ("end", Json::UInt(b.end)),
                    ("cycles", Json::UInt(b.cycles)),
                    ("uops", Json::UInt(b.uops)),
                    ("checks", Json::UInt(b.checks)),
                    ("check_uops", Json::UInt(b.check_uops)),
                ])
            })
            .collect();
        let functions = self
            .functions
            .iter()
            .map(|f| {
                Json::obj(vec![
                    ("entry", Json::UInt(f.entry)),
                    ("symbol", Json::from(f.symbol.as_str())),
                    ("blocks", Json::UInt(f.blocks)),
                    ("cycles", Json::UInt(f.cycles)),
                    ("uops", Json::UInt(f.uops)),
                    ("checks", Json::UInt(f.checks)),
                    ("check_uops", Json::UInt(f.check_uops)),
                ])
            })
            .collect();
        let sites = self
            .sites
            .iter()
            .map(|&(site, c)| {
                Json::obj(vec![
                    ("site", Json::UInt(site)),
                    ("allocs", Json::UInt(c.allocs)),
                    ("frees", Json::UInt(c.frees)),
                    ("bytes", Json::UInt(c.bytes)),
                    ("checks", Json::UInt(c.checks)),
                    ("check_uops", Json::UInt(c.check_uops)),
                    ("canonicalizations", Json::UInt(c.canonicalizations)),
                    ("deferred_latches", Json::UInt(c.deferred_latches)),
                    ("faults", Json::UInt(c.faults)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("benchmark", Json::from(self.benchmark.as_str())),
            ("workload", Json::from(self.workload)),
            ("seed", Json::UInt(self.seed)),
            ("scheme", Json::from(self.scheme.as_str())),
            ("total", total),
            ("blocks", Json::Arr(blocks)),
            ("functions", Json::Arr(functions)),
            ("sites", Json::Arr(sites)),
        ])
    }

    /// The hottest block (by cycles), for the text table.
    fn hottest(&self) -> Option<&BlockRollup> {
        self.blocks.iter().max_by_key(|b| b.cycles)
    }
}

/// The assembled campaign report.
#[derive(Debug, Clone)]
pub struct HotspotReport {
    /// Scale name as serialized (`"test"` / `"ref"`).
    pub scale: String,
    /// Rows in benchmark-major, scheme-minor order.
    pub rows: Vec<HotspotRow>,
}

impl HotspotReport {
    /// The `rows` member of the `rest-hotspots/v1` document.
    pub fn rows_json(&self) -> Json {
        Json::Arr(self.rows.iter().map(HotspotRow::to_json).collect())
    }

    /// The complete standalone document (the binary routes the same
    /// members through the harness sink instead, which adds the
    /// experiment identity).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::from(rest_obs::hotspots::SCHEMA)),
            ("scale", Json::from(self.scale.as_str())),
            (
                "schemes",
                Json::Arr(SCHEMES.iter().map(|&s| Json::from(s)).collect()),
            ),
            ("rows", self.rows_json()),
        ])
    }

    /// Folded-stack text (`benchmark;scheme;function;block count`), one
    /// line per nonzero-cycle block — feed to `flamegraph.pl` or
    /// inferno for a guest-cycle flamegraph.
    pub fn folded(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for row in &self.rows {
            for (b, symbol) in row.blocks.iter().zip(&row.block_symbols) {
                if b.cycles != 0 {
                    let _ = writeln!(
                        out,
                        "{};{};{};block_{:#x} {}",
                        row.benchmark, row.scheme, symbol, b.start, b.cycles
                    );
                }
            }
        }
        out
    }

    /// Perfetto counter tracks: one track per row, sampling the cycle
    /// and check-uop density across the code segment with the block
    /// start PC as the timestamp — the spatial profile renders as a
    /// value-over-"time" curve.
    pub fn to_perfetto(&self) -> PerfettoTrace {
        let mut trace = PerfettoTrace::new("guest hotspots");
        for row in &self.rows {
            let track = trace.track(&format!("{} {}", row.benchmark, row.scheme));
            for b in &row.blocks {
                trace.counter(
                    track,
                    "density",
                    b.start,
                    vec![
                        ("cycles", Json::UInt(b.cycles)),
                        ("check_uops", Json::UInt(b.check_uops)),
                    ],
                );
            }
        }
        trace
    }

    /// Prints the per-row summary table to stdout.
    pub fn print_text_table(&self) {
        println!(
            "{:<16}{:<18}{:>12}{:>12}{:>12}{:>14}{:>20}",
            "benchmark", "scheme", "cycles", "checks", "site chks", "check uops", "hottest block"
        );
        for row in &self.rows {
            let hottest = row
                .hottest()
                .map(|b| format!("{:#x} ({})", b.start, b.cycles))
                .unwrap_or_else(|| "-".to_string());
            println!(
                "{:<16}{:<18}{:>12}{:>12}{:>12}{:>14}{:>20}",
                row.benchmark,
                row.scheme,
                row.cycles,
                row.checks,
                row.site_checks,
                row.check_uops,
                hottest
            );
        }
    }
}

/// Runs the full campaign: 16 benchmark rows × 2 schemes with guest
/// profiling, rolled up and written as the JSON document, the folded
/// stacks (`<json>.folded`), and the Perfetto counter tracks
/// (`<json>.perfetto.json`).
pub fn run_campaign(mut h: Harness) {
    let cli = h.cli.clone();
    let rows = cli.filter_rows(crate::figure_rows());
    let columns: Vec<ColumnSpec> = scheme_configs()
        .into_iter()
        .map(|(label, rt)| ColumnSpec::new(label, rt))
        .collect();
    let mut spec = MatrixSpec::new(rows.clone(), columns, cli.scale).with_observability(&cli);
    // The plain scheme is an explicit column; no separate baseline.
    spec.include_plain = false;
    spec.profile_guest = true;
    let matrix = h.run_matrix(&spec);

    crate::print_machine_header(
        "hotspots — guest hotspot profile (per-block cycles, per-site checks)",
    );
    let mut report = HotspotReport {
        scale: cli.scale_name().to_string(),
        rows: Vec::new(),
    };
    for (row, results) in rows.iter().zip(&matrix.rows) {
        for (col, cell) in matrix.columns.iter().zip(&results.cells) {
            match cell.as_ref() {
                Ok(result) => match rollup(row, &col.label, &col.rt, cli.scale, result) {
                    Ok(r) => report.rows.push(r),
                    Err(e) => {
                        eprintln!("hotspots: invariant violated: {e}");
                        std::process::exit(1);
                    }
                },
                Err(e) => {
                    eprintln!("hotspots: {} {} failed: {e}", row.name, col.label);
                    std::process::exit(1);
                }
            }
        }
    }
    report.print_text_table();

    let json_path = cli.json_path();
    crate::write_text_file(&json_path.with_extension("folded"), &report.folded());
    crate::write_text_file(
        &json_path.with_extension("perfetto.json"),
        &report.to_perfetto().render(),
    );

    let mut sink = h.sink();
    sink.push("schema", Json::from(rest_obs::hotspots::SCHEMA));
    sink.push(
        "schemes",
        Json::Arr(SCHEMES.iter().map(|&s| Json::from(s)).collect()),
    );
    sink.push("rows", report.rows_json());
    h.finish(sink, &matrix);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CoreKind, SimJob};
    use rest_workloads::Workload;

    fn profiled(row: &FigureRow, label: &str, rt: RtConfig) -> SimResult {
        let job = SimJob {
            profile_guest: true,
            ..SimJob::new(row, label, rt, Scale::Test)
        };
        assert_eq!(job.core, CoreKind::OutOfOrder);
        job.execute().expect("profiled run completes")
    }

    #[test]
    fn rollup_reconciles_blocks_sites_and_backend() {
        let row = FigureRow::of(Workload::Lbm);
        for (label, rt) in scheme_configs() {
            let result = profiled(&row, label, rt.clone());
            let r = rollup(&row, label, &rt, Scale::Test, &result).expect("invariants hold");
            assert_eq!(
                r.blocks.iter().map(|b| b.cycles).sum::<u64>(),
                result.core.cycles,
                "{label}: block cycles must sum exactly to core.cycles"
            );
            assert_eq!(r.site_check_uops, r.check_uops);
            if label == "rest-secure-full" {
                assert!(r.backend_checks > 0, "REST secure routes checks to the seam");
                assert_eq!(r.site_checks, r.backend_checks);
                assert!(r.checks > 0, "checked accesses land in the per-PC table");
                // REST's headline property: the token check rides the
                // cache fill and injects zero check micro-ops.
                assert_eq!(r.check_uops, 0, "REST charges no check micro-ops");
            } else {
                assert_eq!(r.backend_checks, 0);
                assert_eq!(r.checks, 0);
            }
            assert!(!r.functions.is_empty());
            assert_eq!(r.functions[0].symbol, "main");
            assert_eq!(r.block_symbols.len(), r.blocks.len());
        }
    }

    #[test]
    fn report_document_validates_against_the_schema() {
        let row = FigureRow::of(Workload::Hmmer);
        let mut report = HotspotReport {
            scale: "test".to_string(),
            rows: Vec::new(),
        };
        for (label, rt) in scheme_configs() {
            let result = profiled(&row, label, rt.clone());
            report
                .rows
                .push(rollup(&row, label, &rt, Scale::Test, &result).unwrap());
        }
        let doc = Json::parse(&report.to_json().to_string_pretty()).expect("valid JSON");
        rest_obs::hotspots::validate(&doc).expect("schema-valid");
        // The folded stacks and counter tracks derive from the same
        // rows and stay deterministic.
        let folded = report.folded();
        assert!(!folded.is_empty());
        assert!(folded.lines().all(|l| l.contains(";main;") || l.contains(";fn_")));
        assert_eq!(folded, report.folded());
        let trace = report.to_perfetto();
        assert_eq!(trace.counter_count(), report.rows.iter().map(|r| r.blocks.len()).sum());
    }
}
