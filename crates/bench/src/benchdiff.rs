//! Throughput regression gate: compares a freshly measured
//! `rest-throughput/v2` document against a committed baseline and fails
//! when the sweep-wide fast-path or trace-tier guest-IPS regressed
//! beyond tolerance.
//!
//! The `bench-diff` binary wraps [`diff`]:
//!
//! ```text
//! bench-diff --baseline results/BENCH_throughput.json \
//!            --current  /tmp/fresh.json [--tolerance PCT] [--warn-only]
//! ```
//!
//! Both inputs are validated against the schema before any comparison,
//! so a truncated or mis-shaped artefact reads as a usage error (exit
//! 2), never as a pass. Absolute guest-IPS differs across hosts; the
//! gate is meant for same-host comparisons (CI measures baseline and
//! current in one job) where the *ratio* is meaningful.

use rest_obs::Json;

use crate::throughput::ThroughputReport;

/// Default regression tolerance: the sweep fails when the current
/// aggregate fast-path guest-IPS is more than this far below baseline.
pub const DEFAULT_TOLERANCE_PCT: f64 = 5.0;

/// One (benchmark, config) cell present in both documents.
#[derive(Debug, Clone)]
pub struct CellDelta {
    /// Row display name.
    pub benchmark: String,
    /// Configuration label.
    pub config: String,
    /// Baseline fast-path guest-IPS.
    pub baseline_ips: f64,
    /// Current fast-path guest-IPS.
    pub current_ips: f64,
}

impl CellDelta {
    /// Change in percent (negative = slower than baseline).
    pub fn delta_pct(&self) -> f64 {
        if self.baseline_ips > 0.0 {
            (self.current_ips / self.baseline_ips - 1.0) * 100.0
        } else {
            0.0
        }
    }
}

/// The comparison of two throughput documents.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Baseline sweep-wide fast-path guest-IPS (`summary.fast_ips`).
    pub baseline_ips: f64,
    /// Current sweep-wide fast-path guest-IPS.
    pub current_ips: f64,
    /// Baseline sweep-wide trace-tier guest-IPS (`summary.trace_ips`).
    pub baseline_trace_ips: f64,
    /// Current sweep-wide trace-tier guest-IPS.
    pub current_trace_ips: f64,
    /// Regression tolerance in percent.
    pub tolerance_pct: f64,
    /// Cells present in both documents, in current-document order.
    pub cells: Vec<CellDelta>,
    /// Cells present in only one document (informational: the aggregate
    /// gate still applies, but coverage changed).
    pub unmatched: Vec<String>,
}

fn pct(current: f64, baseline: f64) -> f64 {
    if baseline > 0.0 {
        (current / baseline - 1.0) * 100.0
    } else {
        0.0
    }
}

impl DiffReport {
    /// Aggregate fast-path change in percent (negative = slower than
    /// baseline).
    pub fn delta_pct(&self) -> f64 {
        pct(self.current_ips, self.baseline_ips)
    }

    /// Aggregate trace-tier change in percent.
    pub fn trace_delta_pct(&self) -> f64 {
        pct(self.current_trace_ips, self.baseline_trace_ips)
    }

    /// Whether either aggregate guest-IPS (fast path or trace tier)
    /// regressed beyond tolerance.
    pub fn regressed(&self) -> bool {
        self.delta_pct() < -self.tolerance_pct
            || self.trace_delta_pct() < -self.tolerance_pct
    }

    /// The human-readable comparison table plus verdict line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<18}{:<20}{:>14}{:>14}{:>10}",
            "benchmark", "config", "base IPS", "curr IPS", "delta"
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{:<18}{:<20}{:>14.0}{:>14.0}{:>+9.2}%",
                c.benchmark,
                c.config,
                c.baseline_ips,
                c.current_ips,
                c.delta_pct()
            );
        }
        for name in &self.unmatched {
            let _ = writeln!(out, "# unmatched cell: {name}");
        }
        let _ = writeln!(
            out,
            "{:<18}{:<20}{:>14.0}{:>14.0}{:>+9.2}%",
            "AGGREGATE (fast)",
            "",
            self.baseline_ips,
            self.current_ips,
            self.delta_pct()
        );
        let _ = writeln!(
            out,
            "{:<18}{:<20}{:>14.0}{:>14.0}{:>+9.2}%",
            "AGGREGATE (trace)",
            "",
            self.baseline_trace_ips,
            self.current_trace_ips,
            self.trace_delta_pct()
        );
        let _ = writeln!(
            out,
            "{}: aggregate guest-IPS fast {:+.2}% / trace {:+.2}% vs baseline \
             (tolerance -{:.2}%)",
            if self.regressed() { "REGRESSION" } else { "OK" },
            self.delta_pct(),
            self.trace_delta_pct(),
            self.tolerance_pct
        );
        out
    }
}

fn summary_ips(doc: &Json, key: &str, which: &str) -> Result<f64, String> {
    doc.get("summary")
        .and_then(|s| s.get(key))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{which}: missing summary.{key}"))
}

fn cell_map(doc: &Json) -> Vec<(String, f64)> {
    doc.get("cells")
        .and_then(Json::as_arr)
        .map(|cells| {
            cells
                .iter()
                .filter_map(|c| {
                    let benchmark = c.get("benchmark")?.as_str()?;
                    let config = c.get("config")?.as_str()?;
                    let ips = c.get("fast_ips")?.as_f64()?;
                    Some((format!("{benchmark} {config}"), ips))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Validates both documents against `rest-throughput/v2` and compares
/// their aggregate fast-path and trace-tier guest-IPS (plus per-cell
/// fast-path deltas for the report). Schema violations are errors, not
/// passes.
pub fn diff(baseline: &Json, current: &Json, tolerance_pct: f64) -> Result<DiffReport, String> {
    ThroughputReport::validate(baseline).map_err(|e| format!("baseline: {e}"))?;
    ThroughputReport::validate(current).map_err(|e| format!("current: {e}"))?;
    if tolerance_pct.is_nan() || tolerance_pct < 0.0 {
        return Err(format!("tolerance must be >= 0, got {tolerance_pct}"));
    }
    let base_cells = cell_map(baseline);
    let curr_cells = cell_map(current);
    let mut cells = Vec::new();
    let mut unmatched = Vec::new();
    for (name, current_ips) in &curr_cells {
        match base_cells.iter().find(|(n, _)| n == name) {
            Some((_, baseline_ips)) => {
                let (benchmark, config) = name.split_once(' ').unwrap_or((name, ""));
                cells.push(CellDelta {
                    benchmark: benchmark.to_string(),
                    config: config.to_string(),
                    baseline_ips: *baseline_ips,
                    current_ips: *current_ips,
                });
            }
            None => unmatched.push(format!("{name} (current only)")),
        }
    }
    for (name, _) in &base_cells {
        if !curr_cells.iter().any(|(n, _)| n == name) {
            unmatched.push(format!("{name} (baseline only)"));
        }
    }
    Ok(DiffReport {
        baseline_ips: summary_ips(baseline, "fast_ips", "baseline")?,
        current_ips: summary_ips(current, "fast_ips", "current")?,
        baseline_trace_ips: summary_ips(baseline, "trace_ips", "baseline")?,
        current_trace_ips: summary_ips(current, "trace_ips", "current")?,
        tolerance_pct,
        cells,
        unmatched,
    })
}

/// Reads and parses one throughput document from disk.
pub fn load(path: &std::path::Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a schema-valid v2 document. Each cell carries a fast-path
    /// guest-IPS; the trace tier defaults to 2x fast unless overridden
    /// via `doc_with_trace`.
    fn doc(ips_per_cell: &[(&str, &str, f64)]) -> Json {
        let total: f64 = ips_per_cell.iter().map(|&(_, _, i)| i).sum();
        let mean = total / ips_per_cell.len().max(1) as f64;
        doc_with_trace(ips_per_cell, mean * 2.0)
    }

    fn doc_with_trace(ips_per_cell: &[(&str, &str, f64)], trace_ips: f64) -> Json {
        let total: f64 = ips_per_cell.iter().map(|&(_, _, i)| i).sum();
        let mean = total / ips_per_cell.len().max(1) as f64;
        Json::obj(vec![
            ("schema", Json::from(crate::throughput::SCHEMA)),
            ("scale", Json::from("test")),
            ("effective_jobs", Json::UInt(2)),
            (
                "cells",
                Json::Arr(
                    ips_per_cell
                        .iter()
                        .map(|&(b, c, ips)| {
                            Json::obj(vec![
                                ("benchmark", Json::from(b)),
                                ("config", Json::from(c)),
                                ("guest_insts", Json::UInt(1000)),
                                ("guest_uops", Json::UInt(1100)),
                                ("fast_wall_s", Json::Num(0.1)),
                                ("trace_wall_s", Json::Num(0.05)),
                                ("reference_wall_s", Json::Num(0.3)),
                                ("fast_ips", Json::Num(ips)),
                                ("trace_ips", Json::Num(ips * 2.0)),
                                ("reference_ips", Json::Num(ips / 3.0)),
                                ("speedup", Json::Num(3.0)),
                                ("trace_speedup", Json::Num(2.0)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "summary",
                Json::obj(vec![
                    ("cells", Json::UInt(ips_per_cell.len() as u64)),
                    ("guest_insts", Json::UInt(1000 * ips_per_cell.len() as u64)),
                    ("fast_ips", Json::Num(mean)),
                    ("trace_ips", Json::Num(trace_ips)),
                    ("reference_ips", Json::Num(mean / 3.0)),
                    ("speedup", Json::Num(3.0)),
                    ("trace_speedup", Json::Num(2.0)),
                ]),
            ),
        ])
    }

    #[test]
    fn within_tolerance_passes() {
        let base = doc(&[("lbm", "plain", 1000.0), ("mcf", "plain", 2000.0)]);
        let curr = doc(&[("lbm", "plain", 980.0), ("mcf", "plain", 1950.0)]);
        let report = diff(&base, &curr, DEFAULT_TOLERANCE_PCT).unwrap();
        assert!(!report.regressed(), "{}", report.render());
        assert_eq!(report.cells.len(), 2);
        assert!(report.unmatched.is_empty());
        assert!(report.render().contains("OK:"));
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = doc(&[("lbm", "plain", 1000.0)]);
        // 10% below baseline with a 5% tolerance: regression.
        let curr = doc(&[("lbm", "plain", 900.0)]);
        let report = diff(&base, &curr, 5.0).unwrap();
        assert!(report.regressed());
        assert!((report.delta_pct() + 10.0).abs() < 1e-9);
        assert!(report.render().contains("REGRESSION"));
        // The same delta passes under a looser tolerance.
        assert!(!diff(&base, &curr, 15.0).unwrap().regressed());
    }

    #[test]
    fn trace_tier_regression_fails_even_when_fast_path_holds() {
        let cells = [("lbm", "plain", 1000.0)];
        let base = doc_with_trace(&cells, 2000.0);
        // Fast path identical, trace tier 20% below baseline.
        let curr = doc_with_trace(&cells, 1600.0);
        let report = diff(&base, &curr, 5.0).unwrap();
        assert!(report.regressed(), "{}", report.render());
        assert!((report.delta_pct()).abs() < 1e-9);
        assert!((report.trace_delta_pct() + 20.0).abs() < 1e-9);
        assert!(report.render().contains("REGRESSION"));
    }

    #[test]
    fn improvements_never_fail() {
        let base = doc(&[("lbm", "plain", 1000.0)]);
        let curr = doc(&[("lbm", "plain", 5000.0)]);
        assert!(!diff(&base, &curr, 0.0).unwrap().regressed());
    }

    #[test]
    fn unmatched_cells_are_reported_not_fatal() {
        let base = doc(&[("lbm", "plain", 1000.0), ("mcf", "plain", 1000.0)]);
        let curr = doc(&[("lbm", "plain", 1000.0), ("hmmer", "asan", 1000.0)]);
        let report = diff(&base, &curr, 5.0).unwrap();
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.unmatched.len(), 2);
        assert!(report.render().contains("unmatched cell"));
    }

    #[test]
    fn malformed_documents_are_errors_not_passes() {
        let good = doc(&[("lbm", "plain", 1000.0)]);
        let bad = Json::obj(vec![("schema", Json::from("other/v9"))]);
        assert!(diff(&bad, &good, 5.0).unwrap_err().starts_with("baseline:"));
        assert!(diff(&good, &bad, 5.0).unwrap_err().starts_with("current:"));
        assert!(diff(&good, &good, -1.0).is_err());
        assert!(diff(&good, &good, f64::NAN).is_err());
    }
}
